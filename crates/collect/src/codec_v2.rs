//! Codec v2: sparse + delta snapshot payloads.
//!
//! The v1 payload ([`crate::codec`]) spends one byte per counter even when
//! a bucket is zero — and outside attack hot spots almost every bucket is.
//! v2 attacks the two remaining cost centres:
//!
//! * **Sparse stages** — each grid stage (and the Bloom word array) is
//!   encoded either densely (v1-style varints) or as runs of non-zero
//!   values with zero-gap prefixes, whichever is smaller *for that stage*.
//!   A quiet stage costs two bytes instead of one byte per bucket.
//! * **Delta frames** — the cumulative active-service Bloom filter
//!   (megabytes of raw words in a long run) may be encoded as an XOR
//!   residual against the previous **acked** interval: just the bits
//!   newly set this interval. Grids and packet counters reset every
//!   interval, so a residual against a cleared array would span the
//!   union of old and new support and only ever grow the payload — they
//!   stay absolute (sparse) in both modes. Periodic keyframes bound how
//!   much history a fresh collector needs.
//!
//! The delta chain is *ack-gated*: the sender only emits a delta against a
//! baseline the collector has explicitly acknowledged decoding
//! ([`crate::wire::encode_ack`]), and falls back to a keyframe whenever
//! the ack has not arrived. Every frame that reaches a decoder is
//! therefore decodable on its own chain state — drops, reordering and
//! duplication can break nothing; at worst they cost compression.
//!
//! Wire layout of a v2 payload (CRC-covered by the frame header):
//!
//! ```text
//! flags              u8       bit0: 1 = delta, others must be zero
//! [delta] baseline   uvarint  interval the residuals are relative to
//! fingerprint        u64      absolute in both modes
//! syn/syn_ack/fin_rst uvarint absolute in both modes
//! 9 × grid:                   absolute in both modes
//!   stages, buckets  uvarint
//!   per stage: mode  u8       0 = dense, 1 = sparse
//!     dense:  buckets × zigzag varint
//!     sparse: nruns uvarint, runs of (gap uvarint, len uvarint, len × zigzag varint)
//! bloom:
//!   words, seeds     uvarint
//!   inserted                  keyframe: uvarint · delta: zigzag residual
//!   mode             u8       0 = dense, 1 = sparse
//!     dense:  words × raw u64 (keyframe: absolute · delta: XOR vs baseline)
//!     sparse: nruns uvarint, runs of (gap uvarint, len uvarint, len × raw u64)
//!   seeds × raw u64  absolute in both modes
//! ```
//!
//! All residual arithmetic is wrapping, so `i64::MIN`/`i64::MAX` counters
//! round-trip exactly. The decoder carries the same defensive posture as
//! v1: bounds-checked reads, declared sizes capped before allocation, and
//! typed [`CodecError`]s for every failure.

use crate::codec::{
    self, put_u64, put_uvarint, zigzag, CodecError, Reader, MAX_BLOOM_SEEDS, MAX_BLOOM_WORDS,
    MAX_GRID_CELLS,
};
use hifind::IntervalSnapshot;
use hifind_hashing::BloomFilter;
use hifind_sketch::CounterGrid;
use std::collections::BTreeMap;

/// Payload flag bit: this frame carries residuals vs. a baseline.
const FLAG_DELTA: u8 = 0x01;

/// Stage/bloom encoding mode bytes.
const MODE_DENSE: u8 = 0;
const MODE_SPARSE: u8 = 1;

/// Keyframe cadence: after this many consecutive deltas the encoder emits
/// a full keyframe even when the chain is intact, so a collector that
/// lost its retention (restart, eviction) is guaranteed a fresh baseline
/// within a bounded number of intervals.
pub const DEFAULT_KEYFRAME_EVERY: u32 = 8;

/// How many decoded intervals the receiver retains per router as delta
/// baselines. Reordered or duplicated frames only ever reference recent
/// intervals (the sender's baseline is always its previous interval), so
/// a short window suffices.
const RETAIN_PER_ROUTER: usize = 4;

/// Upper bound on distinct router ids holding retention state, so a flood
/// of forged router ids cannot grow receiver memory without bound.
const MAX_CHAIN_ROUTERS: usize = 1024;

/// Number of bytes `put_uvarint` would emit for `v`.
fn uvarint_len(v: u64) -> usize {
    let bits = 64 - v.leading_zeros();
    usize::try_from(bits.div_ceil(7)).unwrap_or(10).max(1)
}

fn wrapping_diff_u64(new: u64, old: u64) -> i64 {
    i64::from_le_bytes(new.wrapping_sub(old).to_le_bytes())
}

fn wrapping_apply_u64(old: u64, residual: i64) -> u64 {
    old.wrapping_add(u64::from_le_bytes(residual.to_le_bytes()))
}

/// Encodes one value array as whichever of dense/sparse is smaller.
/// `values` are already residuals in delta mode; zero means "unchanged".
fn encode_stage_i64(out: &mut Vec<u8>, values: &[i64]) {
    // Cost the dense form without materialising it.
    let dense_size: usize = values.iter().map(|&v| uvarint_len(zigzag(v))).sum();
    // Build the sparse form: runs of consecutive non-zeros.
    let mut sparse = Vec::new();
    let mut nruns = 0u64;
    let mut i = 0usize;
    let mut last_end = 0usize;
    while i < values.len() {
        if values[i] == 0 {
            i += 1;
            continue;
        }
        let start = i;
        while i < values.len() && values[i] != 0 {
            i += 1;
        }
        put_uvarint(&mut sparse, codec::len_u64(start - last_end));
        put_uvarint(&mut sparse, codec::len_u64(i - start));
        for &v in &values[start..i] {
            put_uvarint(&mut sparse, zigzag(v));
        }
        last_end = i;
        nruns += 1;
    }
    let sparse_size = uvarint_len(nruns) + sparse.len();
    if sparse_size < dense_size {
        out.push(MODE_SPARSE);
        put_uvarint(out, nruns);
        out.extend_from_slice(&sparse);
    } else {
        out.push(MODE_DENSE);
        for &v in values {
            put_uvarint(out, zigzag(v));
        }
    }
}

/// Decodes one stage into `into` (pre-sized, zero-filled).
fn decode_stage_i64(
    r: &mut Reader<'_>,
    into: &mut [i64],
    which: &'static str,
) -> Result<(), CodecError> {
    match r.uvarint(which)? {
        m if m == u64::from(MODE_DENSE) => {
            for slot in into.iter_mut() {
                *slot = r.ivarint(which)?;
            }
            Ok(())
        }
        m if m == u64::from(MODE_SPARSE) => {
            let nruns = r.uvarint(which)?;
            let nruns = r.counted(which, nruns, codec::len_u64(into.len()))?;
            let mut pos = 0usize;
            for _ in 0..nruns {
                let gap = r.uvarint(which)?;
                let len = r.uvarint(which)?;
                let gap = r.counted(which, gap, codec::len_u64(into.len()))?;
                let len = r.counted(which, len, codec::len_u64(into.len()))?;
                let start = pos.checked_add(gap).filter(|&s| s <= into.len());
                let end = start
                    .and_then(|s| s.checked_add(len))
                    .filter(|&e| e <= into.len());
                let (Some(start), Some(end)) = (start, end) else {
                    return Err(CodecError::Truncated { at: which });
                };
                for slot in &mut into[start..end] {
                    *slot = r.ivarint(which)?;
                }
                pos = end;
            }
            Ok(())
        }
        other => Err(CodecError::Grid {
            which,
            detail: format!("unknown stage mode byte {other}"),
        }),
    }
}

/// Same dense/sparse choice for raw `u64` Bloom words (absolute in
/// keyframes, XOR residuals in deltas; zero means "unchanged").
fn encode_words(out: &mut Vec<u8>, words: &[u64]) {
    let dense_size = words.len().saturating_mul(8);
    let mut sparse = Vec::new();
    let mut nruns = 0u64;
    let mut i = 0usize;
    let mut last_end = 0usize;
    while i < words.len() {
        if words[i] == 0 {
            i += 1;
            continue;
        }
        let start = i;
        while i < words.len() && words[i] != 0 {
            i += 1;
        }
        put_uvarint(&mut sparse, codec::len_u64(start - last_end));
        put_uvarint(&mut sparse, codec::len_u64(i - start));
        for &w in &words[start..i] {
            put_u64(&mut sparse, w);
        }
        last_end = i;
        nruns += 1;
    }
    let sparse_size = uvarint_len(nruns) + sparse.len();
    if sparse_size < dense_size {
        out.push(MODE_SPARSE);
        put_uvarint(out, nruns);
        out.extend_from_slice(&sparse);
    } else {
        out.push(MODE_DENSE);
        for &w in words {
            put_u64(out, w);
        }
    }
}

fn decode_words(
    r: &mut Reader<'_>,
    into: &mut [u64],
    which: &'static str,
) -> Result<(), CodecError> {
    match r.uvarint(which)? {
        m if m == u64::from(MODE_DENSE) => {
            for slot in into.iter_mut() {
                *slot = r.u64(which)?;
            }
            Ok(())
        }
        m if m == u64::from(MODE_SPARSE) => {
            let nruns = r.uvarint(which)?;
            let nruns = r.counted(which, nruns, codec::len_u64(into.len()))?;
            let mut pos = 0usize;
            for _ in 0..nruns {
                let gap = r.uvarint(which)?;
                let len = r.uvarint(which)?;
                let gap = r.counted(which, gap, codec::len_u64(into.len()))?;
                let len = r.counted(which, len, codec::len_u64(into.len()))?;
                let start = pos.checked_add(gap).filter(|&s| s <= into.len());
                let end = start
                    .and_then(|s| s.checked_add(len))
                    .filter(|&e| e <= into.len());
                let (Some(start), Some(end)) = (start, end) else {
                    return Err(CodecError::Truncated { at: which });
                };
                for slot in &mut into[start..end] {
                    *slot = r.u64(which)?;
                }
                pos = end;
            }
            Ok(())
        }
        other => Err(CodecError::Bloom(format!("unknown word mode byte {other}"))),
    }
}

const GRID_NAMES: [&str; 9] = [
    "rs_sip_dport",
    "rs_sip_dport_verifier",
    "rs_dip_dport",
    "rs_dip_dport_verifier",
    "rs_sip_dip",
    "rs_sip_dip_verifier",
    "os",
    "twod_sipdport_dip",
    "twod_sipdip_dport",
];

/// Serializes `snap` as a standalone v2 keyframe payload.
pub fn encode_keyframe(snap: &IntervalSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 << 12);
    out.push(0u8); // flags: keyframe
    put_u64(&mut out, snap.fingerprint);
    put_uvarint(&mut out, snap.syn_count);
    put_uvarint(&mut out, snap.syn_ack_count);
    put_uvarint(&mut out, snap.fin_rst_count);
    for grid in codec::grids(snap) {
        put_uvarint(&mut out, codec::len_u64(grid.stages()));
        put_uvarint(&mut out, codec::len_u64(grid.buckets()));
        for stage in 0..grid.stages() {
            encode_stage_i64(&mut out, grid.stage(stage));
        }
    }
    let bloom = &snap.active_services;
    put_uvarint(&mut out, codec::len_u64(bloom.bit_words().len()));
    put_uvarint(&mut out, codec::len_u64(bloom.hash_seeds().len()));
    put_uvarint(&mut out, bloom.inserted());
    encode_words(&mut out, bloom.bit_words());
    for &s in bloom.hash_seeds() {
        put_u64(&mut out, s);
    }
    out
}

/// Serializes `snap` as a delta against `base` (the snapshot of interval
/// `base_interval`, which the receiver must still retain): grids and
/// packet counters are absolute exactly as in a keyframe, and only the
/// cumulative Bloom filter carries residuals.
///
/// # Errors
///
/// [`CodecError::DeltaShapeMismatch`] when the two snapshots disagree on
/// Bloom geometry — XOR residuals between different shapes are
/// meaningless.
pub fn encode_delta(
    snap: &IntervalSnapshot,
    base: &IntervalSnapshot,
    base_interval: u64,
) -> Result<Vec<u8>, CodecError> {
    let (bloom, base_bloom) = (&snap.active_services, &base.active_services);
    if bloom.bit_words().len() != base_bloom.bit_words().len()
        || bloom.hash_seeds() != base_bloom.hash_seeds()
    {
        return Err(CodecError::DeltaShapeMismatch { at: "bloom" });
    }
    let mut out = Vec::with_capacity(1 << 12);
    out.push(FLAG_DELTA);
    put_uvarint(&mut out, base_interval);
    put_u64(&mut out, snap.fingerprint);
    put_uvarint(&mut out, snap.syn_count);
    put_uvarint(&mut out, snap.syn_ack_count);
    put_uvarint(&mut out, snap.fin_rst_count);
    for grid in codec::grids(snap) {
        put_uvarint(&mut out, codec::len_u64(grid.stages()));
        put_uvarint(&mut out, codec::len_u64(grid.buckets()));
        for stage in 0..grid.stages() {
            encode_stage_i64(&mut out, grid.stage(stage));
        }
    }
    put_uvarint(&mut out, codec::len_u64(bloom.bit_words().len()));
    put_uvarint(&mut out, codec::len_u64(bloom.hash_seeds().len()));
    put_uvarint(
        &mut out,
        zigzag(wrapping_diff_u64(bloom.inserted(), base_bloom.inserted())),
    );
    let xored: Vec<u64> = bloom
        .bit_words()
        .iter()
        .zip(base_bloom.bit_words())
        .map(|(&n, &o)| n ^ o)
        .collect();
    encode_words(&mut out, &xored);
    for &s in bloom.hash_seeds() {
        put_u64(&mut out, s);
    }
    Ok(out)
}

/// What the leading flag byte of a v2 payload declares.
pub enum V2Kind {
    /// A standalone snapshot.
    Keyframe,
    /// Residuals against the named baseline interval.
    Delta {
        /// Interval the residuals are relative to.
        baseline: u64,
    },
}

/// Reads just the flags (and baseline interval, for deltas) so a caller
/// can fetch chain state before committing to a full decode.
///
/// # Errors
///
/// Typed [`CodecError`]s for an empty payload, unknown flag bits, or a
/// truncated baseline varint.
pub fn peek_kind(payload: &[u8]) -> Result<V2Kind, CodecError> {
    let mut r = Reader::new(payload);
    let flags = r.uvarint("flags")?;
    match flags {
        0 => Ok(V2Kind::Keyframe),
        f if f == u64::from(FLAG_DELTA) => Ok(V2Kind::Delta {
            baseline: r.uvarint("baseline_interval")?,
        }),
        other => Err(CodecError::BadFlags {
            flags: other.min(u64::from(u8::MAX)),
        }),
    }
}

/// Shared body decode: `base` is `Some` exactly when the payload is a
/// delta (the caller already routed on [`peek_kind`]).
fn decode_body(
    payload: &[u8],
    base: Option<&IntervalSnapshot>,
) -> Result<IntervalSnapshot, CodecError> {
    let mut r = Reader::new(payload);
    let flags = r.uvarint("flags")?;
    if flags > u64::from(FLAG_DELTA) {
        return Err(CodecError::BadFlags {
            flags: flags.min(u64::from(u8::MAX)),
        });
    }
    let is_delta = flags == u64::from(FLAG_DELTA);
    if is_delta != base.is_some() {
        return Err(CodecError::DeltaShapeMismatch { at: "flags" });
    }
    if is_delta {
        let _baseline = r.uvarint("baseline_interval")?;
    }
    let fingerprint = r.u64("fingerprint")?;
    let syn_count = r.uvarint("syn_count")?;
    let syn_ack_count = r.uvarint("syn_ack_count")?;
    let fin_rst_count = r.uvarint("fin_rst_count")?;
    let mut grids: Vec<CounterGrid> = Vec::with_capacity(9);
    for which in GRID_NAMES.iter().copied() {
        let stages = r.uvarint(which)?;
        let buckets = r.uvarint(which)?;
        let cells = stages.checked_mul(buckets).ok_or(CodecError::Oversized {
            at: which,
            declared: u64::MAX,
            max: MAX_GRID_CELLS,
        })?;
        let cells = r.counted(which, cells, MAX_GRID_CELLS)?;
        let stages = r.counted(which, stages, MAX_GRID_CELLS)?;
        let buckets = r.counted(which, buckets, MAX_GRID_CELLS)?;
        let mut data = vec![0i64; cells];
        for stage in 0..stages {
            let row = &mut data[stage * buckets..(stage + 1) * buckets];
            decode_stage_i64(&mut r, row, which)?;
        }
        grids.push(CounterGrid::from_data(stages, buckets, data).map_err(|e| {
            CodecError::Grid {
                which,
                detail: e.to_string(),
            }
        })?);
    }
    let words = r.uvarint("bloom_words")?;
    let words = r.counted("bloom_words", words, MAX_BLOOM_WORDS)?;
    let seeds = r.uvarint("bloom_seeds")?;
    let seeds = r.counted("bloom_seeds", seeds, MAX_BLOOM_SEEDS)?;
    let base_bloom = base.map(|b| &b.active_services);
    if let Some(bb) = base_bloom {
        if bb.bit_words().len() != words || bb.hash_seeds().len() != seeds {
            return Err(CodecError::DeltaShapeMismatch { at: "bloom" });
        }
    }
    let inserted = match base_bloom {
        Some(bb) => wrapping_apply_u64(bb.inserted(), r.ivarint("bloom_inserted")?),
        None => r.uvarint("bloom_inserted")?,
    };
    let mut bits = vec![0u64; words];
    decode_words(&mut r, &mut bits, "bloom_words")?;
    if let Some(bb) = base_bloom {
        for (slot, &old) in bits.iter_mut().zip(bb.bit_words()) {
            *slot ^= old;
        }
    }
    let mut hash_seeds = Vec::with_capacity(seeds);
    for _ in 0..seeds {
        hash_seeds.push(r.u64("bloom_seeds")?);
    }
    let active_services =
        BloomFilter::from_parts(bits, hash_seeds, inserted).map_err(CodecError::Bloom)?;
    if r.position() != payload.len() {
        return Err(CodecError::TrailingBytes {
            extra: payload.len() - r.position(),
        });
    }
    let mut it = grids.into_iter();
    let mut next = || it.next().unwrap_or_else(|| CounterGrid::new(1, 1));
    Ok(IntervalSnapshot {
        rs_sip_dport: next(),
        rs_sip_dport_verifier: next(),
        rs_dip_dport: next(),
        rs_dip_dport_verifier: next(),
        rs_sip_dip: next(),
        rs_sip_dip_verifier: next(),
        os: next(),
        twod_sipdport_dip: next(),
        twod_sipdip_dport: next(),
        active_services,
        syn_count,
        syn_ack_count,
        fin_rst_count,
        fingerprint,
    })
}

/// Parses a standalone v2 keyframe payload.
///
/// # Errors
///
/// Typed [`CodecError`]s for every structural violation; a delta payload
/// fed here fails with [`CodecError::DeltaShapeMismatch`] at `flags`.
pub fn decode_keyframe(payload: &[u8]) -> Result<IntervalSnapshot, CodecError> {
    decode_body(payload, None)
}

/// Parses a v2 delta payload by applying its residuals onto `base`.
///
/// # Errors
///
/// Typed [`CodecError`]s, including shape mismatches against `base`.
pub fn decode_delta(
    payload: &[u8],
    base: &IntervalSnapshot,
) -> Result<IntervalSnapshot, CodecError> {
    decode_body(payload, Some(base))
}

/// What one v2 decode through a [`ChainStore`] produced.
pub struct ChainDecoded {
    /// The reconstructed snapshot.
    pub snapshot: IntervalSnapshot,
    /// Whether the wire form was a delta (for telemetry).
    pub was_delta: bool,
}

/// Receiver-side retention of recently decoded intervals, keyed by router
/// id, serving as delta baselines and duplicate-replay sources.
///
/// Entries are stored as encoded keyframe payloads (tens of kilobytes
/// sparse) rather than decoded snapshots (tens of megabytes of counters),
/// and re-decoded on demand; both depth per router and the router count
/// are capped.
#[derive(Default)]
pub struct ChainStore {
    per_router: BTreeMap<u32, BTreeMap<u64, Vec<u8>>>,
}

impl ChainStore {
    /// An empty store.
    pub fn new() -> Self {
        ChainStore::default()
    }

    fn insert(&mut self, router_id: u32, interval: u64, keyframe_payload: Vec<u8>) {
        if !self.per_router.contains_key(&router_id) && self.per_router.len() >= MAX_CHAIN_ROUTERS {
            // A flood of forged router ids must not grow memory without
            // bound; evict the lowest id (deterministic, and a real
            // router that loses its chain simply costs one keyframe).
            let evict = self.per_router.keys().next().copied();
            if let Some(evict) = evict {
                self.per_router.remove(&evict);
            }
        }
        let chain = self.per_router.entry(router_id).or_default();
        chain.insert(interval, keyframe_payload);
        while chain.len() > RETAIN_PER_ROUTER {
            let drop = chain.keys().next().copied();
            match drop {
                Some(k) => chain.remove(&k),
                None => break,
            };
        }
    }

    fn retained(&self, router_id: u32, interval: u64) -> Option<&Vec<u8>> {
        self.per_router.get(&router_id)?.get(&interval)
    }

    /// Decodes one v2 payload for `(router_id, interval)`, updating the
    /// retention so later deltas can chain off it.
    ///
    /// A delta for an interval that is *already retained* (a duplicated
    /// or re-shipped frame) is answered from retention, so replays carry
    /// their original content no matter what happened to the chain since.
    ///
    /// # Errors
    ///
    /// All structural [`CodecError`]s, plus
    /// [`CodecError::DeltaBaselineMissing`] when a delta references an
    /// interval this store no longer (or never) retained.
    pub fn decode(
        &mut self,
        router_id: u32,
        interval: u64,
        payload: &[u8],
    ) -> Result<ChainDecoded, CodecError> {
        match peek_kind(payload)? {
            V2Kind::Keyframe => {
                let snapshot = decode_keyframe(payload)?;
                self.insert(router_id, interval, payload.to_vec());
                Ok(ChainDecoded {
                    snapshot,
                    was_delta: false,
                })
            }
            V2Kind::Delta { baseline } => {
                if let Some(replay) = self.retained(router_id, interval) {
                    // Already decoded this interval once; hand back the
                    // retained content (the aligner will classify it as
                    // late/duplicate by interval).
                    let snapshot = decode_keyframe(replay)?;
                    return Ok(ChainDecoded {
                        snapshot,
                        was_delta: true,
                    });
                }
                let Some(base_bytes) = self.retained(router_id, baseline) else {
                    return Err(CodecError::DeltaBaselineMissing { baseline });
                };
                let base = decode_keyframe(base_bytes)?;
                let snapshot = decode_delta(payload, &base)?;
                self.insert(router_id, interval, encode_keyframe(&snapshot));
                Ok(ChainDecoded {
                    snapshot,
                    was_delta: true,
                })
            }
        }
    }
}

/// What [`SnapshotEncoder::encode`] produced for one interval.
pub struct EncodedV2 {
    /// The payload to ship (delta or keyframe form).
    pub payload: Vec<u8>,
    /// The standalone keyframe form of the same snapshot — identical to
    /// `payload` for keyframes; for deltas, the form safe to checkpoint
    /// or re-ship after a collector restart.
    pub keyframe: Vec<u8>,
    /// Whether `payload` is a delta.
    pub is_delta: bool,
}

/// Sender-side v2 encoder: retains the last encoded interval (as its
/// keyframe payload) and emits a delta against it only when the caller
/// has seen the collector's ack for exactly that interval — otherwise a
/// keyframe. Periodic keyframes ([`DEFAULT_KEYFRAME_EVERY`]) bound loss
/// recovery regardless of acks.
pub struct SnapshotEncoder {
    keyframe_every: u32,
    since_keyframe: u32,
    last: Option<(u64, Vec<u8>)>,
}

impl Default for SnapshotEncoder {
    fn default() -> Self {
        SnapshotEncoder::new(DEFAULT_KEYFRAME_EVERY)
    }
}

impl SnapshotEncoder {
    /// An encoder emitting a keyframe at least every `keyframe_every`
    /// frames (`0` behaves as `1`: every frame a keyframe).
    pub fn new(keyframe_every: u32) -> Self {
        SnapshotEncoder {
            keyframe_every: keyframe_every.max(1),
            since_keyframe: 0,
            last: None,
        }
    }

    /// Drops the retained baseline, forcing the next frame to be a
    /// keyframe (used when the upstream session is torn down).
    pub fn reset(&mut self) {
        self.last = None;
        self.since_keyframe = 0;
    }

    /// Encodes `snap` for `interval`. `acked` is the highest interval the
    /// collector has acknowledged decoding this session (`None` before
    /// the first ack).
    pub fn encode(
        &mut self,
        interval: u64,
        snap: &IntervalSnapshot,
        acked: Option<u64>,
    ) -> EncodedV2 {
        let keyframe = encode_keyframe(snap);
        let delta = match (&self.last, acked) {
            (Some((base_iv, base_bytes)), Some(acked_iv))
                if acked_iv >= *base_iv && self.since_keyframe < self.keyframe_every =>
            {
                decode_keyframe(base_bytes)
                    .ok()
                    .and_then(|base| encode_delta(snap, &base, *base_iv).ok())
                    .map(|payload| (*base_iv, payload))
            }
            _ => None,
        };
        self.last = Some((interval, keyframe.clone()));
        match delta {
            // A delta that does not actually save bytes (attack churn
            // touching most buckets) is pointless risk; ship the keyframe.
            Some((_, payload)) if payload.len() < keyframe.len() => {
                self.since_keyframe += 1;
                EncodedV2 {
                    payload,
                    keyframe,
                    is_delta: true,
                }
            }
            _ => {
                self.since_keyframe = 0;
                EncodedV2 {
                    payload: keyframe.clone(),
                    keyframe,
                    is_delta: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind::{HiFindConfig, SketchRecorder};
    use hifind_flow::Packet;

    fn sample(seed: u64, packets: u32) -> IntervalSnapshot {
        let cfg = HiFindConfig::small(seed);
        let mut r = SketchRecorder::new(&cfg).unwrap();
        for i in 0..packets {
            r.record(&Packet::syn(
                u64::from(i),
                [10, 0, (i >> 8) as u8, i as u8].into(),
                2000,
                [129, 105, 0, 1].into(),
                80,
            ));
        }
        r.take_snapshot()
    }

    /// A pair of successive snapshots from one recorder (so the Bloom
    /// filter is cumulative across them, like real intervals).
    fn sample_pair(seed: u64) -> (IntervalSnapshot, IntervalSnapshot) {
        let cfg = HiFindConfig::small(seed);
        let mut r = SketchRecorder::new(&cfg).unwrap();
        for i in 0..300u32 {
            r.record(&Packet::syn(
                u64::from(i),
                [10, 0, 0, i as u8].into(),
                2000,
                [129, 105, 0, 1].into(),
                80,
            ));
            r.record(&Packet::syn_ack(
                u64::from(i),
                [10, 0, 0, i as u8].into(),
                2000,
                [129, 105, 0, 1].into(),
                80,
            ));
        }
        let a = r.take_snapshot();
        for i in 0..40u32 {
            r.record(&Packet::syn(
                1000 + u64::from(i),
                [10, 1, 0, i as u8].into(),
                2100,
                [129, 105, 0, 2].into(),
                443,
            ));
        }
        (a, r.take_snapshot())
    }

    #[test]
    fn keyframe_round_trip_is_exact() {
        for packets in [0, 1, 50, 500] {
            let snap = sample(7, packets);
            let back = decode_keyframe(&encode_keyframe(&snap)).unwrap();
            assert_eq!(back, snap, "{packets} packets");
        }
    }

    #[test]
    fn delta_round_trip_is_exact() {
        let (base, snap) = sample_pair(11);
        let payload = encode_delta(&snap, &base, 0).unwrap();
        let back = decode_delta(&payload, &base).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn delta_shrinks_the_cumulative_bloom() {
        let (base, snap) = sample_pair(12);
        let keyframe = encode_keyframe(&snap);
        let delta = encode_delta(&snap, &base, 0).unwrap();
        assert!(
            delta.len() < keyframe.len(),
            "delta {} should be under the keyframe {}",
            delta.len(),
            keyframe.len()
        );
    }

    #[test]
    fn sparse_keyframe_is_far_below_v1() {
        let snap = sample(13, 60);
        let v1 = crate::codec::encode_snapshot(&snap);
        let v2 = encode_keyframe(&snap);
        assert!(
            v2.len() * 4 < v1.len(),
            "sparse keyframe {} should be well under the dense v1 payload {}",
            v2.len(),
            v1.len()
        );
    }

    #[test]
    fn extreme_counters_round_trip_through_both_modes() {
        use hifind_hashing::BloomFilter;
        use hifind_sketch::CounterGrid;
        let grid = |vals: Vec<i64>| CounterGrid::from_data(1, vals.len(), vals).unwrap();
        let mk = |values: [i64; 4], counts: [u64; 3]| IntervalSnapshot {
            rs_sip_dport: grid(values.to_vec()),
            rs_sip_dport_verifier: grid(vec![0; 4]),
            rs_dip_dport: grid(vec![0; 4]),
            rs_dip_dport_verifier: grid(vec![0; 4]),
            rs_sip_dip: grid(vec![0; 4]),
            rs_sip_dip_verifier: grid(vec![0; 4]),
            os: grid(vec![0; 4]),
            twod_sipdport_dip: grid(vec![0; 4]),
            twod_sipdip_dport: grid(vec![0; 4]),
            active_services: BloomFilter::from_parts(vec![u64::MAX, 0], vec![1, 2], u64::MAX)
                .unwrap(),
            syn_count: counts[0],
            syn_ack_count: counts[1],
            fin_rst_count: counts[2],
            fingerprint: 0xDEAD_BEEF,
        };
        let base = mk([i64::MAX, i64::MIN, -1, 0], [u64::MAX, 0, 7]);
        let snap = mk([i64::MIN, i64::MAX, 1, 0], [0, u64::MAX, 9]);
        assert_eq!(decode_keyframe(&encode_keyframe(&snap)).unwrap(), snap);
        assert_eq!(decode_keyframe(&encode_keyframe(&base)).unwrap(), base);
        let delta = encode_delta(&snap, &base, 3).unwrap();
        assert_eq!(decode_delta(&delta, &base).unwrap(), snap);
    }

    #[test]
    fn truncation_anywhere_is_typed_never_a_panic() {
        let (base, snap) = sample_pair(14);
        for payload in [
            encode_keyframe(&snap),
            encode_delta(&snap, &base, 0).unwrap(),
        ] {
            for cut in (0..payload.len()).step_by(13) {
                let kind = peek_kind(&payload).unwrap();
                let r = match kind {
                    V2Kind::Keyframe => decode_keyframe(&payload[..cut]),
                    V2Kind::Delta { .. } => decode_delta(&payload[..cut], &base),
                };
                assert!(r.is_err(), "cut at {cut} must fail");
            }
        }
    }

    #[test]
    fn unknown_flags_and_mode_bytes_are_typed_errors() {
        let snap = sample(15, 20);
        let mut payload = encode_keyframe(&snap);
        payload[0] = 0x40;
        assert!(matches!(
            decode_keyframe(&payload),
            Err(CodecError::BadFlags { .. })
        ));
        assert!(matches!(
            peek_kind(&payload),
            Err(CodecError::BadFlags { .. })
        ));
        assert!(peek_kind(&[]).is_err());
    }

    #[test]
    fn chain_store_decodes_deltas_and_replays_duplicates() {
        let (a, b) = sample_pair(16);
        let mut chains = ChainStore::new();
        let key = encode_keyframe(&a);
        let out = chains.decode(9, 0, &key).unwrap();
        assert!(!out.was_delta);
        assert_eq!(out.snapshot, a);
        let delta = encode_delta(&b, &a, 0).unwrap();
        let out = chains.decode(9, 1, &delta).unwrap();
        assert!(out.was_delta);
        assert_eq!(out.snapshot, b);
        // A duplicated delivery of the same delta replays the retained
        // content instead of re-applying residuals onto the wrong base.
        let dup = chains.decode(9, 1, &delta).unwrap();
        assert_eq!(dup.snapshot, b);
        // A delta whose baseline was never seen is a typed chain break.
        let orphan = encode_delta(&b, &a, 40).unwrap();
        assert!(matches!(
            chains.decode(9, 41, &orphan),
            Err(CodecError::DeltaBaselineMissing { baseline: 40 })
        ));
        // Other routers never share chain state.
        assert!(matches!(
            chains.decode(10, 1, &delta),
            Err(CodecError::DeltaBaselineMissing { .. })
        ));
    }

    #[test]
    fn chain_store_retention_is_bounded() {
        let snap = sample(17, 10);
        let key = encode_keyframe(&snap);
        let mut chains = ChainStore::new();
        for iv in 0..20u64 {
            chains.decode(1, iv, &key).unwrap();
        }
        assert!(chains.per_router.get(&1).unwrap().len() <= RETAIN_PER_ROUTER);
        for router in 0..2000u32 {
            chains.decode(router, 0, &key).unwrap();
        }
        assert!(chains.per_router.len() <= MAX_CHAIN_ROUTERS);
    }

    #[test]
    fn encoder_is_ack_gated_and_keyframes_periodically() {
        let (a, b) = sample_pair(18);
        let mut enc = SnapshotEncoder::new(3);
        // No ack yet: keyframe.
        let e0 = enc.encode(0, &a, None);
        assert!(!e0.is_delta);
        // Ack for interval 0 seen: interval 1 may delta against it.
        let e1 = enc.encode(1, &b, Some(0));
        assert!(e1.is_delta);
        assert_eq!(decode_delta(&e1.payload, &a).unwrap(), b);
        assert_eq!(decode_keyframe(&e1.keyframe).unwrap(), b);
        // Two more acked deltas, then the periodic keyframe fires.
        assert!(enc.encode(2, &b, Some(1)).is_delta);
        assert!(enc.encode(3, &b, Some(2)).is_delta);
        assert!(!enc.encode(4, &b, Some(3)).is_delta, "keyframe_every=3");
        // Stale ack (previous interval unacked): keyframe.
        assert!(!enc.encode(5, &b, Some(3)).is_delta);
        // Reset forces a keyframe even with a fresh ack.
        assert!(enc.encode(6, &b, Some(5)).is_delta);
        enc.reset();
        assert!(!enc.encode(7, &b, Some(6)).is_delta);
    }
}
