//! The mid-tier aggregation role: tree-structured collection.
//!
//! An [`Aggregator`] accepts N downstream nodes (router agents or other
//! aggregators) on the same event-driven engine as the root collector,
//! aligns their snapshots on the same bounded-reorder-window +
//! straggler-quorum machinery ([`crate::align`]), COMBINEs them — gated
//! on the record-plane config fingerprint — and re-emits **one** summed
//! [`IntervalSnapshot`] upstream through the same retry/backoff/backlog
//! shipping path the router agents use ([`crate::ship`]). Because sketch
//! summation is associative and commutative (linearity), the root's
//! detection over a tree of aggregators is bit-identical to a flat run
//! where every agent connects to the root directly; the tree only
//! multiplies fan-in.
//!
//! # Gap semantics
//!
//! When no child reports an interval, the aggregator forwards *nothing*
//! for it — never an all-zero snapshot, which would be summed upstream as
//! a real observation, drag the EWMA baseline toward zero, and cause
//! spurious alerts on recovery (the PR 5 regression, now per tier). The
//! upstream tier's own straggler/gap machinery notices the hole and
//! degrades exactly as if that subtree were a single silent router.
//!
//! # Durability
//!
//! An aggregator's durable state is precisely an agent checkpoint: its
//! node id, the next interval its aligner will flush, and the encoded
//! frames still owed upstream. It reuses the `"HFA1"` container verbatim,
//! so a killed mid-tier node resumes with its numbering and backlog
//! intact and the tiers above and below reconverge on their own.

use crate::align::{AlignPolicy, Flush, FlushKind, IntervalAligner, OfferOutcome};
use crate::checkpoint::{self, CheckpointError};
use crate::collector::{CheckpointPolicy, CollectorTelemetry};
use crate::engine::{EngineConfig, EngineHandle, Event, PollEngine};
use crate::observer::CollectObserver;
use crate::ship::{ShipConfig, Shipper};
use crate::wire::{self, WireError};
use crate::{AgentStats, CollectError};
use hifind::{HiFindConfig, IntervalSnapshot};
use hifind_telemetry::{Counter, Registry, TelemetryError};
use serde::Serialize;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Mid-tier policy knobs. The alignment half mirrors
/// [`crate::CollectorConfig`]; the shipping half mirrors
/// [`crate::AgentConfig`] — an aggregator is both at once.
#[derive(Clone)]
pub struct AggregatorConfig {
    /// This node's id in the frame headers it emits upstream.
    pub node_id: u32,
    /// Downstream nodes expected to report each interval (the tier's
    /// quorum).
    pub expected_children: usize,
    /// How long to hold an incomplete interval open before forwarding on
    /// quorum.
    pub straggler_deadline: Duration,
    /// Maximum intervals held pending at once.
    pub reorder_window: u64,
    /// Per-frame payload cap handed to the wire layer.
    pub max_payload_bytes: u32,
    /// After every expected child has connected and all have
    /// disconnected, how long to wait for reconnects before finishing.
    pub linger: Duration,
    /// Periodic durable-state checkpointing (plus one final write at run
    /// end). Write failures are counted, never fatal.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume interval numbering and the unshipped backlog from this
    /// checkpoint file at startup.
    pub resume_from: Option<PathBuf>,
    /// Hooks invoked at tier transitions (snapshot forwarded, tier gap,
    /// frame rejection, checkpoint write/resume, upstream reconnect).
    pub observer: Option<Arc<dyn CollectObserver>>,
    /// Upstream shipping policy (backlog, attempts, backoff, timeouts,
    /// and the codecs offered upstream).
    pub ship: ShipConfig,
    /// Codec ids accepted from downstream children, in preference order.
    /// Independent of `ship.codecs`: a tier can accept v2 below while a
    /// legacy root above forces its own uplink down to v1.
    pub codecs: Vec<u8>,
}

impl std::fmt::Debug for AggregatorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AggregatorConfig")
            .field("node_id", &self.node_id)
            .field("expected_children", &self.expected_children)
            .field("straggler_deadline", &self.straggler_deadline)
            .field("reorder_window", &self.reorder_window)
            .field("max_payload_bytes", &self.max_payload_bytes)
            .field("linger", &self.linger)
            .field("checkpoint", &self.checkpoint)
            .field("resume_from", &self.resume_from)
            .field("observer", &self.observer.as_ref().map(|_| "Some(..)"))
            .field("ship", &self.ship)
            .field("codecs", &self.codecs)
            .finish()
    }
}

impl AggregatorConfig {
    /// Sensible defaults for a node expecting `expected_children`
    /// downstream reporters.
    pub fn new(node_id: u32, expected_children: usize) -> Self {
        AggregatorConfig {
            node_id,
            expected_children: expected_children.max(1),
            straggler_deadline: Duration::from_secs(2),
            reorder_window: 8,
            max_payload_bytes: wire::DEFAULT_MAX_PAYLOAD,
            linger: Duration::from_millis(400),
            checkpoint: None,
            resume_from: None,
            observer: None,
            ship: ShipConfig::default(),
            codecs: vec![wire::CODEC_V2, wire::CODEC_V1],
        }
    }
}

/// What one aggregation run saw and forwarded.
#[derive(Clone, Debug, Default, Serialize)]
pub struct AggregatorReport {
    /// This node's id.
    pub node_id: u32,
    /// Summed snapshots forwarded upstream.
    pub intervals_forwarded: u64,
    /// Forwarded intervals with every expected child reporting.
    pub complete_intervals: u64,
    /// Forwarded on quorum after the straggler deadline.
    pub partial_intervals: u64,
    /// Intervals no child reported: nothing was forwarded, the upstream
    /// tier synthesizes the gap.
    pub gap_intervals: u64,
    /// Missing child-interval contributions across partial intervals.
    pub straggler_slots: u64,
    /// Valid child frames combined into intervals.
    pub frames_received: u64,
    /// Child frames dropped as late or duplicate.
    pub frames_late: u64,
    /// Child frames rejected for wire/codec/fingerprint violations.
    pub frames_rejected: u64,
    /// Accepted child frames that arrived in the legacy v1 codec.
    pub frames_codec_v1: u64,
    /// Accepted v2 keyframes from children.
    pub frames_v2_keyframes: u64,
    /// Accepted v2 delta frames from children.
    pub frames_v2_deltas: u64,
    /// Payload + header bytes of valid child frames.
    pub bytes_received: u64,
    /// Distinct child ids that contributed at least one valid frame.
    pub children_seen: Vec<u32>,
    /// Checkpoints successfully written this run.
    pub checkpoints_written: u64,
    /// Checkpoint writes that failed (the run continues regardless).
    pub checkpoint_errors: u64,
    /// Interval the run resumed at, when started with
    /// [`AggregatorConfig::resume_from`].
    pub resumed_at_interval: Option<u64>,
    /// Upstream shipping counters (the same shape agents report).
    pub ship: AgentStats,
    /// Frames still owed upstream when the run ended (they were also
    /// captured in the final checkpoint, when one is configured).
    pub frames_unshipped: u64,
}

/// Aggregator-specific metrics on top of the shared collection-tier set.
struct AggregatorTelemetry {
    base: CollectorTelemetry,
    forwarded: Arc<Counter>,
    tier_gaps: Arc<Counter>,
}

impl AggregatorTelemetry {
    fn new(registry: &Registry) -> Result<Self, TelemetryError> {
        Ok(AggregatorTelemetry {
            base: CollectorTelemetry::new(registry)?,
            forwarded: registry.counter(
                "hifind_collect_forwarded_total",
                "Summed interval snapshots forwarded upstream by this tier",
            )?,
            tier_gaps: registry.counter(
                "hifind_collect_tier_gaps_total",
                "Intervals this tier forwarded nothing for (no child reported)",
            )?,
        })
    }
}

/// The mid-tier daemon. [`Aggregator::bind`] starts it; the returned
/// [`AggregatorHandle`] stops or awaits it.
pub struct Aggregator;

impl Aggregator {
    /// Binds `listen`, starts the engine and merger threads, and ships
    /// summed snapshots to `upstream` (a collector or another
    /// aggregator).
    ///
    /// # Errors
    ///
    /// Fails on bind errors, invalid `cfg`, unreadable/mismatched resume
    /// checkpoints, or (when `registry` is given) metric registration
    /// clashes.
    pub fn bind(
        listen: impl ToSocketAddrs,
        upstream: impl Into<String>,
        cfg: HiFindConfig,
        agg_cfg: AggregatorConfig,
        registry: Option<Registry>,
    ) -> Result<AggregatorHandle, CollectError> {
        let telemetry = registry
            .as_ref()
            .map(AggregatorTelemetry::new)
            .transpose()?;
        let listener = TcpListener::bind(listen)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        // Same bound and rationale as the root collector: a merger that
        // falls behind blocks the engine, pushing backpressure onto TCP.
        let (tx, rx) = std::sync::mpsc::sync_channel::<Event>(32);
        let engine = PollEngine::spawn(
            listener,
            tx,
            Arc::clone(&shutdown),
            EngineConfig {
                max_payload: agg_cfg.max_payload_bytes,
                tick: Duration::from_millis(50),
                codecs: agg_cfg.codecs.clone(),
            },
        )?;
        let merger = {
            let shutdown = Arc::clone(&shutdown);
            let mut merger = Merger::new(upstream.into(), cfg, agg_cfg, telemetry)?;
            std::thread::spawn(move || merger.run(rx, shutdown))
        };
        Ok(AggregatorHandle {
            local_addr,
            shutdown,
            engine,
            merger,
        })
    }
}

/// A running aggregator.
pub struct AggregatorHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    engine: EngineHandle,
    merger: JoinHandle<AggregatorReport>,
}

impl AggregatorHandle {
    /// The bound downstream-facing address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals shutdown and returns the report once both threads exit.
    /// Pending intervals are forwarded (partial where needed) first.
    ///
    /// # Errors
    ///
    /// [`CollectError::WorkerPanic`] if an aggregator thread died.
    pub fn stop(self) -> Result<AggregatorReport, CollectError> {
        self.shutdown.store(true, Ordering::SeqCst);
        self.engine.wake();
        self.join()
    }

    /// Waits for the natural end of the run: every expected child has
    /// connected, all have disconnected, and the linger window has passed
    /// with no reconnects.
    ///
    /// # Errors
    ///
    /// [`CollectError::WorkerPanic`] if an aggregator thread died.
    pub fn wait(self) -> Result<AggregatorReport, CollectError> {
        self.join()
    }

    fn join(self) -> Result<AggregatorReport, CollectError> {
        let merger_outcome = self.merger.join();
        self.shutdown.store(true, Ordering::SeqCst);
        self.engine.wake();
        let engine_outcome = self.engine.join();
        let report = merger_outcome.map_err(|_| CollectError::WorkerPanic("merger"))?;
        engine_outcome?;
        Ok(report)
    }
}

struct Merger {
    cfg: AggregatorConfig,
    fingerprint: u64,
    aligner: IntervalAligner,
    shipper: Shipper,
    report: AggregatorReport,
    telemetry: Option<AggregatorTelemetry>,
    live_connections: usize,
    ever_connected: usize,
    last_disconnect: Option<Instant>,
}

impl Merger {
    fn new(
        upstream: String,
        cfg: HiFindConfig,
        agg_cfg: AggregatorConfig,
        telemetry: Option<AggregatorTelemetry>,
    ) -> Result<Self, CollectError> {
        let mut report = AggregatorReport {
            node_id: agg_cfg.node_id,
            ..AggregatorReport::default()
        };
        let mut shipper = Shipper::new(upstream, agg_cfg.node_id, agg_cfg.ship.clone());
        if let Some(obs) = &agg_cfg.observer {
            shipper.set_observer(Arc::clone(obs));
        }
        let mut start_interval = 0;
        if let Some(path) = &agg_cfg.resume_from {
            let ckpt = checkpoint::read_agent_checkpoint(path)?;
            let expected = cfg.fingerprint();
            if ckpt.fingerprint != expected {
                return Err(CollectError::Checkpoint(
                    CheckpointError::FingerprintMismatch {
                        expected,
                        got: ckpt.fingerprint,
                    },
                ));
            }
            if ckpt.router_id != agg_cfg.node_id {
                return Err(CollectError::Checkpoint(CheckpointError::Invalid {
                    at: "node_id",
                    detail: format!(
                        "checkpoint is for node {}, aggregator configured as node {}",
                        ckpt.router_id, agg_cfg.node_id
                    ),
                }));
            }
            start_interval = ckpt.interval;
            shipper.restore_backlog(&ckpt.backlog);
            report.resumed_at_interval = Some(ckpt.interval);
            if let Some(t) = &telemetry {
                t.base.checkpoint_resumed.inc();
            }
            if let Some(obs) = &agg_cfg.observer {
                obs.resumed(ckpt.interval, path);
            }
        }
        let aligner = IntervalAligner::new(
            AlignPolicy {
                expected: agg_cfg.expected_children,
                straggler_deadline: agg_cfg.straggler_deadline,
                reorder_window: agg_cfg.reorder_window,
            },
            start_interval,
        );
        Ok(Merger {
            fingerprint: cfg.fingerprint(),
            cfg: agg_cfg,
            aligner,
            shipper,
            report,
            telemetry,
            live_connections: 0,
            ever_connected: 0,
            last_disconnect: None,
        })
    }

    fn run(&mut self, rx: Receiver<Event>, shutdown: Arc<AtomicBool>) -> AggregatorReport {
        // Capped like the collector's tick: a long straggler deadline
        // must not delay noticing natural finish by minutes.
        let tick = (self.cfg.straggler_deadline / 4)
            .clamp(Duration::from_millis(10), Duration::from_secs(1));
        loop {
            match rx.recv_timeout(tick) {
                Ok(event) => self.handle(event),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            self.flush_ready(false);
            if shutdown.load(Ordering::SeqCst) || self.finished() {
                break;
            }
        }
        // Drain whatever the engine already decoded, then forward every
        // pending interval — partial or not, the tier never hangs.
        while let Ok(event) = rx.try_recv() {
            self.handle(event);
        }
        self.flush_ready(true);
        // One last push at whatever is still owed upstream, then persist
        // the remainder so a restart re-ships exactly that.
        let _ = self.shipper.flush();
        self.maybe_checkpoint(true);
        self.report.ship = self.shipper.stats().clone();
        self.report.frames_unshipped =
            u64::try_from(self.shipper.backlog_len()).unwrap_or(u64::MAX);
        std::mem::take(&mut self.report)
    }

    /// Natural end of a run: the full child fleet connected at some
    /// point, all of it left, and nobody reconnected for a linger window.
    fn finished(&self) -> bool {
        self.live_connections == 0
            && self.ever_connected >= self.cfg.expected_children
            && self
                .last_disconnect
                .is_some_and(|t| t.elapsed() >= self.cfg.linger)
    }

    /// Writes a checkpoint if the policy says one is due (`force` writes
    /// whenever a policy exists). Failures are counted and logged; the
    /// run always continues.
    fn maybe_checkpoint(&mut self, force: bool) {
        let Some(policy) = &self.cfg.checkpoint else {
            return;
        };
        let next_interval = self.aligner.next_interval();
        let due = force
            || (policy.every_intervals > 0 && next_interval.is_multiple_of(policy.every_intervals));
        if !due {
            return;
        }
        let ckpt = checkpoint::AgentCheckpoint {
            fingerprint: self.fingerprint,
            router_id: self.cfg.node_id,
            interval: next_interval,
            backlog: self.shipper.backlog_frames(),
        };
        match checkpoint::write_agent_checkpoint(&policy.path, &ckpt) {
            Ok(()) => {
                self.report.checkpoints_written += 1;
                if let Some(t) = &self.telemetry {
                    t.base.checkpoint_written.inc();
                    t.base
                        .checkpoint_last_interval
                        .set(i64::try_from(next_interval).unwrap_or(i64::MAX));
                }
                if let Some(obs) = &self.cfg.observer {
                    obs.checkpoint_written(next_interval, &policy.path);
                }
            }
            Err(e) => {
                eprintln!("[hifind-aggregate] checkpoint write failed: {e}");
                self.report.checkpoint_errors += 1;
                if let Some(t) = &self.telemetry {
                    t.base.checkpoint_write_errors.inc();
                }
            }
        }
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Connected => {
                self.live_connections += 1;
                self.ever_connected += 1;
                if let Some(t) = &self.telemetry {
                    t.base
                        .routers_connected
                        .set(i64::try_from(self.live_connections).unwrap_or(i64::MAX));
                }
            }
            Event::Disconnected => {
                self.live_connections = self.live_connections.saturating_sub(1);
                if self.live_connections == 0 {
                    self.last_disconnect = Some(Instant::now());
                }
                if let Some(t) = &self.telemetry {
                    t.base
                        .routers_connected
                        .set(i64::try_from(self.live_connections).unwrap_or(i64::MAX));
                }
            }
            Event::Rejected(err) => self.reject(err),
            Event::Frame {
                router_id,
                interval,
                snapshot,
                frame_bytes,
                codec,
                delta,
            } => self.handle_frame(router_id, interval, *snapshot, frame_bytes, codec, delta),
        }
    }

    /// A typed, counted rejection — mismatched children are surfaced
    /// through the report, telemetry, and observer, never silently
    /// dropped (and certainly never merged).
    fn reject(&mut self, err: WireError) {
        eprintln!("[hifind-aggregate] rejected frame: {err}");
        self.report.frames_rejected += 1;
        if let Some(t) = &self.telemetry {
            t.base.frames_rejected.inc();
        }
        if let Some(obs) = &self.cfg.observer {
            obs.frame_rejected(&err);
        }
    }

    fn handle_frame(
        &mut self,
        child_id: u32,
        interval: u64,
        snapshot: IntervalSnapshot,
        frame_bytes: u64,
        codec: u8,
        delta: bool,
    ) {
        if snapshot.fingerprint != self.fingerprint {
            // A child recording under different seeds or shapes cannot be
            // combined; COMBINE is gated on the config fingerprint at
            // every tier, not just the root.
            self.reject(WireError::FingerprintMismatch {
                header: self.fingerprint,
                payload: snapshot.fingerprint,
            });
            return;
        }
        let combine_start = Instant::now();
        match self.aligner.offer(child_id, interval, snapshot) {
            OfferOutcome::Accepted => {
                self.report.frames_received += 1;
                self.report.bytes_received += frame_bytes;
                match (codec, delta) {
                    (wire::CODEC_V2, true) => self.report.frames_v2_deltas += 1,
                    (wire::CODEC_V2, false) => self.report.frames_v2_keyframes += 1,
                    _ => self.report.frames_codec_v1 += 1,
                }
                if !self.report.children_seen.contains(&child_id) {
                    self.report.children_seen.push(child_id);
                }
                if let Some(t) = &self.telemetry {
                    t.base.frames_received.inc();
                    t.base.bytes_received.add(frame_bytes);
                    match (codec, delta) {
                        (wire::CODEC_V2, true) => t.base.frames_v2_deltas.inc(),
                        (wire::CODEC_V2, false) => t.base.frames_v2_keyframes.inc(),
                        _ => t.base.frames_codec_v1.inc(),
                    }
                    t.base
                        .combine_seconds
                        .observe_duration(combine_start.elapsed());
                }
            }
            OfferOutcome::Late | OfferOutcome::Duplicate => {
                self.report.frames_late += 1;
                if let Some(t) = &self.telemetry {
                    t.base.frames_late.inc();
                }
            }
            OfferOutcome::CombineFailed => {
                // Unreachable given the fingerprint gate, but a counted
                // rejection beats a poisoned aggregate.
                self.report.frames_rejected += 1;
                if let Some(t) = &self.telemetry {
                    t.base.frames_rejected.inc();
                }
            }
        }
    }

    /// Forwards every interval the aligner deems ready; with `drain`
    /// forwards everything pending.
    fn flush_ready(&mut self, drain: bool) {
        while let Some(flush) = self.aligner.pop_ready(drain) {
            match &flush.kind {
                FlushKind::Complete => self.report.complete_intervals += 1,
                FlushKind::Partial { missing } => {
                    self.report.partial_intervals += 1;
                    self.report.straggler_slots += missing;
                    if let Some(t) = &self.telemetry {
                        t.base.straggler_slots.add(*missing);
                    }
                }
                FlushKind::Gap => {
                    let slots = u64::try_from(self.cfg.expected_children).unwrap_or(u64::MAX);
                    self.report.gap_intervals += 1;
                    self.report.straggler_slots += slots;
                    if let Some(t) = &self.telemetry {
                        t.base.straggler_slots.add(slots);
                        t.tier_gaps.inc();
                    }
                }
            }
            self.forward(flush);
            self.maybe_checkpoint(false);
        }
    }

    fn forward(&mut self, flush: Flush) {
        let Some((combined, contributors)) = flush.payload else {
            // A gap forwards NOTHING. An all-zero snapshot would be
            // summed upstream as a genuine observation and drag the
            // forecast baseline down; silence lets the upstream tier's
            // own straggler/gap machinery classify the hole correctly.
            if let Some(obs) = &self.cfg.observer {
                obs.tier_gap(self.cfg.node_id, flush.interval);
            }
            return;
        };
        // The shipper re-encodes the sum in whatever codec its upstream
        // negotiated (keeping its own delta chain against that peer) and
        // counts an unframeable sum as a dropped interval itself.
        let _ = self.shipper.ship_snapshot(flush.interval, &combined);
        self.report.intervals_forwarded += 1;
        if let Some(t) = &self.telemetry {
            t.forwarded.inc();
        }
        if let Some(obs) = &self.cfg.observer {
            obs.snapshot_forwarded(
                self.cfg.node_id,
                flush.interval,
                &combined,
                contributors,
                self.cfg.expected_children,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AgentConfig, RouterAgent};
    use crate::collector::{Collector, CollectorConfig};
    use hifind_flow::Packet;

    /// Two agents → one aggregator → root expecting one reporter: the
    /// root must see exactly the aggregator's node id and the combined
    /// frame count.
    #[test]
    fn two_agents_through_one_aggregator_round_trip() {
        let cfg = HiFindConfig::small(21);
        let mut root_cfg = CollectorConfig::new(1);
        root_cfg.straggler_deadline = Duration::from_secs(60);
        root_cfg.reorder_window = 64;
        let root = Collector::bind("127.0.0.1:0", cfg, root_cfg, None).expect("bind root");
        let mut agg_cfg = AggregatorConfig::new(500, 2);
        agg_cfg.straggler_deadline = Duration::from_secs(60);
        agg_cfg.reorder_window = 64;
        agg_cfg.linger = Duration::from_millis(100);
        let agg = Aggregator::bind(
            "127.0.0.1:0",
            root.local_addr().to_string(),
            cfg,
            agg_cfg,
            None,
        )
        .expect("bind aggregator");
        let agg_addr = agg.local_addr().to_string();
        for child in 0..2u32 {
            let mut agent =
                RouterAgent::new(agg_addr.clone(), &cfg, AgentConfig::new(child)).unwrap();
            for iv in 0..3u64 {
                for i in 0..20u8 {
                    agent.record(&Packet::syn(
                        iv,
                        [10, child as u8, 0, i].into(),
                        2000,
                        [129, 105, 0, 1].into(),
                        80,
                    ));
                }
                agent.end_interval();
            }
            agent.finish();
        }
        let agg_report = agg.wait().expect("aggregator threads");
        assert_eq!(agg_report.node_id, 500);
        assert_eq!(agg_report.frames_received, 6);
        assert_eq!(agg_report.intervals_forwarded, 3);
        assert_eq!(agg_report.complete_intervals, 3);
        assert_eq!(agg_report.gap_intervals, 0);
        assert_eq!(agg_report.frames_unshipped, 0);
        let mut children = agg_report.children_seen.clone();
        children.sort_unstable();
        assert_eq!(children, vec![0, 1]);
        let root_report = root.wait().expect("collector threads");
        assert_eq!(root_report.frames_received, 3);
        assert_eq!(root_report.complete_intervals, 3);
        assert_eq!(root_report.routers_seen, vec![500]);
    }

    /// A mis-seeded child at an interior tier is rejected with a typed,
    /// counted error — not silently dropped, and never merged.
    #[test]
    fn interior_fingerprint_mismatch_is_typed_and_counted() {
        let cfg = HiFindConfig::small(22);
        let rogue_cfg = HiFindConfig::small(23);
        let mut root_cfg = CollectorConfig::new(1);
        root_cfg.straggler_deadline = Duration::from_secs(60);
        let root = Collector::bind("127.0.0.1:0", cfg, root_cfg, None).expect("bind root");
        let registry = Registry::new();
        let mut agg_cfg = AggregatorConfig::new(7, 2);
        agg_cfg.straggler_deadline = Duration::from_secs(60);
        agg_cfg.linger = Duration::from_millis(100);
        let agg = Aggregator::bind(
            "127.0.0.1:0",
            root.local_addr().to_string(),
            cfg,
            agg_cfg,
            Some(registry.clone()),
        )
        .expect("bind aggregator");
        let agg_addr = agg.local_addr().to_string();
        let mut good = RouterAgent::new(agg_addr.clone(), &cfg, AgentConfig::new(1)).unwrap();
        good.end_interval();
        good.finish();
        // The rogue frame is internally consistent (header fingerprint ==
        // payload fingerprint), so the wire layer passes it and the
        // MERGER must reject it on the tier's own fingerprint gate.
        let mut rogue = RouterAgent::new(agg_addr, &rogue_cfg, AgentConfig::new(2)).unwrap();
        rogue.end_interval();
        rogue.finish();
        let report = agg.wait().expect("aggregator threads");
        assert_eq!(report.frames_rejected, 1, "typed rejection is counted");
        assert_eq!(report.frames_received, 1);
        assert_eq!(report.children_seen, vec![1], "rogue never contributes");
        assert_eq!(report.partial_intervals, 1, "good child still forwards");
        let rejected = registry
            .snapshot()
            .get("hifind_collect_frames_rejected_total")
            .and_then(|m| match m {
                hifind_telemetry::registry::MetricValue::Counter { value } => Some(*value),
                _ => None,
            });
        assert_eq!(rejected, Some(1), "rejection reaches telemetry");
        let root_report = root.wait().expect("collector threads");
        assert_eq!(root_report.frames_received, 1, "partial sum still arrives");
    }
}
