//! Networked sketch collection (paper §3.1, §5.3.2, operationalised).
//!
//! HiFIND's aggregation story rests on sketch linearity: each edge router
//! records traffic into a [`hifind::SketchRecorder`] and ships only its
//! per-interval [`hifind::IntervalSnapshot`] — counters, no packets — to a
//! central site, where the sum of snapshots is detected on exactly as if
//! one router had seen all traffic. The core crates prove that property
//! in-process; this crate makes it *networked*:
//!
//! * [`codec`] — a compact binary encoding of [`hifind::IntervalSnapshot`]
//!   (zig-zag varint counters; mostly-zero sketch grids shrink by an order
//!   of magnitude versus their in-memory size).
//! * [`wire`] — versioned, length-prefixed, CRC-checked framing with the
//!   record-plane configuration fingerprint in every header, so a
//!   mis-seeded router is rejected before its counters can poison the sum.
//! * [`collector`] — the root collection daemon: an event-driven
//!   connection engine (one poll thread for all sockets, no thread per
//!   connection) accepts N downstream nodes, aligns their frames per
//!   interval inside a bounded reorder window, and feeds the combined
//!   snapshot to the standard detection pipeline. After a straggler
//!   deadline it degrades gracefully: detection proceeds on the routers
//!   that reported, stragglers are counted, and a dead router can never
//!   stall the pipeline.
//! * [`aggregator`] — the mid-tier role for tree-structured collection:
//!   the same engine and alignment machinery, but instead of detecting it
//!   COMBINEs its children's snapshots and re-emits one summed frame
//!   upstream through the shared shipping path, scaling fan-in
//!   multiplicatively while staying bit-identical to a flat deployment
//!   (sketch linearity).
//! * [`ship`] — the bounded-backlog retry/backoff upstream shipping path
//!   shared by router agents and aggregators.
//! * [`agent`] — the router side: wraps a recorder, encodes each
//!   interval's snapshot, and ships it with bounded retry, exponential
//!   backoff, reconnection, and a bounded backlog that survives collector
//!   restarts (oldest intervals are dropped first when it overflows).
//! * [`checkpoint`] — versioned, CRC-checked durability for detection and
//!   agent state: a restarted collection site resumes from its latest
//!   checkpoint and produces the same final alerts as an uninterrupted
//!   run.
//! * [`faults`] — a seeded, deterministic fault-injection proxy (drop,
//!   duplicate, reorder, delay, truncate, bit-flip, connection kill)
//!   that sits between agents and the collector in tests, exercising the
//!   quorum/gap degradation policies above.
//!
//! The `hifind` CLI binary (also hosted by this crate) exposes the two
//! roles as `hifind collect` and `hifind agent`.

// `deny`, not `forbid`: the poll(2) FFI module in `engine` carries a
// scoped `#[allow(unsafe_code)]` — the one sanctioned hole, mirrored by
// the `[[unsafe-file]]` perimeter in lint.toml.
#![deny(unsafe_code)]

pub mod agent;
pub mod aggregator;
pub(crate) mod align;
pub mod checkpoint;
pub mod codec;
pub mod codec_v2;
pub mod collector;
pub(crate) mod engine;
pub mod faults;
pub mod observer;
pub mod ship;
pub mod wire;

pub use agent::{AgentConfig, AgentError, AgentStats, RouterAgent, ShipReport};
pub use aggregator::{Aggregator, AggregatorConfig, AggregatorHandle, AggregatorReport};
pub use checkpoint::{AgentCheckpoint, CheckpointError};
pub use codec::CodecError;
pub use collector::{
    CheckpointPolicy, CollectionReport, Collector, CollectorConfig, CollectorHandle,
};
pub use faults::{FaultPlan, FaultProxy, FaultStats};
pub use observer::CollectObserver;
pub use ship::{BacklogFrame, ShipConfig, Shipper};
pub use wire::{FrameHeader, WireError, HEADER_LEN, PROTOCOL_VERSION};

/// Any failure in the collection subsystem.
#[derive(Debug)]
pub enum CollectError {
    /// Socket-level failure (bind, connect, read, write).
    Io(std::io::Error),
    /// Frame-level failure (framing, CRC, version, fingerprint, codec).
    Wire(WireError),
    /// Sketch-level failure (configuration, combining).
    Sketch(hifind_sketch::SketchError),
    /// Metric registration clash.
    Telemetry(hifind_telemetry::TelemetryError),
    /// A checkpoint could not be read at resume time (writing failures
    /// during a run are counted, not fatal).
    Checkpoint(CheckpointError),
    /// A collector worker thread died; the named thread's report is lost.
    WorkerPanic(&'static str),
}

impl std::fmt::Display for CollectError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CollectError::Io(e) => write!(f, "i/o error: {e}"),
            CollectError::Wire(e) => write!(f, "wire error: {e}"),
            CollectError::Sketch(e) => write!(f, "sketch error: {e}"),
            CollectError::Telemetry(e) => write!(f, "telemetry error: {e}"),
            CollectError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            CollectError::WorkerPanic(thread) => write!(f, "collector {thread} thread panicked"),
        }
    }
}

impl std::error::Error for CollectError {}

impl From<std::io::Error> for CollectError {
    fn from(e: std::io::Error) -> Self {
        CollectError::Io(e)
    }
}

impl From<WireError> for CollectError {
    fn from(e: WireError) -> Self {
        CollectError::Wire(e)
    }
}

impl From<hifind_sketch::SketchError> for CollectError {
    fn from(e: hifind_sketch::SketchError) -> Self {
        CollectError::Sketch(e)
    }
}

impl From<hifind_telemetry::TelemetryError> for CollectError {
    fn from(e: hifind_telemetry::TelemetryError) -> Self {
        CollectError::Telemetry(e)
    }
}

impl From<CheckpointError> for CollectError {
    fn from(e: CheckpointError) -> Self {
        CollectError::Checkpoint(e)
    }
}
