//! Versioned, length-prefixed, CRC-checked snapshot framing.
//!
//! Every frame a router ships is:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "HFS1"
//!      4     2  protocol version (little-endian, currently 1)
//!      6     2  reserved (zero)
//!      8     4  router id
//!     12     8  interval index
//!     20     8  record-plane configuration fingerprint
//!     28     4  payload length in bytes
//!     32     4  CRC32 (IEEE) over the payload
//!     36     …  payload: the [`crate::codec`] snapshot encoding
//! ```
//!
//! The fingerprint ([`hifind::HiFindConfig::fingerprint`]) rides in the
//! header so a collector can reject a mis-configured router from the
//! first 36 bytes, without decoding (or even receiving) megabytes of
//! counters recorded under the wrong hash functions.

use crate::codec::{self, CodecError};
use hifind::IntervalSnapshot;
use std::io::Read;

/// Frame magic: HiFIND Snapshot, format 1.
pub const MAGIC: [u8; 4] = *b"HFS1";

/// Current protocol version.
pub const PROTOCOL_VERSION: u16 = 1;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 36;

/// Default cap on a single frame's payload (64 MiB — a paper-config
/// snapshot encodes to a small fraction of this).
pub const DEFAULT_MAX_PAYLOAD: u32 = 64 << 20;

/// A parsed frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version (always [`PROTOCOL_VERSION`] after parsing).
    pub version: u16,
    /// Sender's router id.
    pub router_id: u32,
    /// Interval index the payload snapshot covers.
    pub interval: u64,
    /// Record-plane configuration fingerprint of the sender.
    pub fingerprint: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// CRC32 (IEEE) of the payload.
    pub crc32: u32,
}

impl FrameHeader {
    /// The declared payload length as an index type.
    ///
    /// # Errors
    ///
    /// [`WireError::PayloadTooLarge`] on targets whose `usize` cannot
    /// hold the 32-bit length (checked, never truncated).
    pub fn payload_len_usize(&self) -> Result<usize, WireError> {
        usize::try_from(self.payload_len).map_err(|_| WireError::PayloadTooLarge {
            len: self.payload_len,
            max: u32::MAX,
        })
    }
}

/// A malformed or unacceptable frame.
#[derive(Debug)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// A protocol version this build does not speak.
    UnsupportedVersion(u16),
    /// The header declares a payload beyond the configured cap.
    PayloadTooLarge { len: u32, max: u32 },
    /// A snapshot too large to frame at all (payload length must fit the
    /// header's 32-bit length field).
    OversizedSnapshot { len: usize },
    /// The stream ended mid-frame.
    TruncatedFrame { expected: usize, got: usize },
    /// Payload bytes do not match the header CRC.
    CrcMismatch { expected: u32, got: u32 },
    /// The header fingerprint disagrees with the payload's own.
    FingerprintMismatch { header: u64, payload: u64 },
    /// The payload failed to decode.
    Codec(CodecError),
    /// Transport failure.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (speak {PROTOCOL_VERSION})"
                )
            }
            WireError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds cap of {max}")
            }
            WireError::OversizedSnapshot { len } => {
                write!(
                    f,
                    "snapshot encodes to {len} bytes, beyond the u32 length field"
                )
            }
            WireError::TruncatedFrame { expected, got } => {
                write!(f, "stream ended mid-frame ({got}/{expected} bytes)")
            }
            WireError::CrcMismatch { expected, got } => {
                write!(f, "payload CRC {got:#010x} != header CRC {expected:#010x}")
            }
            WireError::FingerprintMismatch { header, payload } => write!(
                f,
                "header fingerprint {header:#018x} != payload fingerprint {payload:#018x}"
            ),
            WireError::Codec(e) => write!(f, "payload codec: {e}"),
            WireError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // lint: allow(truncating-cast, const-eval table build — `try_from` is not const; i < 256 fits u32 exactly)
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        // The index is the low byte of the XOR — a value-preserving
        // extraction, not a truncating cast.
        crc = (crc >> 8) ^ CRC_TABLE[usize::from((crc ^ u32::from(b)).to_le_bytes()[0])];
    }
    !crc
}

/// Encodes `snapshot` as one complete frame (header + payload) from
/// `router_id` for `interval`.
///
/// # Errors
///
/// [`WireError::OversizedSnapshot`] when the encoded payload cannot be
/// described by the header's 32-bit length field (never the case for any
/// constructible sketch configuration, but enforced rather than assumed).
pub fn encode_frame(
    router_id: u32,
    interval: u64,
    snapshot: &IntervalSnapshot,
) -> Result<Vec<u8>, WireError> {
    let payload = codec::encode_snapshot(snapshot);
    let payload_len = u32::try_from(payload.len())
        .map_err(|_| WireError::OversizedSnapshot { len: payload.len() })?;
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&0u16.to_le_bytes());
    frame.extend_from_slice(&router_id.to_le_bytes());
    frame.extend_from_slice(&interval.to_le_bytes());
    frame.extend_from_slice(&snapshot.fingerprint.to_le_bytes());
    frame.extend_from_slice(&payload_len.to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Little-endian field readers over the fixed-size header. Building the
/// arrays element-wise keeps every read panic-free by construction (the
/// offsets are compile-visible constants within `HEADER_LEN`).
fn le_u16(b: &[u8; HEADER_LEN], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn le_u32(b: &[u8; HEADER_LEN], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn le_u64(b: &[u8; HEADER_LEN], at: usize) -> u64 {
    u64::from_le_bytes([
        b[at],
        b[at + 1],
        b[at + 2],
        b[at + 3],
        b[at + 4],
        b[at + 5],
        b[at + 6],
        b[at + 7],
    ])
}

/// Parses and validates a frame header.
///
/// # Errors
///
/// Rejects wrong magic, unknown versions, and payloads beyond
/// `max_payload`.
pub fn parse_header(bytes: &[u8; HEADER_LEN], max_payload: u32) -> Result<FrameHeader, WireError> {
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = le_u16(bytes, 4);
    if version != PROTOCOL_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let payload_len = le_u32(bytes, 28);
    if payload_len > max_payload {
        return Err(WireError::PayloadTooLarge {
            len: payload_len,
            max: max_payload,
        });
    }
    Ok(FrameHeader {
        version,
        router_id: le_u32(bytes, 8),
        interval: le_u64(bytes, 12),
        fingerprint: le_u64(bytes, 20),
        payload_len,
        crc32: le_u32(bytes, 32),
    })
}

/// Validates `payload` against `header` (CRC, then codec, then the
/// header/payload fingerprint cross-check) and decodes the snapshot.
///
/// # Errors
///
/// Every corruption mode maps to a distinct [`WireError`] variant; no
/// input panics.
pub fn decode_payload(header: &FrameHeader, payload: &[u8]) -> Result<IntervalSnapshot, WireError> {
    let expected = header.payload_len_usize()?;
    if payload.len() != expected {
        return Err(WireError::TruncatedFrame {
            expected,
            got: payload.len(),
        });
    }
    let got = crc32(payload);
    if got != header.crc32 {
        return Err(WireError::CrcMismatch {
            expected: header.crc32,
            got,
        });
    }
    let snapshot = codec::decode_snapshot(payload)?;
    if snapshot.fingerprint != header.fingerprint {
        return Err(WireError::FingerprintMismatch {
            header: header.fingerprint,
            payload: snapshot.fingerprint,
        });
    }
    Ok(snapshot)
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on clean end-of-stream (the peer closed between
/// frames); a close mid-frame is [`WireError::TruncatedFrame`].
///
/// # Errors
///
/// Propagates transport errors and every validation error of
/// [`parse_header`] / [`decode_payload`].
pub fn read_frame(
    r: &mut impl Read,
    max_payload: u32,
) -> Result<Option<(FrameHeader, IntervalSnapshot)>, WireError> {
    let mut header_bytes = [0u8; HEADER_LEN];
    match read_full(r, &mut header_bytes)? {
        0 => return Ok(None),
        n if n < HEADER_LEN => {
            return Err(WireError::TruncatedFrame {
                expected: HEADER_LEN,
                got: n,
            })
        }
        _ => {}
    }
    let header = parse_header(&header_bytes, max_payload)?;
    let payload = read_payload(r, header.payload_len_usize()?)?;
    let snapshot = decode_payload(&header, &payload)?;
    Ok(Some((header, snapshot)))
}

/// Granularity of payload buffer growth while reading.
const PAYLOAD_CHUNK: usize = 64 * 1024;

/// Reads exactly `len` payload bytes, growing the buffer chunk by chunk.
///
/// The length comes from an attacker-controlled header field that is
/// validated against the payload cap but **not yet against the CRC** —
/// so memory is committed only as bytes actually arrive: a peer that
/// declares a huge payload and then stalls or disconnects costs one
/// [`PAYLOAD_CHUNK`], not the declared size.
fn read_payload(r: &mut impl Read, len: usize) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::with_capacity(len.min(PAYLOAD_CHUNK));
    while payload.len() < len {
        let start = payload.len();
        let want = (len - start).min(PAYLOAD_CHUNK);
        payload.resize(start + want, 0);
        let got = read_full(r, &mut payload[start..])?;
        payload.truncate(start + got);
        if got < want {
            return Err(WireError::TruncatedFrame {
                expected: len,
                got: payload.len(),
            });
        }
    }
    Ok(payload)
}

/// Fills `buf` as far as the stream allows; returns the bytes read
/// (shorter than `buf` only at end-of-stream).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind::{HiFindConfig, SketchRecorder};
    use hifind_flow::Packet;

    fn snapshot(seed: u64) -> IntervalSnapshot {
        let cfg = HiFindConfig::small(seed);
        let mut r = SketchRecorder::new(&cfg).unwrap();
        for i in 0..100u32 {
            r.record(&Packet::syn(
                u64::from(i),
                [10, 0, 0, i as u8].into(),
                2000,
                [129, 105, 0, 1].into(),
                80,
            ));
        }
        r.take_snapshot()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips_through_a_reader() {
        let snap = snapshot(3);
        let frame = encode_frame(7, 42, &snap).unwrap();
        let mut cursor = &frame[..];
        let (header, back) = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(header.router_id, 7);
        assert_eq!(header.interval, 42);
        assert_eq!(header.fingerprint, snap.fingerprint);
        assert_eq!(back, snap);
        // And the stream is exactly consumed: next read is a clean EOF.
        assert!(read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .is_none());
    }

    #[test]
    fn corrupt_payload_is_a_crc_error() {
        let mut frame = encode_frame(1, 0, &snapshot(4)).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let err = read_frame(&mut &frame[..], DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(matches!(err, WireError::CrcMismatch { .. }), "{err}");
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let snap = snapshot(5);
        let mut frame = encode_frame(1, 0, &snap).unwrap();
        frame[0] = b'X';
        assert!(matches!(
            read_frame(&mut &frame[..], DEFAULT_MAX_PAYLOAD).unwrap_err(),
            WireError::BadMagic(_)
        ));
        let mut frame = encode_frame(1, 0, &snap).unwrap();
        frame[4] = 99;
        assert!(matches!(
            read_frame(&mut &frame[..], DEFAULT_MAX_PAYLOAD).unwrap_err(),
            WireError::UnsupportedVersion(99)
        ));
    }

    #[test]
    fn truncated_frame_is_not_a_clean_eof() {
        let frame = encode_frame(1, 0, &snapshot(6)).unwrap();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 10] {
            let err = read_frame(&mut &frame[..cut], DEFAULT_MAX_PAYLOAD).unwrap_err();
            assert!(matches!(err, WireError::TruncatedFrame { .. }), "cut {cut}");
        }
    }

    #[test]
    fn oversized_payload_rejected_from_header_alone() {
        let frame = encode_frame(1, 0, &snapshot(8)).unwrap();
        let err = read_frame(&mut &frame[..], 16).unwrap_err();
        assert!(matches!(
            err,
            WireError::PayloadTooLarge { len: _, max: 16 }
        ));
    }

    #[test]
    fn header_payload_fingerprint_cross_check() {
        // Tamper with the header fingerprint and fix up nothing else: the
        // CRC still passes (it covers only the payload), so the
        // cross-check is what catches it.
        let mut frame = encode_frame(1, 0, &snapshot(9)).unwrap();
        frame[20] ^= 0xFF;
        let err = read_frame(&mut &frame[..], DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(
            matches!(err, WireError::FingerprintMismatch { .. }),
            "{err}"
        );
    }
}
