//! Versioned, length-prefixed, CRC-checked snapshot framing.
//!
//! Every frame a router ships is:
//!
//! ```text
//! offset  size  field
//!      0     4  magic "HFS1"
//!      4     2  protocol version (little-endian, 1 or 2)
//!      6     1  version 1: reserved, must be zero · version 2: codec id
//!      7     1  reserved, must be zero
//!      8     4  router id
//!     12     8  interval index
//!     20     8  record-plane configuration fingerprint
//!     28     4  payload length in bytes
//!     32     4  CRC32 (IEEE) over the payload
//!     36     …  payload: [`crate::codec`] (v1) or [`crate::codec_v2`]
//! ```
//!
//! The fingerprint ([`hifind::HiFindConfig::fingerprint`]) rides in the
//! header so a collector can reject a mis-configured router from the
//! first 36 bytes, without decoding (or even receiving) megabytes of
//! counters recorded under the wrong hash functions.
//!
//! Version 2 sessions additionally exchange three fixed control
//! messages: the agent's `HFSH` hello advertising its codecs, the
//! collector's `HFSA` accept naming the chosen one, and per-interval
//! `HFKA` acks that gate the sender's delta chain (see
//! [`crate::codec_v2`]). A v1 peer never sends or expects any of them.

use crate::codec::{self, CodecError};
use crate::codec_v2::{self, ChainStore};
use hifind::IntervalSnapshot;
use std::io::Read;

/// Frame magic: HiFIND Snapshot, format 1.
pub const MAGIC: [u8; 4] = *b"HFS1";

/// Current protocol version.
pub const PROTOCOL_VERSION: u16 = 1;

/// Protocol version carrying codec-v2 payloads.
pub const PROTOCOL_VERSION_2: u16 = 2;

/// Codec id of the dense v1 snapshot encoding ([`crate::codec`]).
pub const CODEC_V1: u8 = 1;

/// Codec id of the sparse/delta v2 encoding ([`crate::codec_v2`]).
pub const CODEC_V2: u8 = 2;

/// Hello magic: HiFIND Snapshot Hello (agent → collector, once per
/// connection, before any frame).
pub const HELLO_MAGIC: [u8; 4] = *b"HFSH";

/// Accept magic: HiFIND Snapshot Accept (collector → agent, the reply to
/// a hello).
pub const ACCEPT_MAGIC: [u8; 4] = *b"HFSA";

/// Ack magic: HiFIND frame acKnowledgement (collector → agent, one per
/// decoded interval on v2 sessions).
pub const ACK_MAGIC: [u8; 4] = *b"HFKA";

/// Size of an encoded accept message.
pub const ACCEPT_LEN: usize = 8;

/// Size of an encoded ack message.
pub const ACK_LEN: usize = 12;

/// Hello framing overhead (magic + version + count + trailing CRC);
/// the full message is this plus one byte per advertised codec.
pub const HELLO_BASE_LEN: usize = 12;

/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 36;

/// Default cap on a single frame's payload (64 MiB — a paper-config
/// snapshot encodes to a small fraction of this).
pub const DEFAULT_MAX_PAYLOAD: u32 = 64 << 20;

/// A parsed frame header.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameHeader {
    /// Protocol version ([`PROTOCOL_VERSION`] or [`PROTOCOL_VERSION_2`]).
    pub version: u16,
    /// Payload codec id: [`CODEC_V1`] for version-1 headers, the header's
    /// codec byte (validated) for version 2.
    pub codec: u8,
    /// Sender's router id.
    pub router_id: u32,
    /// Interval index the payload snapshot covers.
    pub interval: u64,
    /// Record-plane configuration fingerprint of the sender.
    pub fingerprint: u64,
    /// Payload length in bytes.
    pub payload_len: u32,
    /// CRC32 (IEEE) of the payload.
    pub crc32: u32,
}

impl FrameHeader {
    /// The declared payload length as an index type.
    ///
    /// # Errors
    ///
    /// [`WireError::PayloadTooLarge`] on targets whose `usize` cannot
    /// hold the 32-bit length (checked, never truncated).
    pub fn payload_len_usize(&self) -> Result<usize, WireError> {
        usize::try_from(self.payload_len).map_err(|_| WireError::PayloadTooLarge {
            len: self.payload_len,
            max: u32::MAX,
        })
    }
}

/// A malformed or unacceptable frame.
#[derive(Debug)]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// A protocol version this build does not speak.
    UnsupportedVersion(u16),
    /// A version-1 header whose reserved bytes were not zero. Rejected so
    /// the field can carry meaning (the codec id) in later versions
    /// without old garbage round-tripping as a valid frame.
    ReservedBytes(u16),
    /// A version-2 header naming a codec this build does not implement.
    UnknownCodec(u8),
    /// A malformed hello/accept/ack control message.
    BadControl { at: &'static str },
    /// The header declares a payload beyond the configured cap.
    PayloadTooLarge { len: u32, max: u32 },
    /// A snapshot too large to frame at all (payload length must fit the
    /// header's 32-bit length field).
    OversizedSnapshot { len: usize },
    /// The stream ended mid-frame.
    TruncatedFrame { expected: usize, got: usize },
    /// Payload bytes do not match the header CRC.
    CrcMismatch { expected: u32, got: u32 },
    /// The header fingerprint disagrees with the payload's own.
    FingerprintMismatch { header: u64, payload: u64 },
    /// The payload failed to decode.
    Codec(CodecError),
    /// Transport failure.
    Io(std::io::Error),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported protocol version {v} (speak {PROTOCOL_VERSION})"
                )
            }
            WireError::ReservedBytes(v) => {
                write!(
                    f,
                    "version-1 reserved header bytes must be zero, got {v:#06x}"
                )
            }
            WireError::UnknownCodec(c) => write!(f, "unknown codec id {c}"),
            WireError::BadControl { at } => write!(f, "malformed control message: {at}"),
            WireError::PayloadTooLarge { len, max } => {
                write!(f, "payload of {len} bytes exceeds cap of {max}")
            }
            WireError::OversizedSnapshot { len } => {
                write!(
                    f,
                    "snapshot encodes to {len} bytes, beyond the u32 length field"
                )
            }
            WireError::TruncatedFrame { expected, got } => {
                write!(f, "stream ended mid-frame ({got}/{expected} bytes)")
            }
            WireError::CrcMismatch { expected, got } => {
                write!(f, "payload CRC {got:#010x} != header CRC {expected:#010x}")
            }
            WireError::FingerprintMismatch { header, payload } => write!(
                f,
                "header fingerprint {header:#018x} != payload fingerprint {payload:#018x}"
            ),
            WireError::Codec(e) => write!(f, "payload codec: {e}"),
            WireError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// CRC32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        // lint: allow(truncating-cast, const-eval table build — `try_from` is not const; i < 256 fits u32 exactly)
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        // The index is the low byte of the XOR — a value-preserving
        // extraction, not a truncating cast.
        crc = (crc >> 8) ^ CRC_TABLE[usize::from((crc ^ u32::from(b)).to_le_bytes()[0])];
    }
    !crc
}

/// Encodes `snapshot` as one complete frame (header + payload) from
/// `router_id` for `interval`.
///
/// # Errors
///
/// [`WireError::OversizedSnapshot`] when the encoded payload cannot be
/// described by the header's 32-bit length field (never the case for any
/// constructible sketch configuration, but enforced rather than assumed).
pub fn encode_frame(
    router_id: u32,
    interval: u64,
    snapshot: &IntervalSnapshot,
) -> Result<Vec<u8>, WireError> {
    let payload = codec::encode_snapshot(snapshot);
    let payload_len = u32::try_from(payload.len())
        .map_err(|_| WireError::OversizedSnapshot { len: payload.len() })?;
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION.to_le_bytes());
    frame.extend_from_slice(&0u16.to_le_bytes());
    frame.extend_from_slice(&router_id.to_le_bytes());
    frame.extend_from_slice(&interval.to_le_bytes());
    frame.extend_from_slice(&snapshot.fingerprint.to_le_bytes());
    frame.extend_from_slice(&payload_len.to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    Ok(frame)
}

/// Encodes an already-serialized [`crate::codec_v2`] payload as one
/// complete version-2 frame. The payload's keyframe/delta nature lives
/// in its own flag byte; the header only names the codec.
///
/// # Errors
///
/// [`WireError::OversizedSnapshot`] when the payload cannot be described
/// by the header's 32-bit length field.
pub fn encode_frame_v2(
    router_id: u32,
    interval: u64,
    fingerprint: u64,
    payload: &[u8],
) -> Result<Vec<u8>, WireError> {
    let payload_len = u32::try_from(payload.len())
        .map_err(|_| WireError::OversizedSnapshot { len: payload.len() })?;
    let mut frame = Vec::with_capacity(HEADER_LEN + payload.len());
    frame.extend_from_slice(&MAGIC);
    frame.extend_from_slice(&PROTOCOL_VERSION_2.to_le_bytes());
    frame.push(CODEC_V2);
    frame.push(0u8);
    frame.extend_from_slice(&router_id.to_le_bytes());
    frame.extend_from_slice(&interval.to_le_bytes());
    frame.extend_from_slice(&fingerprint.to_le_bytes());
    frame.extend_from_slice(&payload_len.to_le_bytes());
    frame.extend_from_slice(&crc32(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    Ok(frame)
}

/// Encodes the agent hello advertising `codecs` (in preference order).
///
/// Layout: `"HFSH"` · version `u16` (1) · count `u16` · count × codec
/// byte · CRC32 over everything before it.
pub fn encode_hello(codecs: &[u8]) -> Vec<u8> {
    let count = u16::try_from(codecs.len()).unwrap_or(u16::MAX);
    let codecs = &codecs[..usize::from(count)];
    let mut msg = Vec::with_capacity(HELLO_BASE_LEN + codecs.len());
    msg.extend_from_slice(&HELLO_MAGIC);
    msg.extend_from_slice(&1u16.to_le_bytes());
    msg.extend_from_slice(&count.to_le_bytes());
    msg.extend_from_slice(codecs);
    let crc = crc32(&msg);
    msg.extend_from_slice(&crc.to_le_bytes());
    msg
}

/// Parses a complete hello message into its advertised codec list.
///
/// # Errors
///
/// [`WireError::BadControl`] for wrong magic/version/length and
/// [`WireError::CrcMismatch`] for a corrupted body.
pub fn parse_hello(msg: &[u8]) -> Result<Vec<u8>, WireError> {
    if msg.len() < HELLO_BASE_LEN || msg[..4] != HELLO_MAGIC {
        return Err(WireError::BadControl { at: "hello header" });
    }
    if u16::from_le_bytes([msg[4], msg[5]]) != 1 {
        return Err(WireError::BadControl {
            at: "hello version",
        });
    }
    let count = usize::from(u16::from_le_bytes([msg[6], msg[7]]));
    if msg.len() != HELLO_BASE_LEN + count {
        return Err(WireError::BadControl { at: "hello length" });
    }
    let body = &msg[..HELLO_BASE_LEN + count - 4];
    let expected = u32::from_le_bytes([
        msg[msg.len() - 4],
        msg[msg.len() - 3],
        msg[msg.len() - 2],
        msg[msg.len() - 1],
    ]);
    let got = crc32(body);
    if got != expected {
        return Err(WireError::CrcMismatch { expected, got });
    }
    Ok(msg[8..8 + count].to_vec())
}

/// Encodes the collector's accept naming the chosen codec.
pub fn encode_accept(codec: u8) -> [u8; ACCEPT_LEN] {
    let mut msg = [0u8; ACCEPT_LEN];
    msg[..4].copy_from_slice(&ACCEPT_MAGIC);
    msg[4] = codec;
    msg
}

/// Parses an accept message into the chosen codec id.
///
/// # Errors
///
/// [`WireError::BadControl`] for wrong magic or non-zero padding.
pub fn parse_accept(msg: &[u8; ACCEPT_LEN]) -> Result<u8, WireError> {
    if msg[..4] != ACCEPT_MAGIC {
        return Err(WireError::BadControl { at: "accept magic" });
    }
    if msg[5..] != [0, 0, 0] {
        return Err(WireError::BadControl {
            at: "accept padding",
        });
    }
    Ok(msg[4])
}

/// Encodes the collector's per-interval ack.
pub fn encode_ack(interval: u64) -> [u8; ACK_LEN] {
    let mut msg = [0u8; ACK_LEN];
    msg[..4].copy_from_slice(&ACK_MAGIC);
    msg[4..].copy_from_slice(&interval.to_le_bytes());
    msg
}

/// Parses an ack message into the acknowledged interval.
///
/// # Errors
///
/// [`WireError::BadControl`] for wrong magic.
pub fn parse_ack(msg: &[u8; ACK_LEN]) -> Result<u64, WireError> {
    if msg[..4] != ACK_MAGIC {
        return Err(WireError::BadControl { at: "ack magic" });
    }
    Ok(u64::from_le_bytes([
        msg[4], msg[5], msg[6], msg[7], msg[8], msg[9], msg[10], msg[11],
    ]))
}

/// Little-endian field readers over the fixed-size header. Building the
/// arrays element-wise keeps every read panic-free by construction (the
/// offsets are compile-visible constants within `HEADER_LEN`).
fn le_u16(b: &[u8; HEADER_LEN], at: usize) -> u16 {
    u16::from_le_bytes([b[at], b[at + 1]])
}

fn le_u32(b: &[u8; HEADER_LEN], at: usize) -> u32 {
    u32::from_le_bytes([b[at], b[at + 1], b[at + 2], b[at + 3]])
}

fn le_u64(b: &[u8; HEADER_LEN], at: usize) -> u64 {
    u64::from_le_bytes([
        b[at],
        b[at + 1],
        b[at + 2],
        b[at + 3],
        b[at + 4],
        b[at + 5],
        b[at + 6],
        b[at + 7],
    ])
}

/// Parses and validates a frame header.
///
/// # Errors
///
/// Rejects wrong magic, unknown versions, and payloads beyond
/// `max_payload`.
pub fn parse_header(bytes: &[u8; HEADER_LEN], max_payload: u32) -> Result<FrameHeader, WireError> {
    let magic = [bytes[0], bytes[1], bytes[2], bytes[3]];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = le_u16(bytes, 4);
    let codec = match version {
        PROTOCOL_VERSION => {
            // The reserved bytes were always written as zero; anything
            // else is either corruption or a future format this build
            // cannot interpret — reject rather than silently accept.
            let reserved = le_u16(bytes, 6);
            if reserved != 0 {
                return Err(WireError::ReservedBytes(reserved));
            }
            CODEC_V1
        }
        PROTOCOL_VERSION_2 => {
            if bytes[7] != 0 {
                return Err(WireError::ReservedBytes(le_u16(bytes, 6)));
            }
            match bytes[6] {
                CODEC_V2 => CODEC_V2,
                other => return Err(WireError::UnknownCodec(other)),
            }
        }
        other => return Err(WireError::UnsupportedVersion(other)),
    };
    let payload_len = le_u32(bytes, 28);
    if payload_len > max_payload {
        return Err(WireError::PayloadTooLarge {
            len: payload_len,
            max: max_payload,
        });
    }
    Ok(FrameHeader {
        version,
        codec,
        router_id: le_u32(bytes, 8),
        interval: le_u64(bytes, 12),
        fingerprint: le_u64(bytes, 20),
        payload_len,
        crc32: le_u32(bytes, 32),
    })
}

/// Validates `payload` against `header` (CRC, then codec, then the
/// header/payload fingerprint cross-check) and decodes the snapshot.
///
/// # Errors
///
/// Every corruption mode maps to a distinct [`WireError`] variant; no
/// input panics.
pub fn decode_payload(header: &FrameHeader, payload: &[u8]) -> Result<IntervalSnapshot, WireError> {
    let expected = header.payload_len_usize()?;
    if payload.len() != expected {
        return Err(WireError::TruncatedFrame {
            expected,
            got: payload.len(),
        });
    }
    let got = crc32(payload);
    if got != header.crc32 {
        return Err(WireError::CrcMismatch {
            expected: header.crc32,
            got,
        });
    }
    let snapshot = codec::decode_snapshot(payload)?;
    if snapshot.fingerprint != header.fingerprint {
        return Err(WireError::FingerprintMismatch {
            header: header.fingerprint,
            payload: snapshot.fingerprint,
        });
    }
    Ok(snapshot)
}

/// Length and CRC checks shared by both payload decoders.
fn check_payload(header: &FrameHeader, payload: &[u8]) -> Result<(), WireError> {
    let expected = header.payload_len_usize()?;
    if payload.len() != expected {
        return Err(WireError::TruncatedFrame {
            expected,
            got: payload.len(),
        });
    }
    let got = crc32(payload);
    if got != header.crc32 {
        return Err(WireError::CrcMismatch {
            expected: header.crc32,
            got,
        });
    }
    Ok(())
}

/// Validates and decodes a version-2 payload through the receiver's
/// delta chain state. Returns the snapshot and whether the wire form was
/// a delta.
///
/// # Errors
///
/// Every corruption mode maps to a typed error: CRC/length violations to
/// their [`WireError`] variants, structural ones to
/// [`WireError::Codec`] — including a
/// [`CodecError::DeltaBaselineMissing`] chain break.
pub fn decode_payload_v2(
    header: &FrameHeader,
    payload: &[u8],
    chains: &mut ChainStore,
) -> Result<(IntervalSnapshot, bool), WireError> {
    check_payload(header, payload)?;
    let decoded = chains.decode(header.router_id, header.interval, payload)?;
    if decoded.snapshot.fingerprint != header.fingerprint {
        return Err(WireError::FingerprintMismatch {
            header: header.fingerprint,
            payload: decoded.snapshot.fingerprint,
        });
    }
    Ok((decoded.snapshot, decoded.was_delta))
}

/// Re-encodes a complete v2 **keyframe** frame as a v1 frame with the
/// same header identity — how a backlog entry captured under a v2
/// session is shipped after renegotiating down to v1.
///
/// # Errors
///
/// Propagates header/payload validation errors; a delta frame (which
/// callers never hold — backlogs retain standalone forms only) fails
/// with a typed [`CodecError::DeltaShapeMismatch`].
pub fn transcode_frame_v2_to_v1(frame: &[u8]) -> Result<Vec<u8>, WireError> {
    if frame.len() < HEADER_LEN {
        return Err(WireError::TruncatedFrame {
            expected: HEADER_LEN,
            got: frame.len(),
        });
    }
    let mut header_bytes = [0u8; HEADER_LEN];
    header_bytes.copy_from_slice(&frame[..HEADER_LEN]);
    let header = parse_header(&header_bytes, DEFAULT_MAX_PAYLOAD)?;
    if header.version != PROTOCOL_VERSION_2 {
        return Ok(frame.to_vec());
    }
    check_payload(&header, &frame[HEADER_LEN..])?;
    let snapshot = codec_v2::decode_keyframe(&frame[HEADER_LEN..])?;
    encode_frame(header.router_id, header.interval, &snapshot)
}

/// Reads one frame from a blocking stream.
///
/// Returns `Ok(None)` on clean end-of-stream (the peer closed between
/// frames); a close mid-frame is [`WireError::TruncatedFrame`].
///
/// # Errors
///
/// Propagates transport errors and every validation error of
/// [`parse_header`] / [`decode_payload`].
pub fn read_frame(
    r: &mut impl Read,
    max_payload: u32,
) -> Result<Option<(FrameHeader, IntervalSnapshot)>, WireError> {
    let mut header_bytes = [0u8; HEADER_LEN];
    match read_full(r, &mut header_bytes)? {
        0 => return Ok(None),
        n if n < HEADER_LEN => {
            return Err(WireError::TruncatedFrame {
                expected: HEADER_LEN,
                got: n,
            })
        }
        _ => {}
    }
    let header = parse_header(&header_bytes, max_payload)?;
    let payload = read_payload(r, header.payload_len_usize()?)?;
    let snapshot = decode_payload(&header, &payload)?;
    Ok(Some((header, snapshot)))
}

/// Granularity of payload buffer growth while reading.
const PAYLOAD_CHUNK: usize = 64 * 1024;

/// Reads exactly `len` payload bytes, growing the buffer chunk by chunk.
///
/// The length comes from an attacker-controlled header field that is
/// validated against the payload cap but **not yet against the CRC** —
/// so memory is committed only as bytes actually arrive: a peer that
/// declares a huge payload and then stalls or disconnects costs one
/// [`PAYLOAD_CHUNK`], not the declared size.
fn read_payload(r: &mut impl Read, len: usize) -> Result<Vec<u8>, WireError> {
    let mut payload = Vec::with_capacity(len.min(PAYLOAD_CHUNK));
    while payload.len() < len {
        let start = payload.len();
        let want = (len - start).min(PAYLOAD_CHUNK);
        payload.resize(start + want, 0);
        let got = read_full(r, &mut payload[start..])?;
        payload.truncate(start + got);
        if got < want {
            return Err(WireError::TruncatedFrame {
                expected: len,
                got: payload.len(),
            });
        }
    }
    Ok(payload)
}

/// Fills `buf` as far as the stream allows; returns the bytes read
/// (shorter than `buf` only at end-of-stream).
fn read_full(r: &mut impl Read, buf: &mut [u8]) -> Result<usize, WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind::{HiFindConfig, SketchRecorder};
    use hifind_flow::Packet;

    fn snapshot(seed: u64) -> IntervalSnapshot {
        let cfg = HiFindConfig::small(seed);
        let mut r = SketchRecorder::new(&cfg).unwrap();
        for i in 0..100u32 {
            r.record(&Packet::syn(
                u64::from(i),
                [10, 0, 0, i as u8].into(),
                2000,
                [129, 105, 0, 1].into(),
                80,
            ));
        }
        r.take_snapshot()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frame_round_trips_through_a_reader() {
        let snap = snapshot(3);
        let frame = encode_frame(7, 42, &snap).unwrap();
        let mut cursor = &frame[..];
        let (header, back) = read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(header.router_id, 7);
        assert_eq!(header.interval, 42);
        assert_eq!(header.fingerprint, snap.fingerprint);
        assert_eq!(back, snap);
        // And the stream is exactly consumed: next read is a clean EOF.
        assert!(read_frame(&mut cursor, DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .is_none());
    }

    #[test]
    fn corrupt_payload_is_a_crc_error() {
        let mut frame = encode_frame(1, 0, &snapshot(4)).unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0xFF;
        let err = read_frame(&mut &frame[..], DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(matches!(err, WireError::CrcMismatch { .. }), "{err}");
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let snap = snapshot(5);
        let mut frame = encode_frame(1, 0, &snap).unwrap();
        frame[0] = b'X';
        assert!(matches!(
            read_frame(&mut &frame[..], DEFAULT_MAX_PAYLOAD).unwrap_err(),
            WireError::BadMagic(_)
        ));
        let mut frame = encode_frame(1, 0, &snap).unwrap();
        frame[4] = 99;
        assert!(matches!(
            read_frame(&mut &frame[..], DEFAULT_MAX_PAYLOAD).unwrap_err(),
            WireError::UnsupportedVersion(99)
        ));
    }

    #[test]
    fn truncated_frame_is_not_a_clean_eof() {
        let frame = encode_frame(1, 0, &snapshot(6)).unwrap();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 10] {
            let err = read_frame(&mut &frame[..cut], DEFAULT_MAX_PAYLOAD).unwrap_err();
            assert!(matches!(err, WireError::TruncatedFrame { .. }), "cut {cut}");
        }
    }

    #[test]
    fn oversized_payload_rejected_from_header_alone() {
        let frame = encode_frame(1, 0, &snapshot(8)).unwrap();
        let err = read_frame(&mut &frame[..], 16).unwrap_err();
        assert!(matches!(
            err,
            WireError::PayloadTooLarge { len: _, max: 16 }
        ));
    }

    /// Regression: the reserved bytes used to be ignored on decode, so
    /// garbage there round-tripped silently — which would have made
    /// repurposing them as the codec id a wire break.
    #[test]
    fn nonzero_reserved_bytes_are_rejected_in_v1() {
        let mut frame = encode_frame(1, 0, &snapshot(11)).unwrap();
        frame[6] = 0xAB;
        let err = read_frame(&mut &frame[..], DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(matches!(err, WireError::ReservedBytes(0x00AB)), "{err}");
        let mut frame = encode_frame(1, 0, &snapshot(11)).unwrap();
        frame[7] = 1;
        assert!(matches!(
            read_frame(&mut &frame[..], DEFAULT_MAX_PAYLOAD).unwrap_err(),
            WireError::ReservedBytes(0x0100)
        ));
    }

    #[test]
    fn v2_frame_round_trips_through_a_chain_store() {
        let snap = snapshot(12);
        let payload = crate::codec_v2::encode_keyframe(&snap);
        let frame = encode_frame_v2(7, 3, snap.fingerprint, &payload).unwrap();
        let mut header_bytes = [0u8; HEADER_LEN];
        header_bytes.copy_from_slice(&frame[..HEADER_LEN]);
        let header = parse_header(&header_bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        assert_eq!(header.version, PROTOCOL_VERSION_2);
        assert_eq!(header.codec, CODEC_V2);
        assert_eq!(header.router_id, 7);
        let mut chains = ChainStore::new();
        let (back, was_delta) =
            decode_payload_v2(&header, &frame[HEADER_LEN..], &mut chains).unwrap();
        assert!(!was_delta);
        assert_eq!(back, snap);
    }

    #[test]
    fn v2_header_with_unknown_codec_or_padding_is_rejected() {
        let snap = snapshot(13);
        let payload = crate::codec_v2::encode_keyframe(&snap);
        let good = encode_frame_v2(1, 0, snap.fingerprint, &payload).unwrap();
        let mut header = [0u8; HEADER_LEN];
        header.copy_from_slice(&good[..HEADER_LEN]);
        let mut bad = header;
        bad[6] = 9;
        assert!(matches!(
            parse_header(&bad, DEFAULT_MAX_PAYLOAD).unwrap_err(),
            WireError::UnknownCodec(9)
        ));
        let mut bad = header;
        bad[7] = 1;
        assert!(matches!(
            parse_header(&bad, DEFAULT_MAX_PAYLOAD).unwrap_err(),
            WireError::ReservedBytes(_)
        ));
    }

    #[test]
    fn control_messages_round_trip_and_reject_corruption() {
        let hello = encode_hello(&[CODEC_V2, CODEC_V1]);
        assert_eq!(hello.len(), HELLO_BASE_LEN + 2);
        assert_eq!(parse_hello(&hello).unwrap(), vec![CODEC_V2, CODEC_V1]);
        let mut bad = hello.clone();
        bad[9] ^= 0x10;
        assert!(matches!(
            parse_hello(&bad).unwrap_err(),
            WireError::CrcMismatch { .. }
        ));
        assert!(parse_hello(&hello[..HELLO_BASE_LEN + 1]).is_err());
        assert!(parse_hello(b"HFSAxxxxxxxx").is_err());

        let accept = encode_accept(CODEC_V2);
        assert_eq!(parse_accept(&accept).unwrap(), CODEC_V2);
        let mut bad = accept;
        bad[6] = 1;
        assert!(parse_accept(&bad).is_err());

        let ack = encode_ack(0xDEAD_BEEF_0042);
        assert_eq!(parse_ack(&ack).unwrap(), 0xDEAD_BEEF_0042);
        let mut bad = ack;
        bad[0] = b'X';
        assert!(parse_ack(&bad).is_err());
    }

    #[test]
    fn transcoding_a_v2_keyframe_down_to_v1_preserves_the_snapshot() {
        let snap = snapshot(14);
        let payload = crate::codec_v2::encode_keyframe(&snap);
        let v2 = encode_frame_v2(5, 9, snap.fingerprint, &payload).unwrap();
        let v1 = transcode_frame_v2_to_v1(&v2).unwrap();
        let (header, back) = read_frame(&mut &v1[..], DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();
        assert_eq!(header.version, PROTOCOL_VERSION);
        assert_eq!((header.router_id, header.interval), (5, 9));
        assert_eq!(back, snap);
        // A frame already in v1 passes through unchanged.
        assert_eq!(transcode_frame_v2_to_v1(&v1).unwrap(), v1);
    }

    #[test]
    fn header_payload_fingerprint_cross_check() {
        // Tamper with the header fingerprint and fix up nothing else: the
        // CRC still passes (it covers only the payload), so the
        // cross-check is what catches it.
        let mut frame = encode_frame(1, 0, &snapshot(9)).unwrap();
        frame[20] ^= 0xFF;
        let err = read_frame(&mut &frame[..], DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert!(
            matches!(err, WireError::FingerprintMismatch { .. }),
            "{err}"
        );
    }
}
