//! Event hooks for the collection plane.
//!
//! A [`CollectObserver`] is a set of callbacks the collector and router
//! agents invoke at significant state transitions — interval close, gap
//! synthesis, checkpoint write/resume, frame rejection, agent reconnect.
//! Every method has a no-op default, so implementors subscribe only to
//! what they need. The `hifind-obsv` crate implements this trait to feed
//! its interval-history store and structured event log; the collect plane
//! itself stays free of any I/O or policy beyond the call.
//!
//! Callbacks run on collector/agent threads, inline with the transition
//! they describe, so implementations must be cheap and must never panic
//! (they sit inside the panic-free perimeter enforced by `cargo xtask
//! lint`). Anything expensive belongs behind a bounded queue owned by the
//! observer.

use crate::wire::WireError;
use hifind::{IntervalOutcome, IntervalSnapshot};
use std::path::Path;

/// Callbacks for collection-plane transitions. All methods default to
/// no-ops; implementations must be `Send + Sync` because the collector
/// invokes them from its aligner and acceptor threads.
pub trait CollectObserver: Send + Sync {
    /// An interval was aligned and fed through detection. `contributors`
    /// of `expected` routers reported before the flush (fewer than
    /// `expected` means the straggler deadline forced a partial flush).
    fn interval_closed(
        &self,
        interval: u64,
        snapshot: &IntervalSnapshot,
        outcome: &IntervalOutcome,
        contributors: usize,
        expected: usize,
    ) {
        let _ = (interval, snapshot, outcome, contributors, expected);
    }

    /// No router reported for `interval` inside the reorder window; the
    /// pipeline synthesized a gap (forecasters frozen, no zero-feeding).
    fn gap_synthesized(&self, interval: u64, outcome: &IntervalOutcome) {
        let _ = (interval, outcome);
    }

    /// A core checkpoint was written covering state up to `interval`.
    fn checkpoint_written(&self, interval: u64, path: &Path) {
        let _ = (interval, path);
    }

    /// The collector resumed from a checkpoint at startup; detection
    /// continues from `interval`.
    fn resumed(&self, interval: u64, path: &Path) {
        let _ = (interval, path);
    }

    /// A frame failed wire validation (framing, CRC, version, or
    /// fingerprint) and was rejected before reaching the sum.
    fn frame_rejected(&self, error: &WireError) {
        let _ = error;
    }

    /// A router agent re-established its collector connection after a
    /// disconnect; `reconnects` counts them over the agent's lifetime.
    fn agent_reconnected(&self, router_id: u32, reconnects: u64) {
        let _ = (router_id, reconnects);
    }

    /// A mid-tier aggregator (`node_id`) combined `contributors` of
    /// `expected` child snapshots for `interval` and forwarded the sum
    /// upstream.
    fn snapshot_forwarded(
        &self,
        node_id: u32,
        interval: u64,
        snapshot: &IntervalSnapshot,
        contributors: usize,
        expected: usize,
    ) {
        let _ = (node_id, interval, snapshot, contributors, expected);
    }

    /// No child of aggregator `node_id` reported for `interval`: the tier
    /// forwarded *nothing* (never an all-zero snapshot), leaving gap
    /// synthesis to the upstream tier's own quorum machinery.
    fn tier_gap(&self, node_id: u32, interval: u64) {
        let _ = (node_id, interval);
    }
}
