//! The upstream shipping path: bounded backlog, bounded attempts,
//! exponential backoff, reconnect-with-backlog-survival. Factored out of
//! the router agent so mid-tier aggregators re-emit their summed
//! snapshots through the exact same machinery — an unreliable upstream
//! costs a capped, predictable stall per interval at every tier, never a
//! hang.

use crate::agent::{AgentError, AgentStats, ShipReport};
use crate::observer::CollectObserver;
use std::collections::VecDeque;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Shipping policy, independent of who is doing the shipping.
#[derive(Clone, Debug)]
pub struct ShipConfig {
    /// Encoded frames kept while the upstream is unreachable; the oldest
    /// interval is dropped when a new one would exceed this.
    pub max_backlog_frames: usize,
    /// Connect/send attempts per flush before giving up (the backlog
    /// keeps the frames for the next flush).
    pub max_attempts: u32,
    /// First retry delay; doubles per failure.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Socket connect and write timeout.
    pub io_timeout: Duration,
}

impl Default for ShipConfig {
    fn default() -> Self {
        ShipConfig {
            max_backlog_frames: 64,
            max_attempts: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// Ships encoded frames to one upstream address on behalf of node `id`
/// (a router id or an aggregator node id — whoever owns the frames).
pub struct Shipper {
    addr: String,
    id: u32,
    cfg: ShipConfig,
    backlog: VecDeque<Vec<u8>>,
    stream: Option<TcpStream>,
    connected_before: bool,
    stats: AgentStats,
    observer: Option<Arc<dyn CollectObserver>>,
}

impl std::fmt::Debug for Shipper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shipper")
            .field("addr", &self.addr)
            .field("id", &self.id)
            .field("backlog", &self.backlog.len())
            .finish_non_exhaustive()
    }
}

impl Shipper {
    /// A shipper for `id`, targeting `addr`. No connection is made until
    /// the first flush.
    pub fn new(addr: impl Into<String>, id: u32, cfg: ShipConfig) -> Self {
        Shipper {
            addr: addr.into(),
            id,
            cfg,
            backlog: VecDeque::new(),
            stream: None,
            connected_before: false,
            stats: AgentStats::default(),
            observer: None,
        }
    }

    /// Attaches an observer notified on reconnects. Callbacks run inline
    /// on the shipping path, so they must stay cheap.
    pub fn set_observer(&mut self, observer: Arc<dyn CollectObserver>) {
        self.observer = Some(observer);
    }

    /// The upstream address frames ship to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Points the shipper at a different upstream address (e.g. a
    /// restarted site on a new port). Any open connection is dropped; the
    /// backlog is kept and ships to the new address on the next flush.
    pub fn set_addr(&mut self, addr: impl Into<String>) {
        self.addr = addr.into();
        self.stream = None;
    }

    /// Queues one encoded frame, evicting the oldest on overflow (fresher
    /// intervals matter more to detection). Returns how many frames were
    /// evicted.
    pub fn enqueue(&mut self, frame: Vec<u8>) -> usize {
        self.stats.frames_enqueued += 1;
        let mut dropped = 0;
        while self.backlog.len() >= self.cfg.max_backlog_frames.max(1) {
            self.backlog.pop_front();
            self.stats.frames_dropped += 1;
            dropped += 1;
        }
        self.backlog.push_back(frame);
        dropped
    }

    /// Counts an interval whose snapshot never became a frame (an
    /// unframeable payload or a lost shard worker): enqueued and dropped
    /// in one motion, so the stats stay interval-accurate.
    pub fn count_unframeable(&mut self) {
        self.stats.frames_enqueued += 1;
        self.stats.frames_dropped += 1;
    }

    /// Tries to ship the whole backlog within the configured attempt and
    /// backoff budget. Whatever could not be sent stays queued.
    pub fn flush(&mut self) -> ShipReport {
        let mut report = ShipReport::default();
        let mut attempts = 0u32;
        let mut backoff = self.cfg.initial_backoff;
        while !self.backlog.is_empty() {
            if self.stream.is_none() {
                match self.connect() {
                    Ok(stream) => {
                        if self.connected_before {
                            self.stats.reconnects += 1;
                            if let Some(obs) = &self.observer {
                                obs.agent_reconnected(self.id, self.stats.reconnects);
                            }
                        }
                        self.connected_before = true;
                        self.stream = Some(stream);
                    }
                    Err(_) => {
                        self.stats.send_failures += 1;
                        attempts += 1;
                        if attempts >= self.cfg.max_attempts {
                            break;
                        }
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(self.cfg.max_backoff);
                        continue;
                    }
                }
            }
            match self.ship_front() {
                Ok(0) => break,
                Ok(bytes) => {
                    self.stats.frames_shipped += 1;
                    self.stats.bytes_shipped += bytes;
                    report.shipped += 1;
                    // Progress resets the retry budget.
                    attempts = 0;
                    backoff = self.cfg.initial_backoff;
                }
                Err(_) => {
                    // The frame may have been partially written; the
                    // upstream's framing validation discards the torn
                    // remainder on its side, and the whole frame is
                    // resent on a fresh connection.
                    self.stream = None;
                    self.stats.send_failures += 1;
                    attempts += 1;
                    if attempts >= self.cfg.max_attempts {
                        break;
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.cfg.max_backoff);
                }
            }
        }
        report.queued = self.backlog.len();
        report
    }

    /// Writes the front frame of the backlog, returning the bytes shipped
    /// (`0` when the backlog is empty — nothing to do).
    fn ship_front(&mut self) -> Result<u64, AgentError> {
        let stream = self.stream.as_mut().ok_or(AgentError::NotConnected)?;
        let Some(frame) = self.backlog.front() else {
            return Ok(0);
        };
        stream.write_all(frame).map_err(AgentError::Io)?;
        let bytes = frame.len() as u64;
        self.backlog.pop_front();
        Ok(bytes)
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let mut last_err = None;
        for addr in std::net::ToSocketAddrs::to_socket_addrs(&self.addr.as_str())? {
            match TcpStream::connect_timeout(&addr, self.cfg.io_timeout) {
                Ok(stream) => {
                    stream.set_write_timeout(Some(self.cfg.io_timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "address resolved to nothing")
        }))
    }

    /// Frames waiting for a reachable upstream.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// The still-unshipped frames, verbatim (for checkpointing).
    pub fn backlog_frames(&self) -> Vec<Vec<u8>> {
        self.backlog.iter().cloned().collect()
    }

    /// Replaces the backlog with checkpointed frames.
    pub fn restore_backlog(&mut self, frames: &[Vec<u8>]) {
        self.backlog = frames.iter().cloned().collect();
    }

    /// Lifetime shipping counters.
    pub fn stats(&self) -> &AgentStats {
        &self.stats
    }

    /// Drops the connection (the backlog and stats stay).
    pub fn close(&mut self) {
        drop(self.stream.take());
    }
}
