//! The upstream shipping path: bounded backlog, bounded attempts,
//! exponential backoff, reconnect-with-backlog-survival. Factored out of
//! the router agent so mid-tier aggregators re-emit their summed
//! snapshots through the exact same machinery — an unreliable upstream
//! costs a capped, predictable stall per interval at every tier, never a
//! hang.
//!
//! # Codec negotiation
//!
//! A shipper that offers [`wire::CODEC_V2`] opens every connection with
//! a hello and waits briefly for the collector's accept. A v1-only
//! collector kills the connection instead (the hello is bad magic to
//! it); the shipper notices — EOF or timeout — falls back to v1 for
//! this address, and reconnects without a hello. Interop is therefore
//! automatic in both directions: v1 agents never send hellos, and v2
//! collectors accept bare v1 frames from the first byte.
//!
//! On a v2 session the collector acks each interval it decodes; those
//! acks gate the delta chain (see [`crate::codec_v2`]): a snapshot is
//! shipped as residuals only against a baseline the collector provably
//! holds, so no drop, reorder, or restart can ever leave a frame
//! undecodable. Backlogged delta frames carry their standalone keyframe
//! twin, which replaces them after any reconnect — and is transcoded
//! down to a v1 frame if the session renegotiates to v1 (an agent
//! resuming its pre-upgrade checkpoint against a downgraded collector).

use crate::agent::{AgentError, AgentStats, ShipReport};
use crate::codec_v2::SnapshotEncoder;
use crate::observer::CollectObserver;
use crate::wire;
use hifind::IntervalSnapshot;
use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Shipping policy, independent of who is doing the shipping.
#[derive(Clone, Debug)]
pub struct ShipConfig {
    /// Encoded frames kept while the upstream is unreachable; the oldest
    /// interval is dropped when a new one would exceed this.
    pub max_backlog_frames: usize,
    /// Connect/send attempts per flush before giving up (the backlog
    /// keeps the frames for the next flush).
    pub max_attempts: u32,
    /// First retry delay; doubles per failure.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Socket connect and write timeout.
    pub io_timeout: Duration,
    /// Codec ids this sender offers, in preference order. Without
    /// [`wire::CODEC_V2`] no hello is ever sent and every frame is plain
    /// v1 — byte-for-byte a legacy agent.
    pub codecs: Vec<u8>,
}

impl Default for ShipConfig {
    fn default() -> Self {
        ShipConfig {
            max_backlog_frames: 64,
            max_attempts: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            io_timeout: Duration::from_secs(5),
            codecs: vec![wire::CODEC_V2, wire::CODEC_V1],
        }
    }
}

/// One checkpointable backlog frame: the bytes to (re)ship plus the
/// codec they are encoded in, so a resumed agent can renegotiate and
/// transcode instead of replaying frames the new session cannot decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BacklogFrame {
    /// [`wire::CODEC_V1`] or [`wire::CODEC_V2`].
    pub codec: u8,
    /// A complete standalone frame (header + payload, never a delta).
    pub frame: Vec<u8>,
}

/// A queued frame awaiting shipment.
struct Entry {
    /// Codec of `frame` as queued.
    codec: u8,
    /// The frame to write on the current connection.
    frame: Vec<u8>,
    /// For delta frames: the standalone keyframe twin that replaces
    /// `frame` after a reconnect (the new session's chain state is
    /// unknown) and is what checkpoints persist.
    standalone: Option<Vec<u8>>,
}

impl Entry {
    /// The frame a checkpoint (or a fresh connection) should carry.
    fn standalone_frame(&self) -> &Vec<u8> {
        self.standalone.as_ref().unwrap_or(&self.frame)
    }
}

/// How long to wait for the collector's accept before concluding the
/// peer is a v1 build (which closes the connection on our hello instead
/// of answering). Bounded separately from `io_timeout` so a legacy
/// upstream costs a short, one-time stall — remembered per address.
const ACCEPT_WAIT: Duration = Duration::from_millis(1500);

/// Ships encoded frames to one upstream address on behalf of node `id`
/// (a router id or an aggregator node id — whoever owns the frames).
pub struct Shipper {
    addr: String,
    id: u32,
    cfg: ShipConfig,
    backlog: VecDeque<Entry>,
    stream: Option<TcpStream>,
    connected_before: bool,
    stats: AgentStats,
    observer: Option<Arc<dyn CollectObserver>>,
    /// Codec granted by the current connection's negotiation (v1 when no
    /// hello was sent); `None` while disconnected.
    session: Option<u8>,
    /// Set once this address proved to be a v1-only collector; suppresses
    /// further hellos until the address changes.
    v1_fallback: bool,
    /// Highest interval the collector acked on this connection.
    last_acked: Option<u64>,
    /// Partial ack bytes carried between nonblocking reads.
    ack_buf: Vec<u8>,
    /// Keyframe/delta state for v2 encoding.
    encoder: SnapshotEncoder,
}

impl std::fmt::Debug for Shipper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shipper")
            .field("addr", &self.addr)
            .field("id", &self.id)
            .field("backlog", &self.backlog.len())
            .field("session", &self.session)
            .finish_non_exhaustive()
    }
}

impl Shipper {
    /// A shipper for `id`, targeting `addr`. No connection is made until
    /// the first flush.
    pub fn new(addr: impl Into<String>, id: u32, cfg: ShipConfig) -> Self {
        Shipper {
            addr: addr.into(),
            id,
            cfg,
            backlog: VecDeque::new(),
            stream: None,
            connected_before: false,
            stats: AgentStats::default(),
            observer: None,
            session: None,
            v1_fallback: false,
            last_acked: None,
            ack_buf: Vec::new(),
            encoder: SnapshotEncoder::default(),
        }
    }

    /// Attaches an observer notified on reconnects. Callbacks run inline
    /// on the shipping path, so they must stay cheap.
    pub fn set_observer(&mut self, observer: Arc<dyn CollectObserver>) {
        self.observer = Some(observer);
    }

    /// The upstream address frames ship to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Points the shipper at a different upstream address (e.g. a
    /// restarted site on a new port). Any open connection is dropped; the
    /// backlog is kept and ships to the new address on the next flush.
    /// Codec negotiation starts over — the new site may speak v2 even if
    /// the old one did not.
    pub fn set_addr(&mut self, addr: impl Into<String>) {
        self.addr = addr.into();
        self.v1_fallback = false;
        self.drop_stream();
    }

    fn offers_v2(&self) -> bool {
        self.cfg.codecs.contains(&wire::CODEC_V2)
    }

    /// Drops the connection and every piece of per-session state: the
    /// next session cannot be assumed to hold our delta baselines, so
    /// pending delta frames revert to their standalone twins and the
    /// encoder restarts from a keyframe.
    fn drop_stream(&mut self) {
        self.stream = None;
        self.session = None;
        self.last_acked = None;
        self.ack_buf.clear();
        self.encoder.reset();
        for entry in &mut self.backlog {
            if let Some(standalone) = entry.standalone.take() {
                entry.frame = standalone;
            }
        }
    }

    /// Encodes `snapshot` for `interval` in the best codec the current
    /// (or prospective) session allows and queues it. Returns the flush
    /// outcome, like the old frame-level path did.
    pub fn ship_snapshot(&mut self, interval: u64, snapshot: &IntervalSnapshot) -> ShipReport {
        let mut dropped = 0;
        match self.encode_entry(interval, snapshot) {
            Some(entry) => dropped += self.enqueue_entry(entry),
            None => {
                self.count_unframeable();
                dropped += 1;
            }
        }
        let mut report = self.flush();
        report.dropped += dropped;
        report
    }

    fn encode_entry(&mut self, interval: u64, snapshot: &IntervalSnapshot) -> Option<Entry> {
        if self.offers_v2() && !self.v1_fallback {
            // Deltas only against an interval the live session acked;
            // anywhere short of that, `encode` falls back to a keyframe
            // on its own.
            let acked = if self.session == Some(wire::CODEC_V2) {
                self.drain_acks();
                self.last_acked
            } else {
                None
            };
            let encoded = self.encoder.encode(interval, snapshot, acked);
            let frame =
                wire::encode_frame_v2(self.id, interval, snapshot.fingerprint, &encoded.payload)
                    .ok()?;
            let standalone = if encoded.is_delta {
                self.stats.frames_v2_deltas += 1;
                Some(
                    wire::encode_frame_v2(
                        self.id,
                        interval,
                        snapshot.fingerprint,
                        &encoded.keyframe,
                    )
                    .ok()?,
                )
            } else {
                self.stats.frames_v2_keyframes += 1;
                None
            };
            Some(Entry {
                codec: wire::CODEC_V2,
                frame,
                standalone,
            })
        } else {
            let frame = wire::encode_frame(self.id, interval, snapshot).ok()?;
            Some(Entry {
                codec: wire::CODEC_V1,
                frame,
                standalone: None,
            })
        }
    }

    /// Queues one pre-encoded standalone frame (the codec is read off its
    /// header), evicting the oldest on overflow (fresher intervals matter
    /// more to detection). Returns how many frames were evicted.
    pub fn enqueue(&mut self, frame: Vec<u8>) -> usize {
        let codec = if frame.len() > 6 && frame[4] == 2 {
            wire::CODEC_V2
        } else {
            wire::CODEC_V1
        };
        self.enqueue_entry(Entry {
            codec,
            frame,
            standalone: None,
        })
    }

    fn enqueue_entry(&mut self, entry: Entry) -> usize {
        self.stats.frames_enqueued += 1;
        let mut dropped = 0;
        while self.backlog.len() >= self.cfg.max_backlog_frames.max(1) {
            self.backlog.pop_front();
            self.stats.frames_dropped += 1;
            dropped += 1;
        }
        self.backlog.push_back(entry);
        dropped
    }

    /// Counts an interval whose snapshot never became a frame (an
    /// unframeable payload or a lost shard worker): enqueued and dropped
    /// in one motion, so the stats stay interval-accurate.
    pub fn count_unframeable(&mut self) {
        self.stats.frames_enqueued += 1;
        self.stats.frames_dropped += 1;
    }

    /// Tries to ship the whole backlog within the configured attempt and
    /// backoff budget. Whatever could not be sent stays queued.
    pub fn flush(&mut self) -> ShipReport {
        let mut report = ShipReport::default();
        let mut attempts = 0u32;
        let mut backoff = self.cfg.initial_backoff;
        while !self.backlog.is_empty() {
            if self.stream.is_none() {
                match self.connect_negotiated() {
                    Ok(stream) => {
                        if self.connected_before {
                            self.stats.reconnects += 1;
                            if let Some(obs) = &self.observer {
                                obs.agent_reconnected(self.id, self.stats.reconnects);
                            }
                        }
                        self.connected_before = true;
                        self.stream = Some(stream);
                        if self.session != Some(wire::CODEC_V2) {
                            self.downgrade_backlog_to_v1();
                        }
                    }
                    Err(_) => {
                        self.stats.send_failures += 1;
                        attempts += 1;
                        if attempts >= self.cfg.max_attempts {
                            break;
                        }
                        std::thread::sleep(backoff);
                        backoff = (backoff * 2).min(self.cfg.max_backoff);
                        continue;
                    }
                }
            }
            match self.ship_front() {
                Ok(0) => break,
                Ok(bytes) => {
                    self.stats.frames_shipped += 1;
                    self.stats.bytes_shipped += bytes;
                    report.shipped += 1;
                    // Progress resets the retry budget.
                    attempts = 0;
                    backoff = self.cfg.initial_backoff;
                }
                Err(_) => {
                    // The frame may have been partially written; the
                    // upstream's framing validation discards the torn
                    // remainder on its side, and the whole frame is
                    // resent on a fresh connection.
                    self.drop_stream();
                    self.stats.send_failures += 1;
                    attempts += 1;
                    if attempts >= self.cfg.max_attempts {
                        break;
                    }
                    std::thread::sleep(backoff);
                    backoff = (backoff * 2).min(self.cfg.max_backoff);
                }
            }
        }
        if self.session == Some(wire::CODEC_V2) {
            self.drain_acks();
        }
        report.queued = self.backlog.len();
        report
    }

    /// Rewrites every queued v2 frame as a v1 frame, for a session that
    /// negotiated (or fell back to) v1. Frames that cannot be transcoded
    /// are dropped and counted, never shipped undecodable.
    fn downgrade_backlog_to_v1(&mut self) {
        let mut kept = VecDeque::with_capacity(self.backlog.len());
        for mut entry in self.backlog.drain(..) {
            if entry.codec == wire::CODEC_V1 {
                kept.push_back(entry);
                continue;
            }
            match wire::transcode_frame_v2_to_v1(entry.standalone_frame()) {
                Ok(frame) => {
                    self.stats.frames_transcoded += 1;
                    entry.codec = wire::CODEC_V1;
                    entry.frame = frame;
                    entry.standalone = None;
                    kept.push_back(entry);
                }
                Err(_) => {
                    self.stats.frames_dropped += 1;
                }
            }
        }
        self.backlog = kept;
    }

    /// Writes the front frame of the backlog, returning the bytes shipped
    /// (`0` when the backlog is empty — nothing to do).
    fn ship_front(&mut self) -> Result<u64, AgentError> {
        let stream = self.stream.as_mut().ok_or(AgentError::NotConnected)?;
        let Some(entry) = self.backlog.front() else {
            return Ok(0);
        };
        stream.write_all(&entry.frame).map_err(AgentError::Io)?;
        let bytes = u64::try_from(entry.frame.len()).unwrap_or(u64::MAX);
        self.backlog.pop_front();
        Ok(bytes)
    }

    /// Connects, and on a fresh v2-offering session performs the hello
    /// handshake — falling back to a plain v1 connection (remembered for
    /// this address) when the collector does not answer it.
    fn connect_negotiated(&mut self) -> std::io::Result<TcpStream> {
        let stream = self.connect()?;
        if !self.offers_v2() || self.v1_fallback {
            self.session = Some(wire::CODEC_V1);
            return Ok(stream);
        }
        match self.hello_handshake(&stream) {
            Ok(codec) => {
                self.session = Some(codec);
                Ok(stream)
            }
            Err(_) => {
                // A v1 collector treats our hello as bad magic and kills
                // the connection. Remember, reconnect, speak v1.
                drop(stream);
                self.v1_fallback = true;
                self.session = Some(wire::CODEC_V1);
                self.connect()
            }
        }
    }

    /// Sends the hello and reads the accept, under a bounded wait.
    fn hello_handshake(&self, stream: &TcpStream) -> std::io::Result<u8> {
        let mut s = stream;
        s.write_all(&wire::encode_hello(&self.cfg.codecs))?;
        stream.set_read_timeout(Some(ACCEPT_WAIT.min(self.cfg.io_timeout)))?;
        let mut accept = [0u8; wire::ACCEPT_LEN];
        let outcome = (|| {
            let mut filled = 0;
            while filled < accept.len() {
                match s.read(&mut accept[filled..]) {
                    Ok(0) => return Err(std::io::Error::from(std::io::ErrorKind::UnexpectedEof)),
                    Ok(n) => filled += n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            let codec = wire::parse_accept(&accept)
                .map_err(|_| std::io::Error::from(std::io::ErrorKind::InvalidData))?;
            if self.cfg.codecs.contains(&codec) {
                Ok(codec)
            } else {
                Err(std::io::Error::from(std::io::ErrorKind::InvalidData))
            }
        })();
        stream.set_read_timeout(None)?;
        outcome
    }

    /// Reads whatever acks the collector has sent without ever blocking;
    /// a malformed ack stream is ignored (acks only unlock compression —
    /// losing them costs keyframes, not correctness).
    fn drain_acks(&mut self) {
        let Some(stream) = &mut self.stream else {
            return;
        };
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let mut chunk = [0u8; 256];
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => self.ack_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => break,
            }
        }
        let _ = stream.set_nonblocking(false);
        while self.ack_buf.len() >= wire::ACK_LEN {
            let Ok(msg) = <[u8; wire::ACK_LEN]>::try_from(&self.ack_buf[..wire::ACK_LEN]) else {
                break;
            };
            match wire::parse_ack(&msg) {
                Ok(interval) => {
                    self.last_acked = Some(self.last_acked.map_or(interval, |a| a.max(interval)));
                    self.ack_buf.drain(..wire::ACK_LEN);
                }
                Err(_) => {
                    // Desynchronized ack stream: discard it wholesale.
                    self.ack_buf.clear();
                    break;
                }
            }
        }
    }

    fn connect(&self) -> std::io::Result<TcpStream> {
        let mut last_err = None;
        for addr in std::net::ToSocketAddrs::to_socket_addrs(&self.addr.as_str())? {
            match TcpStream::connect_timeout(&addr, self.cfg.io_timeout) {
                Ok(stream) => {
                    stream.set_write_timeout(Some(self.cfg.io_timeout))?;
                    stream.set_nodelay(true)?;
                    return Ok(stream);
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::NotFound, "address resolved to nothing")
        }))
    }

    /// Frames waiting for a reachable upstream.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// The still-unshipped frames in checkpointable form: standalone
    /// (never delta), tagged with their codec.
    pub fn backlog_frames(&self) -> Vec<BacklogFrame> {
        self.backlog
            .iter()
            .map(|entry| BacklogFrame {
                codec: entry.codec,
                frame: entry.standalone_frame().clone(),
            })
            .collect()
    }

    /// Replaces the backlog with checkpointed frames.
    pub fn restore_backlog(&mut self, frames: &[BacklogFrame]) {
        self.backlog = frames
            .iter()
            .map(|f| Entry {
                codec: f.codec,
                frame: f.frame.clone(),
                standalone: None,
            })
            .collect();
    }

    /// Lifetime shipping counters.
    pub fn stats(&self) -> &AgentStats {
        &self.stats
    }

    /// Closes the connection gracefully. On a v2 session the collector
    /// acks intervals as it *decodes* them, which can trail our last
    /// write by however deep its queue runs; dropping the socket
    /// outright would answer a late ack with an RST — and an RST
    /// discards every shipped frame the collector had not yet read from
    /// its receive buffer. So: shut down the write side (the collector
    /// sees a clean EOF after our last frame) and hand the read side to
    /// a detached drain that sinks acks until the collector closes.
    /// Never blocks; the backlog and stats stay.
    pub fn close(&mut self) {
        if let Some(stream) = self.stream.take() {
            let _ = stream.shutdown(std::net::Shutdown::Write);
            if self.session == Some(wire::CODEC_V2) {
                let _ = std::thread::Builder::new()
                    .name("hifind-ack-drain".into())
                    .spawn(move || {
                        // The backstop timeout only matters if the
                        // collector neither acks nor closes for this
                        // long — then late-ack loss is moot anyway.
                        let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
                        let mut s = &stream;
                        let mut sink = [0u8; 1024];
                        loop {
                            match s.read(&mut sink) {
                                Ok(n) if n > 0 => {}
                                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                                _ => break,
                            }
                        }
                    });
            }
        }
        self.drop_stream();
    }
}
