//! Compact binary encoding of [`IntervalSnapshot`].
//!
//! Sketch grids are overwhelmingly zero outside attack hot spots, so
//! counters are written as zig-zag LEB128 varints: a zero bucket costs one
//! byte instead of eight, shrinking a paper-config snapshot well below its
//! in-memory size. Bloom filter words and hash seeds are high-entropy and
//! are written as raw little-endian `u64`s.
//!
//! The decoder is built for untrusted input: every read is bounds-checked,
//! declared sizes are capped before allocation, and all failures are typed
//! [`CodecError`]s — malformed bytes can never panic or exhaust memory.

use hifind::IntervalSnapshot;
use hifind_hashing::BloomFilter;
use hifind_sketch::CounterGrid;

/// Upper bound on `stages × buckets` of a single decoded grid (16 Mi
/// counters = 128 MiB); rejects absurd declared shapes before allocating.
pub(crate) const MAX_GRID_CELLS: u64 = 1 << 24;

/// Upper bound on decoded Bloom filter words (8 Mi words = 64 MiB).
pub(crate) const MAX_BLOOM_WORDS: u64 = 1 << 23;

/// Upper bound on decoded Bloom hash seeds.
pub(crate) const MAX_BLOOM_SEEDS: u64 = 64;

/// A malformed snapshot payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The payload ended inside the named field.
    Truncated { at: &'static str },
    /// A varint ran past 10 bytes (cannot be a `u64`).
    VarintOverflow { at: &'static str },
    /// Bytes remained after the last field.
    TrailingBytes { extra: usize },
    /// A declared element count exceeds its sanity cap.
    Oversized {
        at: &'static str,
        declared: u64,
        max: u64,
    },
    /// A decoded grid violated [`CounterGrid`] invariants.
    Grid { which: &'static str, detail: String },
    /// The decoded Bloom filter parts violated [`BloomFilter`] invariants.
    Bloom(String),
    /// A v2 payload's flag byte set bits this decoder does not know.
    BadFlags { flags: u64 },
    /// A v2 delta referenced a baseline interval the receiver no longer
    /// (or never) retained; the sender recovers by keyframing.
    DeltaBaselineMissing { baseline: u64 },
    /// A v2 delta's shapes (grid dimensions, Bloom geometry) disagree
    /// with its baseline, so residuals cannot be applied.
    DeltaShapeMismatch { at: &'static str },
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated { at } => write!(f, "payload truncated at {at}"),
            CodecError::VarintOverflow { at } => write!(f, "varint overflow at {at}"),
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after snapshot")
            }
            CodecError::Oversized { at, declared, max } => {
                write!(f, "{at} declares {declared} elements (cap {max})")
            }
            CodecError::Grid { which, detail } => write!(f, "grid {which}: {detail}"),
            CodecError::Bloom(detail) => write!(f, "bloom filter: {detail}"),
            CodecError::BadFlags { flags } => {
                write!(f, "unknown payload flag bits {flags:#x}")
            }
            CodecError::DeltaBaselineMissing { baseline } => {
                write!(f, "delta baseline interval {baseline} not retained")
            }
            CodecError::DeltaShapeMismatch { at } => {
                write!(f, "delta and baseline disagree on {at} shape")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// Bit-level `i64` ↔ `u64` reinterpretation (two's complement). Spelled
/// through byte arrays rather than `as` so the wire-boundary cast lint
/// can guarantee no *truncating* conversion hides among reinterprets.
fn i64_bits(v: i64) -> u64 {
    u64::from_le_bytes(v.to_le_bytes())
}

fn u64_bits(u: u64) -> i64 {
    i64::from_le_bytes(u.to_le_bytes())
}

pub(crate) fn zigzag(v: i64) -> u64 {
    i64_bits((v << 1) ^ (v >> 63))
}

pub(crate) fn unzigzag(u: u64) -> i64 {
    u64_bits(u >> 1) ^ -u64_bits(u & 1)
}

/// The low byte of `v` — an extraction, not a truncating cast.
fn low_byte(v: u64) -> u8 {
    v.to_le_bytes()[0]
}

pub(crate) fn put_uvarint(out: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        out.push(low_byte(v) | 0x80);
        v >>= 7;
    }
    out.push(low_byte(v));
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked cursor over the payload.
pub(crate) struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    pub(crate) fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Bytes consumed so far.
    pub(crate) fn position(&self) -> usize {
        self.pos
    }

    /// Advances past `n` bytes the caller already sliced out directly.
    ///
    /// # Errors
    ///
    /// [`CodecError::Truncated`] when fewer than `n` bytes remain — a
    /// short payload must surface as an error at the field that ran out,
    /// never silently masquerade as fully consumed (clamping to the
    /// buffer end would make the final trailing-bytes check pass on a
    /// truncated payload).
    pub(crate) fn skip(&mut self, n: usize, at: &'static str) -> Result<(), CodecError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.bytes.len());
        match end {
            Some(end) => {
                self.pos = end;
                Ok(())
            }
            None => Err(CodecError::Truncated { at }),
        }
    }

    pub(crate) fn uvarint(&mut self, at: &'static str) -> Result<u64, CodecError> {
        let mut v = 0u64;
        let mut shift = 0u32;
        loop {
            let Some(&b) = self.bytes.get(self.pos) else {
                return Err(CodecError::Truncated { at });
            };
            self.pos += 1;
            if shift >= 64 || (shift == 63 && b > 1) {
                return Err(CodecError::VarintOverflow { at });
            }
            v |= u64::from(b & 0x7F) << shift;
            if b & 0x80 == 0 {
                return Ok(v);
            }
            shift += 7;
        }
    }

    pub(crate) fn ivarint(&mut self, at: &'static str) -> Result<i64, CodecError> {
        Ok(unzigzag(self.uvarint(at)?))
    }

    pub(crate) fn u64(&mut self, at: &'static str) -> Result<u64, CodecError> {
        let end = self.pos.checked_add(8).filter(|&e| e <= self.bytes.len());
        let Some(end) = end else {
            return Err(CodecError::Truncated { at });
        };
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(raw))
    }

    pub(crate) fn counted(
        &mut self,
        at: &'static str,
        declared: u64,
        max: u64,
    ) -> Result<usize, CodecError> {
        if declared > max {
            return Err(CodecError::Oversized { at, declared, max });
        }
        usize::try_from(declared).map_err(|_| CodecError::Oversized { at, declared, max })
    }
}

/// A length as the wire's `u64` count. Lengths of in-memory vectors
/// always fit; saturating (instead of a bare cast) means a pathological
/// value trips the decoder's sanity caps rather than truncating silently.
pub(crate) fn len_u64(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

fn encode_grid(out: &mut Vec<u8>, grid: &CounterGrid) {
    put_uvarint(out, len_u64(grid.stages()));
    put_uvarint(out, len_u64(grid.buckets()));
    for stage in 0..grid.stages() {
        for &v in grid.stage(stage) {
            put_uvarint(out, zigzag(v));
        }
    }
}

fn decode_grid(r: &mut Reader<'_>, which: &'static str) -> Result<CounterGrid, CodecError> {
    let stages = r.uvarint(which)?;
    let buckets = r.uvarint(which)?;
    let cells = stages.checked_mul(buckets).ok_or(CodecError::Oversized {
        at: which,
        declared: u64::MAX,
        max: MAX_GRID_CELLS,
    })?;
    let cells = r.counted(which, cells, MAX_GRID_CELLS)?;
    // Each dimension is checked on its own: `0 × huge` passes the cell
    // cap, but a bare cast of `huge` could truncate on a narrow target.
    let stages = r.counted(which, stages, MAX_GRID_CELLS)?;
    let buckets = r.counted(which, buckets, MAX_GRID_CELLS)?;
    let mut data = Vec::with_capacity(cells);
    for _ in 0..cells {
        data.push(r.ivarint(which)?);
    }
    CounterGrid::from_data(stages, buckets, data).map_err(|e| CodecError::Grid {
        which,
        detail: e.to_string(),
    })
}

/// Serializes a snapshot into the payload format (no frame header; see
/// [`crate::wire::encode_frame`] for the full frame).
pub fn encode_snapshot(snap: &IntervalSnapshot) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 << 16);
    put_u64(&mut out, snap.fingerprint);
    put_uvarint(&mut out, snap.syn_count);
    put_uvarint(&mut out, snap.syn_ack_count);
    put_uvarint(&mut out, snap.fin_rst_count);
    for grid in grids(snap) {
        encode_grid(&mut out, grid);
    }
    let bloom = &snap.active_services;
    put_uvarint(&mut out, len_u64(bloom.bit_words().len()));
    put_uvarint(&mut out, len_u64(bloom.hash_seeds().len()));
    put_uvarint(&mut out, bloom.inserted());
    for &w in bloom.bit_words() {
        put_u64(&mut out, w);
    }
    for &s in bloom.hash_seeds() {
        put_u64(&mut out, s);
    }
    out
}

/// Parses a payload produced by [`encode_snapshot`].
///
/// # Errors
///
/// Returns a [`CodecError`] describing the first structural violation;
/// never panics on malformed input.
pub fn decode_snapshot(bytes: &[u8]) -> Result<IntervalSnapshot, CodecError> {
    let mut r = Reader { bytes, pos: 0 };
    let fingerprint = r.u64("fingerprint")?;
    let syn_count = r.uvarint("syn_count")?;
    let syn_ack_count = r.uvarint("syn_ack_count")?;
    let fin_rst_count = r.uvarint("fin_rst_count")?;
    let rs_sip_dport = decode_grid(&mut r, "rs_sip_dport")?;
    let rs_sip_dport_verifier = decode_grid(&mut r, "rs_sip_dport_verifier")?;
    let rs_dip_dport = decode_grid(&mut r, "rs_dip_dport")?;
    let rs_dip_dport_verifier = decode_grid(&mut r, "rs_dip_dport_verifier")?;
    let rs_sip_dip = decode_grid(&mut r, "rs_sip_dip")?;
    let rs_sip_dip_verifier = decode_grid(&mut r, "rs_sip_dip_verifier")?;
    let os = decode_grid(&mut r, "os")?;
    let twod_sipdport_dip = decode_grid(&mut r, "twod_sipdport_dip")?;
    let twod_sipdip_dport = decode_grid(&mut r, "twod_sipdip_dport")?;
    let words = r.uvarint("bloom_words")?;
    let words = r.counted("bloom_words", words, MAX_BLOOM_WORDS)?;
    let seeds = r.uvarint("bloom_seeds")?;
    let seeds = r.counted("bloom_seeds", seeds, MAX_BLOOM_SEEDS)?;
    let inserted = r.uvarint("bloom_inserted")?;
    let mut bits = Vec::with_capacity(words);
    for _ in 0..words {
        bits.push(r.u64("bloom_words")?);
    }
    let mut hash_seeds = Vec::with_capacity(seeds);
    for _ in 0..seeds {
        hash_seeds.push(r.u64("bloom_seeds")?);
    }
    let active_services =
        BloomFilter::from_parts(bits, hash_seeds, inserted).map_err(CodecError::Bloom)?;
    if r.pos != bytes.len() {
        return Err(CodecError::TrailingBytes {
            extra: bytes.len() - r.pos,
        });
    }
    Ok(IntervalSnapshot {
        rs_sip_dport,
        rs_sip_dport_verifier,
        rs_dip_dport,
        rs_dip_dport_verifier,
        rs_sip_dip,
        rs_sip_dip_verifier,
        os,
        twod_sipdport_dip,
        twod_sipdip_dport,
        active_services,
        syn_count,
        syn_ack_count,
        fin_rst_count,
        fingerprint,
    })
}

/// The nine sketch grids of a snapshot in their canonical wire order,
/// shared with the v2 codec ([`crate::codec_v2`]) so both encodings walk
/// the same layout.
pub(crate) fn grids(snap: &IntervalSnapshot) -> [&CounterGrid; 9] {
    [
        &snap.rs_sip_dport,
        &snap.rs_sip_dport_verifier,
        &snap.rs_dip_dport,
        &snap.rs_dip_dport_verifier,
        &snap.rs_sip_dip,
        &snap.rs_sip_dip_verifier,
        &snap.os,
        &snap.twod_sipdport_dip,
        &snap.twod_sipdip_dport,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind::{HiFindConfig, SketchRecorder};
    use hifind_flow::Packet;

    fn sample_snapshot(seed: u64, packets: u32) -> IntervalSnapshot {
        let cfg = HiFindConfig::small(seed);
        let mut r = SketchRecorder::new(&cfg).unwrap();
        for i in 0..packets {
            r.record(&Packet::syn(
                u64::from(i),
                [10, 0, (i >> 8) as u8, i as u8].into(),
                2000,
                [129, 105, 0, 1].into(),
                80,
            ));
            if i % 3 == 0 {
                r.record(&Packet::syn_ack(
                    u64::from(i),
                    [10, 0, (i >> 8) as u8, i as u8].into(),
                    2000,
                    [129, 105, 0, 1].into(),
                    80,
                ));
            }
        }
        r.take_snapshot()
    }

    #[test]
    fn round_trip_is_exact() {
        let snap = sample_snapshot(7, 400);
        let bytes = encode_snapshot(&snap);
        let back = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn sparse_grids_compress_far_below_memory_size() {
        let snap = sample_snapshot(8, 200);
        let bytes = encode_snapshot(&snap);
        assert!(
            bytes.len() * 4 < snap.wire_size_bytes(),
            "varint payload {} should be well under the {}-byte raw size",
            bytes.len(),
            snap.wire_size_bytes()
        );
    }

    #[test]
    fn zigzag_round_trips_extremes() {
        for v in [0, 1, -1, i64::MAX, i64::MIN, 4242, -4242] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn truncation_anywhere_is_a_typed_error() {
        let bytes = encode_snapshot(&sample_snapshot(9, 50));
        // Cutting at every 97th prefix keeps the test fast but still
        // sweeps all field kinds.
        for cut in (0..bytes.len()).step_by(97) {
            let err = decode_snapshot(&bytes[..cut]).expect_err("truncated must fail");
            assert!(
                matches!(
                    err,
                    CodecError::Truncated { .. }
                        | CodecError::Grid { .. }
                        | CodecError::Bloom(_)
                        | CodecError::TrailingBytes { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    /// Regression: `Reader::skip` used to clamp past the end of the
    /// buffer, so a payload truncated inside a skipped region looked
    /// fully consumed and sailed through the trailing-bytes check.
    #[test]
    fn skip_past_end_is_a_typed_truncation() {
        let mut r = Reader::new(&[1, 2, 3]);
        r.skip(2, "head").expect("in-bounds skip");
        assert_eq!(r.position(), 2);
        assert_eq!(
            r.skip(2, "tail"),
            Err(CodecError::Truncated { at: "tail" }),
            "skipping past the end must be a typed error"
        );
        assert_eq!(r.position(), 2, "a failed skip must not move the cursor");
        r.skip(1, "last").expect("exact-to-end skip");
        assert_eq!(
            r.skip(usize::MAX, "overflow"),
            Err(CodecError::Truncated { at: "overflow" }),
            "a skip that would overflow the cursor must fail, not wrap"
        );
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = encode_snapshot(&sample_snapshot(10, 20));
        bytes.push(0);
        assert_eq!(
            decode_snapshot(&bytes),
            Err(CodecError::TrailingBytes { extra: 1 })
        );
    }

    #[test]
    fn absurd_declared_sizes_rejected_before_allocation() {
        // fingerprint (8 bytes) + three counters + a grid declaring
        // u64::MAX stages.
        let mut bytes = Vec::new();
        put_u64(&mut bytes, 0);
        for _ in 0..3 {
            put_uvarint(&mut bytes, 0);
        }
        put_uvarint(&mut bytes, u64::MAX);
        put_uvarint(&mut bytes, u64::MAX);
        let err = decode_snapshot(&bytes).unwrap_err();
        assert!(matches!(
            err,
            CodecError::Oversized { .. } | CodecError::VarintOverflow { .. }
        ));
    }
}
