//! The central collection site: TCP acceptor, per-router readers, and the
//! interval aligner that feeds [`DetectionCore`].
//!
//! # Threading
//!
//! * **acceptor** — non-blocking `accept` loop; spawns one reader per
//!   connection and exits on shutdown.
//! * **readers** (one per connection) — accumulate bytes with a short read
//!   timeout (so shutdown is never blocked on a silent peer), slice out
//!   complete frames, validate them ([`crate::wire`]), and forward decoded
//!   snapshots over a bounded channel — TCP backpressure, not unbounded
//!   queueing, absorbs a router that outpaces detection.
//! * **aligner** — owns the [`DetectionCore`]. Frames for the same
//!   interval are combined *incrementally on arrival* (one accumulated
//!   snapshot per pending interval, never a list), so collector memory is
//!   bounded by the reorder window, not by router count.
//!
//! # Graceful degradation
//!
//! The aligner never waits indefinitely for anyone. An interval flushes as
//! soon as every expected router reported; otherwise after
//! [`CollectorConfig::straggler_deadline`] it flushes with whatever quorum
//! arrived and the missing contributions are counted. An interval no
//! router reported (a gap while later intervals stream in) is synthesized
//! as an all-zero snapshot so the forecast models stay time-aligned. A
//! crashed router therefore costs observability of its traffic slice —
//! never liveness of the pipeline.

use crate::checkpoint;
use crate::observer::CollectObserver;
use crate::wire::{self, WireError, HEADER_LEN};
use crate::CollectError;
use hifind::pipeline::DetectionCore;
use hifind::report::AlertLog;
use hifind::{HiFindConfig, IntervalSnapshot};
use hifind_telemetry::{exponential_buckets, Counter, Gauge, Histogram, Registry, TelemetryError};
use serde::Serialize;
use std::collections::BTreeMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When and where the aligner persists its detection state.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Checkpoint file, overwritten atomically on every write.
    pub path: PathBuf,
    /// Write after every N flushed intervals (`0` = only at run end).
    pub every_intervals: u64,
}

impl CheckpointPolicy {
    /// Checkpoints to `path` every 8 flushed intervals.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            path: path.into(),
            every_intervals: 8,
        }
    }
}

/// Collection-site policy knobs.
#[derive(Clone)]
pub struct CollectorConfig {
    /// Routers expected to report each interval. Detection flushes early
    /// when all of them did; the deadline below covers the rest.
    pub expected_routers: usize,
    /// How long to hold an incomplete interval open once it has any data
    /// (or once later intervals prove it was skipped) before flushing on
    /// quorum.
    pub straggler_deadline: Duration,
    /// Maximum intervals held pending at once; beyond this the oldest is
    /// force-flushed regardless of deadline (bounds memory under heavy
    /// inter-router skew).
    pub reorder_window: u64,
    /// Per-frame payload cap handed to the wire layer.
    pub max_payload_bytes: u32,
    /// After every expected router has connected and all have
    /// disconnected, how long to wait for reconnects before finishing.
    pub linger: Duration,
    /// Periodic detection-state checkpointing (plus one final write at run
    /// end). Write failures are counted, never fatal.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume detection state from this checkpoint file at startup. A
    /// missing, corrupt, or mis-fingerprinted file fails
    /// [`Collector::bind`] with a typed error rather than silently
    /// starting fresh.
    pub resume_from: Option<PathBuf>,
    /// Hooks invoked at collection-plane transitions (interval close, gap
    /// synthesis, checkpoint write/resume, frame rejection); `None`
    /// observes nothing. Callbacks run inline on the aligner thread, so
    /// they must stay cheap.
    pub observer: Option<Arc<dyn CollectObserver>>,
}

impl std::fmt::Debug for CollectorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectorConfig")
            .field("expected_routers", &self.expected_routers)
            .field("straggler_deadline", &self.straggler_deadline)
            .field("reorder_window", &self.reorder_window)
            .field("max_payload_bytes", &self.max_payload_bytes)
            .field("linger", &self.linger)
            .field("checkpoint", &self.checkpoint)
            .field("resume_from", &self.resume_from)
            .field("observer", &self.observer.as_ref().map(|_| "Some(..)"))
            .finish()
    }
}

impl CollectorConfig {
    /// Sensible defaults for `expected_routers` reporters.
    pub fn new(expected_routers: usize) -> Self {
        CollectorConfig {
            expected_routers: expected_routers.max(1),
            straggler_deadline: Duration::from_secs(2),
            reorder_window: 8,
            max_payload_bytes: wire::DEFAULT_MAX_PAYLOAD,
            linger: Duration::from_millis(400),
            checkpoint: None,
            resume_from: None,
            observer: None,
        }
    }
}

/// What one collection run saw and decided.
#[derive(Clone, Debug, Default, Serialize)]
pub struct CollectionReport {
    /// Intervals fed to the detection pipeline.
    pub intervals_flushed: u64,
    /// Intervals with every expected router reporting.
    pub complete_intervals: u64,
    /// Intervals flushed on quorum after the straggler deadline.
    pub partial_intervals: u64,
    /// Intervals no router reported (synthesized as all-zero).
    pub gap_intervals: u64,
    /// Missing router-interval contributions across partial intervals.
    pub straggler_slots: u64,
    /// Valid frames combined into intervals.
    pub frames_received: u64,
    /// Frames for intervals already flushed, and duplicate
    /// router-interval frames (both dropped).
    pub frames_late: u64,
    /// Frames rejected for wire/codec/fingerprint violations.
    pub frames_rejected: u64,
    /// Payload + header bytes of valid frames.
    pub bytes_received: u64,
    /// Distinct router ids that contributed at least one valid frame.
    pub routers_seen: Vec<u32>,
    /// Checkpoints successfully written this run.
    pub checkpoints_written: u64,
    /// Checkpoint writes that failed (the run continues regardless).
    pub checkpoint_errors: u64,
    /// Interval the run resumed at, when started with
    /// [`CollectorConfig::resume_from`].
    pub resumed_at_interval: Option<u64>,
    /// The full alert log of the aggregated detection run.
    pub log: AlertLog,
}

/// Best-effort collector metrics (`hifind_collect_*`).
struct CollectorTelemetry {
    routers_connected: Arc<Gauge>,
    frames_received: Arc<Counter>,
    frames_late: Arc<Counter>,
    frames_rejected: Arc<Counter>,
    straggler_slots: Arc<Counter>,
    bytes_received: Arc<Counter>,
    combine_seconds: Arc<Histogram>,
    checkpoint_written: Arc<Counter>,
    checkpoint_write_errors: Arc<Counter>,
    checkpoint_resumed: Arc<Counter>,
    checkpoint_last_interval: Arc<Gauge>,
}

impl CollectorTelemetry {
    fn new(registry: &Registry) -> Result<Self, TelemetryError> {
        Ok(CollectorTelemetry {
            routers_connected: registry.gauge(
                "hifind_collect_routers_connected",
                "Router agent connections currently open",
            )?,
            frames_received: registry.counter(
                "hifind_collect_frames_received_total",
                "Valid snapshot frames combined into intervals",
            )?,
            frames_late: registry.counter(
                "hifind_collect_frames_late_total",
                "Frames dropped as late or duplicate",
            )?,
            frames_rejected: registry.counter(
                "hifind_collect_frames_rejected_total",
                "Frames rejected for wire, codec or fingerprint violations",
            )?,
            straggler_slots: registry.counter(
                "hifind_collect_straggler_slots_total",
                "Missing router-interval contributions at flush time",
            )?,
            bytes_received: registry.counter(
                "hifind_collect_bytes_received_total",
                "Bytes of valid frames received",
            )?,
            combine_seconds: registry.histogram(
                "hifind_collect_combine_seconds",
                "Latency of combining one router snapshot into its interval",
                exponential_buckets(1e-6, 4.0, 11),
            )?,
            checkpoint_written: registry.counter(
                "hifind_checkpoint_written_total",
                "Detection-state checkpoints written successfully",
            )?,
            checkpoint_write_errors: registry.counter(
                "hifind_checkpoint_write_errors_total",
                "Detection-state checkpoint writes that failed",
            )?,
            checkpoint_resumed: registry.counter(
                "hifind_checkpoint_resumed_total",
                "Collector starts that resumed from a checkpoint",
            )?,
            checkpoint_last_interval: registry.gauge(
                "hifind_checkpoint_last_interval",
                "Interval count covered by the most recent checkpoint",
            )?,
        })
    }
}

/// Reader → aligner messages.
enum Event {
    Connected,
    Frame {
        router_id: u32,
        interval: u64,
        snapshot: Box<IntervalSnapshot>,
        frame_bytes: u64,
    },
    Rejected(WireError),
    Disconnected,
}

/// One interval being assembled.
struct Pending {
    combined: IntervalSnapshot,
    routers: Vec<u32>,
    first_seen: Instant,
}

/// The collection daemon. [`Collector::bind`] starts it; the returned
/// [`CollectorHandle`] stops or awaits it.
pub struct Collector;

impl Collector {
    /// Binds `addr` and starts the acceptor and aligner threads.
    ///
    /// # Errors
    ///
    /// Fails on bind errors, invalid `cfg`, or (when `registry` is given)
    /// metric registration clashes.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cfg: HiFindConfig,
        collector_cfg: CollectorConfig,
        registry: Option<Registry>,
    ) -> Result<CollectorHandle, CollectError> {
        let telemetry = registry.as_ref().map(CollectorTelemetry::new).transpose()?;
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        // A small bound: senders (readers) block — and thus stop reading
        // their sockets — when detection falls behind, pushing the
        // backpressure onto TCP instead of collector memory.
        let (tx, rx) = std::sync::mpsc::sync_channel::<Event>(32);

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let max_payload = collector_cfg.max_payload_bytes;
            std::thread::spawn(move || accept_loop(listener, tx, shutdown, max_payload))
        };
        let aligner = {
            let shutdown = Arc::clone(&shutdown);
            let mut aligner = Aligner::new(cfg, collector_cfg, telemetry)?;
            std::thread::spawn(move || aligner.run(rx, shutdown))
        };
        Ok(CollectorHandle {
            local_addr,
            shutdown,
            acceptor,
            aligner,
        })
    }
}

/// A running collector.
pub struct CollectorHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: JoinHandle<()>,
    aligner: JoinHandle<CollectionReport>,
}

impl CollectorHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals shutdown and returns the report once both threads exit.
    /// Pending intervals are flushed (partial where needed) first.
    ///
    /// # Errors
    ///
    /// [`CollectError::WorkerPanic`] if a collector thread died; the run's
    /// report is lost with it.
    pub fn stop(self) -> Result<CollectionReport, CollectError> {
        self.shutdown.store(true, Ordering::SeqCst);
        self.join()
    }

    /// Waits for the natural end of the run: every expected router has
    /// connected, all have disconnected, and the linger window has passed
    /// with no reconnects.
    ///
    /// # Errors
    ///
    /// [`CollectError::WorkerPanic`] if a collector thread died; the run's
    /// report is lost with it.
    pub fn wait(self) -> Result<CollectionReport, CollectError> {
        self.join()
    }

    fn join(self) -> Result<CollectionReport, CollectError> {
        let aligner_outcome = self.aligner.join();
        // The aligner is done (or dead); release the acceptor either way
        // so a worker panic cannot leak a spinning accept loop.
        self.shutdown.store(true, Ordering::SeqCst);
        let acceptor_outcome = self.acceptor.join();
        let report = aligner_outcome.map_err(|_| CollectError::WorkerPanic("aligner"))?;
        acceptor_outcome.map_err(|_| CollectError::WorkerPanic("acceptor"))?;
        Ok(report)
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<Event>,
    shutdown: Arc<AtomicBool>,
    max_payload: u32,
) {
    let mut readers = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let tx = tx.clone();
                let shutdown = Arc::clone(&shutdown);
                readers.push(std::thread::spawn(move || {
                    reader_loop(stream, tx, shutdown, max_payload)
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => break,
        }
    }
    drop(tx);
    for r in readers {
        let _ = r.join();
    }
}

/// Reads one connection, slicing validated frames out of a growing buffer
/// so short read timeouts (needed for prompt shutdown) can never split a
/// frame.
fn reader_loop(
    mut stream: TcpStream,
    tx: SyncSender<Event>,
    shutdown: Arc<AtomicBool>,
    max_payload: u32,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    if tx.send(Event::Connected).is_err() {
        return;
    }
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 64 * 1024];
    'conn: while !shutdown.load(Ordering::SeqCst) {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                loop {
                    if buf.len() < HEADER_LEN {
                        break;
                    }
                    let Ok(header_bytes) = <[u8; HEADER_LEN]>::try_from(&buf[..HEADER_LEN]) else {
                        // Length is guaranteed by the guard above; bail
                        // rather than panic if that invariant ever breaks.
                        break 'conn;
                    };
                    let header = match wire::parse_header(&header_bytes, max_payload) {
                        Ok(h) => h,
                        Err(e) => {
                            // Framing is lost; drop the connection.
                            let _ = tx.send(Event::Rejected(e));
                            break 'conn;
                        }
                    };
                    let frame_len = HEADER_LEN + header.payload_len as usize;
                    if buf.len() < frame_len {
                        break;
                    }
                    let event = match wire::decode_payload(&header, &buf[HEADER_LEN..frame_len]) {
                        Ok(snapshot) => Event::Frame {
                            router_id: header.router_id,
                            interval: header.interval,
                            snapshot: Box::new(snapshot),
                            frame_bytes: frame_len as u64,
                        },
                        // Framing itself is intact (length checked out),
                        // so a bad payload skips one frame, not the
                        // connection.
                        Err(e) => Event::Rejected(e),
                    };
                    buf.drain(..frame_len);
                    if tx.send(event).is_err() {
                        return;
                    }
                }
            }
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    let _ = tx.send(Event::Disconnected);
}

struct Aligner {
    core: DetectionCore,
    cfg: CollectorConfig,
    fingerprint: u64,
    pending: BTreeMap<u64, Pending>,
    next_interval: u64,
    report: CollectionReport,
    telemetry: Option<CollectorTelemetry>,
    live_connections: usize,
    ever_connected: usize,
    last_disconnect: Option<Instant>,
}

impl Aligner {
    fn new(
        cfg: HiFindConfig,
        collector_cfg: CollectorConfig,
        telemetry: Option<CollectorTelemetry>,
    ) -> Result<Self, CollectError> {
        let mut report = CollectionReport::default();
        let core = match &collector_cfg.resume_from {
            Some(path) => {
                let ckpt = checkpoint::read_core_checkpoint(path)?;
                let core = DetectionCore::restore(cfg, &ckpt)?;
                report.resumed_at_interval = Some(core.intervals_processed());
                if let Some(t) = &telemetry {
                    t.checkpoint_resumed.inc();
                }
                if let Some(obs) = &collector_cfg.observer {
                    obs.resumed(core.intervals_processed(), path);
                }
                core
            }
            None => DetectionCore::new(cfg)?,
        };
        let next_interval = core.intervals_processed();
        Ok(Aligner {
            fingerprint: cfg.fingerprint(),
            core,
            cfg: collector_cfg,
            pending: BTreeMap::new(),
            next_interval,
            report,
            telemetry,
            live_connections: 0,
            ever_connected: 0,
            last_disconnect: None,
        })
    }

    fn run(&mut self, rx: Receiver<Event>, shutdown: Arc<AtomicBool>) -> CollectionReport {
        let tick = (self.cfg.straggler_deadline / 4).max(Duration::from_millis(10));
        loop {
            match rx.recv_timeout(tick) {
                Ok(event) => self.handle(event),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            self.flush_ready(false);
            if shutdown.load(Ordering::SeqCst) || self.finished() {
                break;
            }
        }
        // Drain whatever the readers already decoded, then flush every
        // pending interval — partial or not, detection never hangs.
        while let Ok(event) = rx.try_recv() {
            self.handle(event);
        }
        self.flush_ready(true);
        // One final checkpoint so a clean shutdown is always resumable
        // from its very last interval.
        self.maybe_checkpoint(true);
        std::mem::take(&mut self.report)
    }

    /// Writes a checkpoint if the policy says one is due (`force` writes
    /// whenever a policy exists). Failures are counted and logged; the
    /// run always continues.
    fn maybe_checkpoint(&mut self, force: bool) {
        let Some(policy) = &self.cfg.checkpoint else {
            return;
        };
        let due = force
            || (policy.every_intervals > 0
                && self.next_interval.is_multiple_of(policy.every_intervals));
        if !due {
            return;
        }
        match checkpoint::write_core_checkpoint(&policy.path, &self.core.checkpoint()) {
            Ok(()) => {
                self.report.checkpoints_written += 1;
                if let Some(t) = &self.telemetry {
                    t.checkpoint_written.inc();
                    t.checkpoint_last_interval
                        .set(i64::try_from(self.next_interval).unwrap_or(i64::MAX));
                }
                if let Some(obs) = &self.cfg.observer {
                    obs.checkpoint_written(self.next_interval, &policy.path);
                }
            }
            Err(e) => {
                eprintln!("[hifind-collect] checkpoint write failed: {e}");
                self.report.checkpoint_errors += 1;
                if let Some(t) = &self.telemetry {
                    t.checkpoint_write_errors.inc();
                }
            }
        }
    }

    /// Natural end of a run: the full fleet connected at some point, all
    /// of it left, and nobody reconnected for a linger window.
    fn finished(&self) -> bool {
        self.live_connections == 0
            && self.ever_connected >= self.cfg.expected_routers
            && self
                .last_disconnect
                .is_some_and(|t| t.elapsed() >= self.cfg.linger)
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Connected => {
                self.live_connections += 1;
                self.ever_connected += 1;
                if let Some(t) = &self.telemetry {
                    t.routers_connected.set(self.live_connections as i64);
                }
            }
            Event::Disconnected => {
                self.live_connections = self.live_connections.saturating_sub(1);
                if self.live_connections == 0 {
                    self.last_disconnect = Some(Instant::now());
                }
                if let Some(t) = &self.telemetry {
                    t.routers_connected.set(self.live_connections as i64);
                }
            }
            Event::Rejected(err) => {
                eprintln!("[hifind-collect] rejected frame: {err}");
                self.report.frames_rejected += 1;
                if let Some(t) = &self.telemetry {
                    t.frames_rejected.inc();
                }
                if let Some(obs) = &self.cfg.observer {
                    obs.frame_rejected(&err);
                }
            }
            Event::Frame {
                router_id,
                interval,
                snapshot,
                frame_bytes,
            } => self.handle_frame(router_id, interval, *snapshot, frame_bytes),
        }
    }

    fn handle_frame(
        &mut self,
        router_id: u32,
        interval: u64,
        snapshot: IntervalSnapshot,
        frame_bytes: u64,
    ) {
        if snapshot.fingerprint != self.fingerprint {
            // A router recording under different seeds or shapes: its
            // counters are meaningless here, reject them all.
            self.report.frames_rejected += 1;
            if let Some(t) = &self.telemetry {
                t.frames_rejected.inc();
            }
            if let Some(obs) = &self.cfg.observer {
                obs.frame_rejected(&WireError::FingerprintMismatch {
                    header: self.fingerprint,
                    payload: snapshot.fingerprint,
                });
            }
            return;
        }
        if interval < self.next_interval {
            self.late_frame();
            return;
        }
        let combine_start = Instant::now();
        match self.pending.entry(interval) {
            std::collections::btree_map::Entry::Vacant(slot) => {
                slot.insert(Pending {
                    combined: snapshot,
                    routers: vec![router_id],
                    first_seen: Instant::now(),
                });
            }
            std::collections::btree_map::Entry::Occupied(mut slot) => {
                let pending = slot.get_mut();
                if pending.routers.contains(&router_id) {
                    self.late_frame();
                    return;
                }
                if pending.combined.combine_into(&snapshot).is_err() {
                    // Unreachable given the fingerprint gate, but a typed
                    // rejection beats a poisoned aggregate.
                    self.report.frames_rejected += 1;
                    if let Some(t) = &self.telemetry {
                        t.frames_rejected.inc();
                    }
                    return;
                }
                pending.routers.push(router_id);
            }
        }
        self.report.frames_received += 1;
        self.report.bytes_received += frame_bytes;
        if !self.report.routers_seen.contains(&router_id) {
            self.report.routers_seen.push(router_id);
        }
        if let Some(t) = &self.telemetry {
            t.frames_received.inc();
            t.bytes_received.add(frame_bytes);
            t.combine_seconds.observe_duration(combine_start.elapsed());
        }
    }

    fn late_frame(&mut self) {
        self.report.frames_late += 1;
        if let Some(t) = &self.telemetry {
            t.frames_late.inc();
        }
    }

    /// Flushes every interval that is complete, expired, or forced out of
    /// the reorder window; with `drain` flushes everything pending.
    fn flush_ready(&mut self, drain: bool) {
        loop {
            let over_window = self.pending.len() as u64 > self.cfg.reorder_window;
            match self.pending.get(&self.next_interval) {
                Some(p) => {
                    let complete = p.routers.len() >= self.cfg.expected_routers;
                    let expired = p.first_seen.elapsed() >= self.cfg.straggler_deadline;
                    if !(complete || expired || over_window || drain) {
                        return;
                    }
                    let Some(p) = self.pending.remove(&self.next_interval) else {
                        return;
                    };
                    self.report.intervals_flushed += 1;
                    if complete {
                        self.report.complete_intervals += 1;
                    } else {
                        self.report.partial_intervals += 1;
                        let missing = (self.cfg.expected_routers - p.routers.len()) as u64;
                        self.report.straggler_slots += missing;
                        if let Some(t) = &self.telemetry {
                            t.straggler_slots.add(missing);
                        }
                    }
                    let outcome = self.core.process_snapshot(&p.combined);
                    if let Some(obs) = &self.cfg.observer {
                        obs.interval_closed(
                            self.next_interval,
                            &p.combined,
                            &outcome,
                            p.routers.len(),
                            self.cfg.expected_routers,
                        );
                    }
                }
                None => {
                    // A gap: only flush it once later intervals prove the
                    // stream moved past it (and the hold policy agrees).
                    let Some((&oldest, held)) = self.pending.iter().next() else {
                        return;
                    };
                    debug_assert!(oldest > self.next_interval);
                    let expired = held.first_seen.elapsed() >= self.cfg.straggler_deadline;
                    if !(expired || over_window || drain) {
                        return;
                    }
                    self.report.intervals_flushed += 1;
                    self.report.gap_intervals += 1;
                    self.report.straggler_slots += self.cfg.expected_routers as u64;
                    if let Some(t) = &self.telemetry {
                        t.straggler_slots.add(self.cfg.expected_routers as u64);
                    }
                    // No observation exists for this interval. Advancing
                    // the interval counter without stepping the
                    // forecasters keeps the EWMA baseline frozen at its
                    // pre-outage value — synthesizing an all-zero
                    // snapshot here would drag the forecast toward zero
                    // and spike the error on the first real interval
                    // after the outage (spurious alerts on resume).
                    let outcome = self.core.process_gap();
                    if let Some(obs) = &self.cfg.observer {
                        obs.gap_synthesized(self.next_interval, &outcome);
                    }
                }
            }
            self.next_interval += 1;
            self.report.log = self.core.log().clone();
            self.maybe_checkpoint(false);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AgentConfig, RouterAgent};
    use hifind_flow::Packet;

    fn local_collector(
        cfg: HiFindConfig,
        ccfg: CollectorConfig,
        registry: Option<Registry>,
    ) -> CollectorHandle {
        Collector::bind("127.0.0.1:0", cfg, ccfg, registry).expect("bind loopback")
    }

    #[test]
    fn single_agent_round_trip() {
        let cfg = HiFindConfig::small(11);
        let handle = local_collector(cfg, CollectorConfig::new(1), None);
        let addr = handle.local_addr().to_string();
        let mut agent = RouterAgent::new(addr, &cfg, AgentConfig::new(1)).unwrap();
        for iv in 0..3u64 {
            for i in 0..50u32 {
                agent.record(&Packet::syn(
                    iv,
                    [10, 0, 0, i as u8].into(),
                    2000,
                    [129, 105, 0, 1].into(),
                    80,
                ));
            }
            agent.end_interval();
        }
        agent.finish();
        let report = handle.wait().expect("collector threads");
        assert_eq!(report.frames_received, 3);
        assert_eq!(report.intervals_flushed, 3);
        assert_eq!(report.complete_intervals, 3);
        assert_eq!(report.partial_intervals, 0);
        assert_eq!(report.routers_seen, vec![1]);
        assert!(report.bytes_received > 0);
    }

    #[test]
    fn mis_seeded_router_is_rejected_not_combined() {
        let cfg = HiFindConfig::small(12);
        let rogue_cfg = HiFindConfig::small(13);
        let handle = local_collector(cfg, CollectorConfig::new(1), None);
        let addr = handle.local_addr().to_string();
        let mut rogue = RouterAgent::new(addr, &rogue_cfg, AgentConfig::new(9)).unwrap();
        rogue.end_interval();
        rogue.finish();
        let report = handle.wait().expect("collector threads");
        assert_eq!(report.frames_received, 0);
        assert_eq!(report.frames_rejected, 1);
        assert!(report.routers_seen.is_empty());
    }

    #[test]
    fn stop_flushes_pending_intervals() {
        let cfg = HiFindConfig::small(14);
        let mut ccfg = CollectorConfig::new(2);
        ccfg.straggler_deadline = Duration::from_secs(60); // never expires
        let handle = local_collector(cfg, ccfg, None);
        let addr = handle.local_addr().to_string();
        // Only one of the two expected routers ever reports.
        let mut agent = RouterAgent::new(addr, &cfg, AgentConfig::new(1)).unwrap();
        agent.end_interval();
        agent.finish();
        std::thread::sleep(Duration::from_millis(150));
        let report = handle.stop().expect("collector threads");
        assert_eq!(report.intervals_flushed, 1);
        assert_eq!(report.partial_intervals, 1);
        assert_eq!(report.straggler_slots, 1);
    }
}
