//! The central collection site: an event-driven connection engine and the
//! interval aligner that feeds [`DetectionCore`].
//!
//! # Threading
//!
//! * **engine** (one thread, [`crate::engine`]) — a readiness-driven poll
//!   loop over the listener, a wakeup pipe, and every downstream
//!   connection; per-connection buffers and frame state machines slice
//!   out complete frames, validate them ([`crate::wire`]), and forward
//!   decoded snapshots over a bounded channel — TCP backpressure, not
//!   unbounded queueing, absorbs a router that outpaces detection. No
//!   thread is spawned per connection, so fan-in scales to hundreds of
//!   routers per node.
//! * **aligner** — owns the [`DetectionCore`]. Frames for the same
//!   interval are combined *incrementally on arrival* (one accumulated
//!   snapshot per pending interval, never a list), so collector memory is
//!   bounded by the reorder window, not by router count. The alignment
//!   policy itself lives in [`crate::align`], shared with the mid-tier
//!   [`crate::aggregator`] so every tier degrades identically.
//!
//! # Graceful degradation
//!
//! The aligner never waits indefinitely for anyone. An interval flushes as
//! soon as every expected router reported; otherwise after
//! [`CollectorConfig::straggler_deadline`] it flushes with whatever quorum
//! arrived and the missing contributions are counted. An interval no
//! router reported (a gap while later intervals stream in) advances the
//! grid via [`DetectionCore::process_gap`]. A crashed router therefore
//! costs observability of its traffic slice — never liveness of the
//! pipeline.

use crate::align::{AlignPolicy, Flush, FlushKind, IntervalAligner, OfferOutcome};
use crate::checkpoint;
use crate::engine::{EngineConfig, EngineHandle, Event, PollEngine};
use crate::observer::CollectObserver;
use crate::wire::{self, WireError};
use crate::CollectError;
use hifind::pipeline::DetectionCore;
use hifind::report::AlertLog;
use hifind::{HiFindConfig, IntervalSnapshot};
use hifind_telemetry::{exponential_buckets, Counter, Gauge, Histogram, Registry, TelemetryError};
use serde::Serialize;
use std::net::{SocketAddr, TcpListener, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// When and where the aligner persists its detection state.
#[derive(Clone, Debug)]
pub struct CheckpointPolicy {
    /// Checkpoint file, overwritten atomically on every write.
    pub path: PathBuf,
    /// Write after every N flushed intervals (`0` = only at run end).
    pub every_intervals: u64,
}

impl CheckpointPolicy {
    /// Checkpoints to `path` every 8 flushed intervals.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        CheckpointPolicy {
            path: path.into(),
            every_intervals: 8,
        }
    }
}

/// Collection-site policy knobs.
#[derive(Clone)]
pub struct CollectorConfig {
    /// Routers expected to report each interval. Detection flushes early
    /// when all of them did; the deadline below covers the rest.
    pub expected_routers: usize,
    /// How long to hold an incomplete interval open once it has any data
    /// (or once later intervals prove it was skipped) before flushing on
    /// quorum.
    pub straggler_deadline: Duration,
    /// Maximum intervals held pending at once; beyond this the oldest is
    /// force-flushed regardless of deadline (bounds memory under heavy
    /// inter-router skew).
    pub reorder_window: u64,
    /// Per-frame payload cap handed to the wire layer.
    pub max_payload_bytes: u32,
    /// After every expected router has connected and all have
    /// disconnected, how long to wait for reconnects before finishing.
    pub linger: Duration,
    /// Periodic detection-state checkpointing (plus one final write at run
    /// end). Write failures are counted, never fatal.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Resume detection state from this checkpoint file at startup. A
    /// missing, corrupt, or mis-fingerprinted file fails
    /// [`Collector::bind`] with a typed error rather than silently
    /// starting fresh.
    pub resume_from: Option<PathBuf>,
    /// Hooks invoked at collection-plane transitions (interval close, gap
    /// synthesis, checkpoint write/resume, frame rejection); `None`
    /// observes nothing. Callbacks run inline on the aligner thread, so
    /// they must stay cheap.
    pub observer: Option<Arc<dyn CollectObserver>>,
    /// Codec ids accepted from downstream agents, in preference order.
    /// The default speaks both v2 and v1; `vec![wire::CODEC_V1]` makes
    /// this node byte-for-byte a legacy v1 collector (hellos rejected as
    /// bad magic), which is how cross-version interop is tested.
    pub codecs: Vec<u8>,
}

impl std::fmt::Debug for CollectorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectorConfig")
            .field("expected_routers", &self.expected_routers)
            .field("straggler_deadline", &self.straggler_deadline)
            .field("reorder_window", &self.reorder_window)
            .field("max_payload_bytes", &self.max_payload_bytes)
            .field("linger", &self.linger)
            .field("checkpoint", &self.checkpoint)
            .field("resume_from", &self.resume_from)
            .field("observer", &self.observer.as_ref().map(|_| "Some(..)"))
            .field("codecs", &self.codecs)
            .finish()
    }
}

impl CollectorConfig {
    /// Sensible defaults for `expected_routers` reporters.
    pub fn new(expected_routers: usize) -> Self {
        CollectorConfig {
            expected_routers: expected_routers.max(1),
            straggler_deadline: Duration::from_secs(2),
            reorder_window: 8,
            max_payload_bytes: wire::DEFAULT_MAX_PAYLOAD,
            linger: Duration::from_millis(400),
            checkpoint: None,
            resume_from: None,
            observer: None,
            codecs: vec![wire::CODEC_V2, wire::CODEC_V1],
        }
    }
}

/// What one collection run saw and decided.
#[derive(Clone, Debug, Default, Serialize)]
pub struct CollectionReport {
    /// Intervals fed to the detection pipeline.
    pub intervals_flushed: u64,
    /// Intervals with every expected router reporting.
    pub complete_intervals: u64,
    /// Intervals flushed on quorum after the straggler deadline.
    pub partial_intervals: u64,
    /// Intervals no router reported (synthesized as all-zero).
    pub gap_intervals: u64,
    /// Missing router-interval contributions across partial intervals.
    pub straggler_slots: u64,
    /// Valid frames combined into intervals.
    pub frames_received: u64,
    /// Frames for intervals already flushed, and duplicate
    /// router-interval frames (both dropped).
    pub frames_late: u64,
    /// Frames rejected for wire/codec/fingerprint violations.
    pub frames_rejected: u64,
    /// Payload + header bytes of valid frames.
    pub bytes_received: u64,
    /// Valid frames that arrived in the dense v1 codec.
    pub frames_codec_v1: u64,
    /// Valid v2 keyframes.
    pub frames_v2_keyframes: u64,
    /// Valid v2 delta frames.
    pub frames_v2_deltas: u64,
    /// Distinct router ids that contributed at least one valid frame.
    pub routers_seen: Vec<u32>,
    /// Checkpoints successfully written this run.
    pub checkpoints_written: u64,
    /// Checkpoint writes that failed (the run continues regardless).
    pub checkpoint_errors: u64,
    /// Interval the run resumed at, when started with
    /// [`CollectorConfig::resume_from`].
    pub resumed_at_interval: Option<u64>,
    /// The full alert log of the aggregated detection run.
    pub log: AlertLog,
}

/// Best-effort collection-tier metrics (`hifind_collect_*`), shared with
/// the mid-tier aggregator so every tier exports the same series.
pub(crate) struct CollectorTelemetry {
    pub(crate) routers_connected: Arc<Gauge>,
    pub(crate) frames_received: Arc<Counter>,
    pub(crate) frames_late: Arc<Counter>,
    pub(crate) frames_rejected: Arc<Counter>,
    pub(crate) straggler_slots: Arc<Counter>,
    pub(crate) bytes_received: Arc<Counter>,
    pub(crate) frames_codec_v1: Arc<Counter>,
    pub(crate) frames_v2_keyframes: Arc<Counter>,
    pub(crate) frames_v2_deltas: Arc<Counter>,
    pub(crate) combine_seconds: Arc<Histogram>,
    pub(crate) checkpoint_written: Arc<Counter>,
    pub(crate) checkpoint_write_errors: Arc<Counter>,
    pub(crate) checkpoint_resumed: Arc<Counter>,
    pub(crate) checkpoint_last_interval: Arc<Gauge>,
}

impl CollectorTelemetry {
    pub(crate) fn new(registry: &Registry) -> Result<Self, TelemetryError> {
        Ok(CollectorTelemetry {
            routers_connected: registry.gauge(
                "hifind_collect_routers_connected",
                "Router agent connections currently open",
            )?,
            frames_received: registry.counter(
                "hifind_collect_frames_received_total",
                "Valid snapshot frames combined into intervals",
            )?,
            frames_late: registry.counter(
                "hifind_collect_frames_late_total",
                "Frames dropped as late or duplicate",
            )?,
            frames_rejected: registry.counter(
                "hifind_collect_frames_rejected_total",
                "Frames rejected for wire, codec or fingerprint violations",
            )?,
            straggler_slots: registry.counter(
                "hifind_collect_straggler_slots_total",
                "Missing router-interval contributions at flush time",
            )?,
            bytes_received: registry.counter(
                "hifind_collect_bytes_received_total",
                "Bytes of valid frames received",
            )?,
            frames_codec_v1: registry.counter(
                "hifind_collect_frames_codec_v1_total",
                "Valid frames received in the dense v1 codec",
            )?,
            frames_v2_keyframes: registry.counter(
                "hifind_collect_frames_v2_keyframes_total",
                "Valid codec-v2 keyframes received",
            )?,
            frames_v2_deltas: registry.counter(
                "hifind_collect_frames_v2_deltas_total",
                "Valid codec-v2 delta frames received",
            )?,
            combine_seconds: registry.histogram(
                "hifind_collect_combine_seconds",
                "Latency of combining one router snapshot into its interval",
                exponential_buckets(1e-6, 4.0, 11),
            )?,
            checkpoint_written: registry.counter(
                "hifind_checkpoint_written_total",
                "Detection-state checkpoints written successfully",
            )?,
            checkpoint_write_errors: registry.counter(
                "hifind_checkpoint_write_errors_total",
                "Detection-state checkpoint writes that failed",
            )?,
            checkpoint_resumed: registry.counter(
                "hifind_checkpoint_resumed_total",
                "Collector starts that resumed from a checkpoint",
            )?,
            checkpoint_last_interval: registry.gauge(
                "hifind_checkpoint_last_interval",
                "Interval count covered by the most recent checkpoint",
            )?,
        })
    }
}

/// The collection daemon. [`Collector::bind`] starts it; the returned
/// [`CollectorHandle`] stops or awaits it.
pub struct Collector;

impl Collector {
    /// Binds `addr` and starts the engine and aligner threads.
    ///
    /// # Errors
    ///
    /// Fails on bind errors, invalid `cfg`, or (when `registry` is given)
    /// metric registration clashes.
    pub fn bind(
        addr: impl ToSocketAddrs,
        cfg: HiFindConfig,
        collector_cfg: CollectorConfig,
        registry: Option<Registry>,
    ) -> Result<CollectorHandle, CollectError> {
        let telemetry = registry.as_ref().map(CollectorTelemetry::new).transpose()?;
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        // A small bound: the engine blocks — and thus stops reading its
        // sockets — when detection falls behind, pushing the backpressure
        // onto TCP instead of collector memory.
        let (tx, rx) = std::sync::mpsc::sync_channel::<Event>(32);
        let engine = PollEngine::spawn(
            listener,
            tx,
            Arc::clone(&shutdown),
            EngineConfig {
                max_payload: collector_cfg.max_payload_bytes,
                tick: Duration::from_millis(50),
                codecs: collector_cfg.codecs.clone(),
            },
        )?;
        let aligner = {
            let shutdown = Arc::clone(&shutdown);
            let mut aligner = Aligner::new(cfg, collector_cfg, telemetry)?;
            std::thread::spawn(move || aligner.run(rx, shutdown))
        };
        Ok(CollectorHandle {
            local_addr,
            shutdown,
            engine,
            aligner,
        })
    }
}

/// A running collector.
pub struct CollectorHandle {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    engine: EngineHandle,
    aligner: JoinHandle<CollectionReport>,
}

impl CollectorHandle {
    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Signals shutdown and returns the report once both threads exit.
    /// Pending intervals are flushed (partial where needed) first. The
    /// engine's wakeup pipe makes the stop prompt — no waiting out an
    /// accept or read timeout tick.
    ///
    /// # Errors
    ///
    /// [`CollectError::WorkerPanic`] if a collector thread died; the run's
    /// report is lost with it.
    pub fn stop(self) -> Result<CollectionReport, CollectError> {
        self.shutdown.store(true, Ordering::SeqCst);
        self.engine.wake();
        self.join()
    }

    /// Waits for the natural end of the run: every expected router has
    /// connected, all have disconnected, and the linger window has passed
    /// with no reconnects.
    ///
    /// # Errors
    ///
    /// [`CollectError::WorkerPanic`] if a collector thread died; the run's
    /// report is lost with it.
    pub fn wait(self) -> Result<CollectionReport, CollectError> {
        self.join()
    }

    fn join(self) -> Result<CollectionReport, CollectError> {
        let aligner_outcome = self.aligner.join();
        // The aligner is done (or dead); release the engine either way so
        // a worker panic cannot leak a spinning poll loop.
        self.shutdown.store(true, Ordering::SeqCst);
        self.engine.wake();
        let engine_outcome = self.engine.join();
        let report = aligner_outcome.map_err(|_| CollectError::WorkerPanic("aligner"))?;
        engine_outcome?;
        Ok(report)
    }
}

struct Aligner {
    core: DetectionCore,
    cfg: CollectorConfig,
    fingerprint: u64,
    aligner: IntervalAligner,
    report: CollectionReport,
    telemetry: Option<CollectorTelemetry>,
    live_connections: usize,
    ever_connected: usize,
    last_disconnect: Option<Instant>,
}

impl Aligner {
    fn new(
        cfg: HiFindConfig,
        collector_cfg: CollectorConfig,
        telemetry: Option<CollectorTelemetry>,
    ) -> Result<Self, CollectError> {
        let mut report = CollectionReport::default();
        let core = match &collector_cfg.resume_from {
            Some(path) => {
                let ckpt = checkpoint::read_core_checkpoint(path)?;
                let core = DetectionCore::restore(cfg, &ckpt)?;
                report.resumed_at_interval = Some(core.intervals_processed());
                if let Some(t) = &telemetry {
                    t.checkpoint_resumed.inc();
                }
                if let Some(obs) = &collector_cfg.observer {
                    obs.resumed(core.intervals_processed(), path);
                }
                core
            }
            None => DetectionCore::new(cfg)?,
        };
        let aligner = IntervalAligner::new(
            AlignPolicy {
                expected: collector_cfg.expected_routers,
                straggler_deadline: collector_cfg.straggler_deadline,
                reorder_window: collector_cfg.reorder_window,
            },
            core.intervals_processed(),
        );
        Ok(Aligner {
            fingerprint: cfg.fingerprint(),
            core,
            cfg: collector_cfg,
            aligner,
            report,
            telemetry,
            live_connections: 0,
            ever_connected: 0,
            last_disconnect: None,
        })
    }

    fn run(&mut self, rx: Receiver<Event>, shutdown: Arc<AtomicBool>) -> CollectionReport {
        // The tick bounds two latencies while the channel is quiet:
        // noticing a straggler deadline and noticing natural finish
        // (everyone disconnected + linger). Cap it so a long straggler
        // deadline cannot leave a finished run parked for minutes.
        let tick = (self.cfg.straggler_deadline / 4)
            .clamp(Duration::from_millis(10), Duration::from_secs(1));
        loop {
            match rx.recv_timeout(tick) {
                Ok(event) => self.handle(event),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
            self.flush_ready(false);
            if shutdown.load(Ordering::SeqCst) || self.finished() {
                break;
            }
        }
        // Drain whatever the engine already decoded, then flush every
        // pending interval — partial or not, detection never hangs.
        while let Ok(event) = rx.try_recv() {
            self.handle(event);
        }
        self.flush_ready(true);
        // One final checkpoint so a clean shutdown is always resumable
        // from its very last interval.
        self.maybe_checkpoint(true);
        std::mem::take(&mut self.report)
    }

    /// Writes a checkpoint if the policy says one is due (`force` writes
    /// whenever a policy exists). Failures are counted and logged; the
    /// run always continues.
    fn maybe_checkpoint(&mut self, force: bool) {
        let Some(policy) = &self.cfg.checkpoint else {
            return;
        };
        let next_interval = self.aligner.next_interval();
        let due = force
            || (policy.every_intervals > 0 && next_interval.is_multiple_of(policy.every_intervals));
        if !due {
            return;
        }
        match checkpoint::write_core_checkpoint(&policy.path, &self.core.checkpoint()) {
            Ok(()) => {
                self.report.checkpoints_written += 1;
                if let Some(t) = &self.telemetry {
                    t.checkpoint_written.inc();
                    t.checkpoint_last_interval
                        .set(i64::try_from(next_interval).unwrap_or(i64::MAX));
                }
                if let Some(obs) = &self.cfg.observer {
                    obs.checkpoint_written(next_interval, &policy.path);
                }
            }
            Err(e) => {
                eprintln!("[hifind-collect] checkpoint write failed: {e}");
                self.report.checkpoint_errors += 1;
                if let Some(t) = &self.telemetry {
                    t.checkpoint_write_errors.inc();
                }
            }
        }
    }

    /// Natural end of a run: the full fleet connected at some point, all
    /// of it left, and nobody reconnected for a linger window.
    fn finished(&self) -> bool {
        self.live_connections == 0
            && self.ever_connected >= self.cfg.expected_routers
            && self
                .last_disconnect
                .is_some_and(|t| t.elapsed() >= self.cfg.linger)
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::Connected => {
                self.live_connections += 1;
                self.ever_connected += 1;
                if let Some(t) = &self.telemetry {
                    t.routers_connected.set(self.live_connections as i64);
                }
            }
            Event::Disconnected => {
                self.live_connections = self.live_connections.saturating_sub(1);
                if self.live_connections == 0 {
                    self.last_disconnect = Some(Instant::now());
                }
                if let Some(t) = &self.telemetry {
                    t.routers_connected.set(self.live_connections as i64);
                }
            }
            Event::Rejected(err) => {
                eprintln!("[hifind-collect] rejected frame: {err}");
                self.report.frames_rejected += 1;
                if let Some(t) = &self.telemetry {
                    t.frames_rejected.inc();
                }
                if let Some(obs) = &self.cfg.observer {
                    obs.frame_rejected(&err);
                }
            }
            Event::Frame {
                router_id,
                interval,
                snapshot,
                frame_bytes,
                codec,
                delta,
            } => self.handle_frame(router_id, interval, *snapshot, frame_bytes, codec, delta),
        }
    }

    fn handle_frame(
        &mut self,
        router_id: u32,
        interval: u64,
        snapshot: IntervalSnapshot,
        frame_bytes: u64,
        codec: u8,
        delta: bool,
    ) {
        if snapshot.fingerprint != self.fingerprint {
            // A router recording under different seeds or shapes: its
            // counters are meaningless here, reject them all.
            self.report.frames_rejected += 1;
            if let Some(t) = &self.telemetry {
                t.frames_rejected.inc();
            }
            if let Some(obs) = &self.cfg.observer {
                obs.frame_rejected(&WireError::FingerprintMismatch {
                    header: self.fingerprint,
                    payload: snapshot.fingerprint,
                });
            }
            return;
        }
        let combine_start = Instant::now();
        match self.aligner.offer(router_id, interval, snapshot) {
            OfferOutcome::Accepted => {
                self.report.frames_received += 1;
                self.report.bytes_received += frame_bytes;
                match (codec, delta) {
                    (wire::CODEC_V2, true) => self.report.frames_v2_deltas += 1,
                    (wire::CODEC_V2, false) => self.report.frames_v2_keyframes += 1,
                    _ => self.report.frames_codec_v1 += 1,
                }
                if !self.report.routers_seen.contains(&router_id) {
                    self.report.routers_seen.push(router_id);
                }
                if let Some(t) = &self.telemetry {
                    t.frames_received.inc();
                    t.bytes_received.add(frame_bytes);
                    match (codec, delta) {
                        (wire::CODEC_V2, true) => t.frames_v2_deltas.inc(),
                        (wire::CODEC_V2, false) => t.frames_v2_keyframes.inc(),
                        _ => t.frames_codec_v1.inc(),
                    }
                    t.combine_seconds.observe_duration(combine_start.elapsed());
                }
            }
            OfferOutcome::Late | OfferOutcome::Duplicate => self.late_frame(),
            OfferOutcome::CombineFailed => {
                // Unreachable given the fingerprint gate, but a typed
                // rejection beats a poisoned aggregate.
                self.report.frames_rejected += 1;
                if let Some(t) = &self.telemetry {
                    t.frames_rejected.inc();
                }
            }
        }
    }

    fn late_frame(&mut self) {
        self.report.frames_late += 1;
        if let Some(t) = &self.telemetry {
            t.frames_late.inc();
        }
    }

    /// Flushes every interval the aligner deems ready; with `drain`
    /// flushes everything pending.
    fn flush_ready(&mut self, drain: bool) {
        while let Some(flush) = self.aligner.pop_ready(drain) {
            self.report.intervals_flushed += 1;
            match &flush.kind {
                FlushKind::Complete => self.report.complete_intervals += 1,
                FlushKind::Partial { missing } => {
                    self.report.partial_intervals += 1;
                    self.report.straggler_slots += missing;
                    if let Some(t) = &self.telemetry {
                        t.straggler_slots.add(*missing);
                    }
                }
                FlushKind::Gap => {
                    self.report.gap_intervals += 1;
                    self.report.straggler_slots += self.cfg.expected_routers as u64;
                    if let Some(t) = &self.telemetry {
                        t.straggler_slots.add(self.cfg.expected_routers as u64);
                    }
                }
            }
            self.process_flush(&flush);
            self.report.log = self.core.log().clone();
            self.maybe_checkpoint(false);
        }
    }

    fn process_flush(&mut self, flush: &Flush) {
        match &flush.payload {
            Some((combined, contributors)) => {
                let outcome = self.core.process_snapshot(combined);
                if let Some(obs) = &self.cfg.observer {
                    obs.interval_closed(
                        flush.interval,
                        combined,
                        &outcome,
                        *contributors,
                        self.cfg.expected_routers,
                    );
                }
            }
            None => {
                // No observation exists for this interval. Advancing the
                // interval counter without stepping the forecasters keeps
                // the EWMA baseline frozen at its pre-outage value —
                // synthesizing an all-zero snapshot here would drag the
                // forecast toward zero and spike the error on the first
                // real interval after the outage (spurious alerts on
                // resume).
                let outcome = self.core.process_gap();
                if let Some(obs) = &self.cfg.observer {
                    obs.gap_synthesized(flush.interval, &outcome);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::{AgentConfig, RouterAgent};
    use hifind_flow::Packet;
    use std::net::TcpStream;

    fn local_collector(
        cfg: HiFindConfig,
        ccfg: CollectorConfig,
        registry: Option<Registry>,
    ) -> CollectorHandle {
        Collector::bind("127.0.0.1:0", cfg, ccfg, registry).expect("bind loopback")
    }

    #[test]
    fn single_agent_round_trip() {
        let cfg = HiFindConfig::small(11);
        let handle = local_collector(cfg, CollectorConfig::new(1), None);
        let addr = handle.local_addr().to_string();
        let mut agent = RouterAgent::new(addr, &cfg, AgentConfig::new(1)).unwrap();
        for iv in 0..3u64 {
            for i in 0..50u32 {
                agent.record(&Packet::syn(
                    iv,
                    [10, 0, 0, i as u8].into(),
                    2000,
                    [129, 105, 0, 1].into(),
                    80,
                ));
            }
            agent.end_interval();
        }
        agent.finish();
        let report = handle.wait().expect("collector threads");
        assert_eq!(report.frames_received, 3);
        assert_eq!(report.intervals_flushed, 3);
        assert_eq!(report.complete_intervals, 3);
        assert_eq!(report.partial_intervals, 0);
        assert_eq!(report.routers_seen, vec![1]);
        assert!(report.bytes_received > 0);
    }

    #[test]
    fn mis_seeded_router_is_rejected_not_combined() {
        let cfg = HiFindConfig::small(12);
        let rogue_cfg = HiFindConfig::small(13);
        let handle = local_collector(cfg, CollectorConfig::new(1), None);
        let addr = handle.local_addr().to_string();
        let mut rogue = RouterAgent::new(addr, &rogue_cfg, AgentConfig::new(9)).unwrap();
        rogue.end_interval();
        rogue.finish();
        let report = handle.wait().expect("collector threads");
        assert_eq!(report.frames_received, 0);
        assert_eq!(report.frames_rejected, 1);
        assert!(report.routers_seen.is_empty());
    }

    #[test]
    fn stop_flushes_pending_intervals() {
        let cfg = HiFindConfig::small(14);
        let mut ccfg = CollectorConfig::new(2);
        ccfg.straggler_deadline = Duration::from_secs(60); // never expires
        let handle = local_collector(cfg, ccfg, None);
        let addr = handle.local_addr().to_string();
        // Only one of the two expected routers ever reports.
        let mut agent = RouterAgent::new(addr, &cfg, AgentConfig::new(1)).unwrap();
        agent.end_interval();
        agent.finish();
        std::thread::sleep(Duration::from_millis(150));
        let report = handle.stop().expect("collector threads");
        assert_eq!(report.intervals_flushed, 1);
        assert_eq!(report.partial_intervals, 1);
        assert_eq!(report.straggler_slots, 1);
    }

    #[test]
    fn stop_is_prompt_even_with_an_idle_connection_open() {
        let cfg = HiFindConfig::small(15);
        let mut ccfg = CollectorConfig::new(2);
        // Long deadlines everywhere: only the wakeup pipe can explain a
        // fast stop.
        ccfg.straggler_deadline = Duration::from_secs(60);
        ccfg.linger = Duration::from_secs(60);
        let handle = local_collector(cfg, ccfg, None);
        let idle = TcpStream::connect(handle.local_addr()).expect("connect");
        std::thread::sleep(Duration::from_millis(100));
        let start = Instant::now();
        let report = handle.stop().expect("collector threads");
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "stop took {:?}; the engine wakeup is not prompt",
            start.elapsed()
        );
        assert_eq!(report.intervals_flushed, 0);
        drop(idle);
    }
}
