//! Durable, versioned checkpoints for detection and agent state.
//!
//! A restarted collection site must resume exactly where it stopped:
//! forecaster baselines, flooding persistence streaks, the deduplicated
//! alert log, and the interval counter all survive in a
//! [`hifind::CoreCheckpoint`]. This module gives that state an on-disk
//! form with the same defensive posture as the wire layer ([`crate::wire`]):
//! a magic + version + CRC32 container around a varint payload, every read
//! bounds-checked, every declared size capped before allocation, and every
//! failure a typed [`CheckpointError`] — a torn or corrupted file can never
//! panic the collector, it simply refuses to resume.
//!
//! Files are written atomically (temp file + rename in the target
//! directory), so a crash mid-write leaves the previous checkpoint intact.

use crate::codec::{len_u64, put_u64, put_uvarint, unzigzag, zigzag, Reader};
use crate::ship::BacklogFrame;
use crate::wire::{self, crc32};
use crate::CodecError;
use hifind::fp_filter::FloodStreak;
use hifind::report::{Alert, AlertKind};
use hifind::CoreCheckpoint;
use hifind_flow::Ip4;
use hifind_forecast::GridEwmaState;
use std::io::Write;
use std::path::Path;

/// Magic of a detection-core checkpoint file.
pub const CORE_MAGIC: [u8; 4] = *b"HFC1";

/// Magic of a router-agent checkpoint file.
pub const AGENT_MAGIC: [u8; 4] = *b"HFA1";

/// Magic of an interval-history segment file (written by `hifind-obsv`,
/// same container framing as checkpoints).
pub const HISTORY_MAGIC: [u8; 4] = *b"HFH1";

/// Checkpoint container format version written by core checkpoints and
/// history segments (and by pre-v2 agent checkpoints).
pub const CHECKPOINT_VERSION: u16 = 1;

/// Container version of agent checkpoints whose backlog entries carry a
/// wire-codec tag ([`wire::CODEC_V1`] / [`wire::CODEC_V2`]). Version-1
/// agent files still decode — every untagged frame is a v1 frame, which
/// is all a pre-upgrade agent could have queued.
pub const CHECKPOINT_VERSION_2: u16 = 2;

/// Container header: magic(4) + version(2) + reserved(2) + fingerprint(8)
/// + payload_len(4) + crc32(4).
pub const CONTAINER_HEADER_LEN: usize = 24;

/// Caps on declared element counts, applied before any allocation.
const MAX_FORECASTERS: u64 = 64;
const MAX_GRID_CELLS: u64 = 1 << 24;
const MAX_STREAKS: u64 = 1 << 20;
const MAX_ALERTS: u64 = 1 << 20;
const MAX_BACKLOG_FRAMES: u64 = 1 << 16;
const MAX_FRAME_BYTES: u64 = 1 << 30;

/// Why a checkpoint could not be written or read.
#[derive(Debug)]
pub enum CheckpointError {
    /// Filesystem failure (open, read, write, rename).
    Io(std::io::Error),
    /// The file does not start with a checkpoint magic.
    Magic([u8; 4]),
    /// The file is a checkpoint of the other kind (core vs. agent).
    WrongKind {
        /// Magic the caller needed.
        expected: [u8; 4],
        /// Magic found in the file.
        got: [u8; 4],
    },
    /// Unsupported container version.
    Version(u16),
    /// The container header declares more payload than the file holds.
    TruncatedContainer {
        /// Bytes the header declared.
        declared: usize,
        /// Bytes actually present after the header.
        got: usize,
    },
    /// The payload CRC32 does not match the header.
    Crc {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC of the payload as read.
        got: u32,
    },
    /// A structurally malformed payload (truncation, overflow, caps).
    Payload(CodecError),
    /// A payload field holds a semantically invalid value.
    Invalid {
        /// The field that failed validation.
        at: &'static str,
        /// What was wrong with it.
        detail: String,
    },
    /// The checkpoint was taken under a different configuration
    /// fingerprint than the caller's.
    FingerprintMismatch {
        /// Fingerprint of the resuming configuration.
        expected: u64,
        /// Fingerprint recorded in the checkpoint.
        got: u64,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o error: {e}"),
            CheckpointError::Magic(m) => write!(f, "not a checkpoint file (magic {m:02x?})"),
            CheckpointError::WrongKind { expected, got } => write!(
                f,
                "checkpoint kind mismatch: wanted magic {expected:02x?}, file has {got:02x?}"
            ),
            CheckpointError::Version(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::TruncatedContainer { declared, got } => write!(
                f,
                "checkpoint truncated: header declares {declared} payload bytes, file has {got}"
            ),
            CheckpointError::Crc { expected, got } => write!(
                f,
                "checkpoint CRC mismatch: header {expected:#010x}, payload {got:#010x}"
            ),
            CheckpointError::Payload(e) => write!(f, "malformed checkpoint payload: {e}"),
            CheckpointError::Invalid { at, detail } => {
                write!(f, "invalid checkpoint field {at}: {detail}")
            }
            CheckpointError::FingerprintMismatch { expected, got } => write!(
                f,
                "checkpoint fingerprint {got:#018x} does not match configuration {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<CodecError> for CheckpointError {
    fn from(e: CodecError) -> Self {
        CheckpointError::Payload(e)
    }
}

/// The durable state of one [`crate::RouterAgent`]: identity, interval
/// counter, and the encoded frames still queued for the collector (so a
/// restarted agent re-ships exactly what the dead one still owed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AgentCheckpoint {
    /// Record-plane configuration fingerprint the agent recorded under.
    pub fingerprint: u64,
    /// Router id used in frame headers.
    pub router_id: u32,
    /// Intervals ended so far (the next frame's interval index).
    pub interval: u64,
    /// Backlogged wire frames (standalone, never deltas), oldest first,
    /// each tagged with the codec its bytes are encoded in.
    pub backlog: Vec<BacklogFrame>,
}

/// Wraps an encoded payload in the version-1 CRC-checked container shared
/// by checkpoints and history segments.
pub fn encode_container(magic: [u8; 4], fingerprint: u64, payload: &[u8]) -> Vec<u8> {
    encode_container_versioned(magic, CHECKPOINT_VERSION, fingerprint, payload)
}

/// Like [`encode_container`] with an explicit container version.
pub fn encode_container_versioned(
    magic: [u8; 4],
    version: u16,
    fingerprint: u64,
    payload: &[u8],
) -> Vec<u8> {
    let mut out = Vec::with_capacity(CONTAINER_HEADER_LEN + payload.len());
    out.extend_from_slice(&magic);
    out.extend_from_slice(&version.to_le_bytes());
    out.extend_from_slice(&[0u8; 2]);
    out.extend_from_slice(&fingerprint.to_le_bytes());
    // A checkpoint beyond u32::MAX payload bytes is unconstructible with
    // the in-memory caps above; saturate so the CRC check (over the real
    // payload) still rejects the file instead of truncating silently.
    let payload_len = u32::try_from(payload.len()).unwrap_or(u32::MAX);
    out.extend_from_slice(&payload_len.to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validates the container and hands back `(fingerprint, payload)`.
///
/// A magic outside the known container family is [`CheckpointError::Magic`]
/// (not a container at all); a known magic other than `expected_magic` is
/// [`CheckpointError::WrongKind`] (a container of the wrong flavour).
pub fn decode_container(
    expected_magic: [u8; 4],
    bytes: &[u8],
) -> Result<(u64, &[u8]), CheckpointError> {
    let (version, fingerprint, payload) = decode_container_versioned(expected_magic, bytes)?;
    if version != CHECKPOINT_VERSION {
        return Err(CheckpointError::Version(version));
    }
    Ok((fingerprint, payload))
}

/// Like [`decode_container`], but accepts any known container version and
/// hands it back for the caller to dispatch on.
pub fn decode_container_versioned(
    expected_magic: [u8; 4],
    bytes: &[u8],
) -> Result<(u16, u64, &[u8]), CheckpointError> {
    let Some(header) = bytes.get(..CONTAINER_HEADER_LEN) else {
        return Err(CheckpointError::TruncatedContainer {
            declared: CONTAINER_HEADER_LEN,
            got: bytes.len(),
        });
    };
    let field = |range: std::ops::Range<usize>| -> &[u8] { &header[range] };
    let magic: [u8; 4] = field(0..4).try_into().unwrap_or([0; 4]);
    if magic != CORE_MAGIC && magic != AGENT_MAGIC && magic != HISTORY_MAGIC {
        return Err(CheckpointError::Magic(magic));
    }
    if magic != expected_magic {
        return Err(CheckpointError::WrongKind {
            expected: expected_magic,
            got: magic,
        });
    }
    let version = u16::from_le_bytes(field(4..6).try_into().unwrap_or([0; 2]));
    if version != CHECKPOINT_VERSION && version != CHECKPOINT_VERSION_2 {
        return Err(CheckpointError::Version(version));
    }
    let fingerprint = u64::from_le_bytes(field(8..16).try_into().unwrap_or([0; 8]));
    let declared = u32::from_le_bytes(field(16..20).try_into().unwrap_or([0; 4]));
    let expected_crc = u32::from_le_bytes(field(20..24).try_into().unwrap_or([0; 4]));
    let payload = &bytes[CONTAINER_HEADER_LEN..];
    let declared_len = usize::try_from(declared).unwrap_or(usize::MAX);
    if payload.len() != declared_len {
        return Err(CheckpointError::TruncatedContainer {
            declared: declared_len,
            got: payload.len(),
        });
    }
    let got_crc = crc32(payload);
    if got_crc != expected_crc {
        return Err(CheckpointError::Crc {
            expected: expected_crc,
            got: got_crc,
        });
    }
    Ok((version, fingerprint, payload))
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

fn encode_forecaster(out: &mut Vec<u8>, state: &GridEwmaState) {
    put_f64(out, state.alpha);
    let mut flags = 0u8;
    if state.shape.is_some() {
        flags |= 1;
    }
    if state.prev_observed.is_some() {
        flags |= 2;
    }
    if state.prev_forecast.is_some() {
        flags |= 4;
    }
    out.push(flags);
    if let Some((stages, buckets)) = state.shape {
        put_uvarint(out, len_u64(stages));
        put_uvarint(out, len_u64(buckets));
    }
    for vec in [&state.prev_observed, &state.prev_forecast]
        .into_iter()
        .flatten()
    {
        put_uvarint(out, len_u64(vec.len()));
        for &v in vec {
            put_f64(out, v);
        }
    }
}

fn decode_f64_vec(r: &mut Reader<'_>, at: &'static str) -> Result<Vec<f64>, CheckpointError> {
    let len = r.uvarint(at)?;
    let len = r.counted(at, len, MAX_GRID_CELLS)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(f64::from_bits(r.u64(at)?));
    }
    Ok(out)
}

fn decode_forecaster(r: &mut Reader<'_>) -> Result<GridEwmaState, CheckpointError> {
    let alpha = f64::from_bits(r.u64("forecaster.alpha")?);
    let flags_raw = r.uvarint("forecaster.flags")?;
    if flags_raw > 7 {
        return Err(CheckpointError::Invalid {
            at: "forecaster.flags",
            detail: format!("unknown flag bits {flags_raw:#x}"),
        });
    }
    let shape = if flags_raw & 1 != 0 {
        let stages = r.uvarint("forecaster.shape")?;
        let buckets = r.uvarint("forecaster.shape")?;
        let stages = r.counted("forecaster.shape", stages, MAX_GRID_CELLS)?;
        let buckets = r.counted("forecaster.shape", buckets, MAX_GRID_CELLS)?;
        Some((stages, buckets))
    } else {
        None
    };
    let prev_observed = if flags_raw & 2 != 0 {
        Some(decode_f64_vec(r, "forecaster.prev_observed")?)
    } else {
        None
    };
    let prev_forecast = if flags_raw & 4 != 0 {
        Some(decode_f64_vec(r, "forecaster.prev_forecast")?)
    } else {
        None
    };
    Ok(GridEwmaState {
        alpha,
        prev_observed,
        prev_forecast,
        shape,
    })
}

fn encode_alert(out: &mut Vec<u8>, alert: &Alert) {
    let kind = match alert.kind {
        AlertKind::SynFlooding => 0u8,
        AlertKind::HScan => 1,
        AlertKind::VScan => 2,
    };
    out.push(kind);
    let mut flags = 0u8;
    if alert.sip.is_some() {
        flags |= 1;
    }
    if alert.dip.is_some() {
        flags |= 2;
    }
    if alert.dport.is_some() {
        flags |= 4;
    }
    if alert.attacker_identified {
        flags |= 8;
    }
    out.push(flags);
    if let Some(sip) = alert.sip {
        put_uvarint(out, u64::from(sip.raw()));
    }
    if let Some(dip) = alert.dip {
        put_uvarint(out, u64::from(dip.raw()));
    }
    if let Some(dport) = alert.dport {
        put_uvarint(out, u64::from(dport));
    }
    put_uvarint(out, alert.interval);
    put_uvarint(out, zigzag(alert.magnitude));
}

fn decode_u32_field(r: &mut Reader<'_>, at: &'static str) -> Result<u32, CheckpointError> {
    let v = r.uvarint(at)?;
    u32::try_from(v).map_err(|_| CheckpointError::Invalid {
        at,
        detail: format!("{v} exceeds u32"),
    })
}

fn decode_u16_field(r: &mut Reader<'_>, at: &'static str) -> Result<u16, CheckpointError> {
    let v = r.uvarint(at)?;
    u16::try_from(v).map_err(|_| CheckpointError::Invalid {
        at,
        detail: format!("{v} exceeds u16"),
    })
}

fn decode_alert(r: &mut Reader<'_>) -> Result<Alert, CheckpointError> {
    let kind = match r.uvarint("alert.kind")? {
        0 => AlertKind::SynFlooding,
        1 => AlertKind::HScan,
        2 => AlertKind::VScan,
        other => {
            return Err(CheckpointError::Invalid {
                at: "alert.kind",
                detail: format!("unknown kind tag {other}"),
            })
        }
    };
    let flags = r.uvarint("alert.flags")?;
    if flags > 15 {
        return Err(CheckpointError::Invalid {
            at: "alert.flags",
            detail: format!("unknown flag bits {flags:#x}"),
        });
    }
    let sip = if flags & 1 != 0 {
        Some(Ip4::new(decode_u32_field(r, "alert.sip")?))
    } else {
        None
    };
    let dip = if flags & 2 != 0 {
        Some(Ip4::new(decode_u32_field(r, "alert.dip")?))
    } else {
        None
    };
    let dport = if flags & 4 != 0 {
        Some(decode_u16_field(r, "alert.dport")?)
    } else {
        None
    };
    let interval = r.uvarint("alert.interval")?;
    let magnitude = unzigzag(r.uvarint("alert.magnitude")?);
    Ok(Alert {
        kind,
        sip,
        dip,
        dport,
        interval,
        magnitude,
        attacker_identified: flags & 8 != 0,
    })
}

fn encode_alert_list(out: &mut Vec<u8>, alerts: &[Alert]) {
    put_uvarint(out, len_u64(alerts.len()));
    for a in alerts {
        encode_alert(out, a);
    }
}

fn decode_alert_list(r: &mut Reader<'_>, at: &'static str) -> Result<Vec<Alert>, CheckpointError> {
    let count = r.uvarint(at)?;
    let count = r.counted(at, count, MAX_ALERTS)?;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(decode_alert(r)?);
    }
    Ok(out)
}

/// Serializes a [`CoreCheckpoint`] into its on-disk byte form (container
/// included).
pub fn encode_core_checkpoint(ckpt: &CoreCheckpoint) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 << 12);
    put_uvarint(&mut payload, ckpt.interval);
    put_uvarint(&mut payload, len_u64(ckpt.forecasters.len()));
    for state in &ckpt.forecasters {
        encode_forecaster(&mut payload, state);
    }
    put_uvarint(&mut payload, len_u64(ckpt.streaks.len()));
    for s in &ckpt.streaks {
        put_uvarint(&mut payload, u64::from(s.dip));
        put_uvarint(&mut payload, u64::from(s.dport));
        put_uvarint(&mut payload, s.last_interval);
        put_uvarint(&mut payload, u64::from(s.count));
    }
    encode_alert_list(&mut payload, &ckpt.raw_alerts);
    encode_alert_list(&mut payload, &ckpt.classified_alerts);
    encode_alert_list(&mut payload, &ckpt.final_alerts);
    encode_container(CORE_MAGIC, ckpt.fingerprint, &payload)
}

/// Parses bytes produced by [`encode_core_checkpoint`].
///
/// # Errors
///
/// Returns a [`CheckpointError`] naming the first container or payload
/// violation; never panics on malformed input.
pub fn decode_core_checkpoint(bytes: &[u8]) -> Result<CoreCheckpoint, CheckpointError> {
    let (fingerprint, payload) = decode_container(CORE_MAGIC, bytes)?;
    let mut r = Reader::new(payload);
    let interval = r.uvarint("interval")?;
    let n_forecasters = r.uvarint("forecasters")?;
    let n_forecasters = r.counted("forecasters", n_forecasters, MAX_FORECASTERS)?;
    let mut forecasters = Vec::with_capacity(n_forecasters);
    for _ in 0..n_forecasters {
        forecasters.push(decode_forecaster(&mut r)?);
    }
    let n_streaks = r.uvarint("streaks")?;
    let n_streaks = r.counted("streaks", n_streaks, MAX_STREAKS)?;
    let mut streaks = Vec::with_capacity(n_streaks);
    for _ in 0..n_streaks {
        let dip = decode_u32_field(&mut r, "streak.dip")?;
        let dport = decode_u16_field(&mut r, "streak.dport")?;
        let last_interval = r.uvarint("streak.last_interval")?;
        let count = decode_u32_field(&mut r, "streak.count")?;
        streaks.push(FloodStreak {
            dip,
            dport,
            last_interval,
            count,
        });
    }
    let raw_alerts = decode_alert_list(&mut r, "raw_alerts")?;
    let classified_alerts = decode_alert_list(&mut r, "classified_alerts")?;
    let final_alerts = decode_alert_list(&mut r, "final_alerts")?;
    if r.position() != payload.len() {
        return Err(CheckpointError::Payload(CodecError::TrailingBytes {
            extra: payload.len() - r.position(),
        }));
    }
    Ok(CoreCheckpoint {
        fingerprint,
        interval,
        forecasters,
        streaks,
        raw_alerts,
        classified_alerts,
        final_alerts,
    })
}

/// Serializes an [`AgentCheckpoint`] into its on-disk byte form (a
/// version-2 container; each backlog entry is codec-tagged).
pub fn encode_agent_checkpoint(ckpt: &AgentCheckpoint) -> Vec<u8> {
    let mut payload = Vec::with_capacity(1 << 10);
    put_uvarint(&mut payload, u64::from(ckpt.router_id));
    put_uvarint(&mut payload, ckpt.interval);
    put_uvarint(&mut payload, len_u64(ckpt.backlog.len()));
    for entry in &ckpt.backlog {
        payload.push(entry.codec);
        put_uvarint(&mut payload, len_u64(entry.frame.len()));
        payload.extend_from_slice(&entry.frame);
    }
    encode_container_versioned(
        AGENT_MAGIC,
        CHECKPOINT_VERSION_2,
        ckpt.fingerprint,
        &payload,
    )
}

/// Parses bytes produced by [`encode_agent_checkpoint`], or by a
/// pre-upgrade agent (version-1 container; every frame is then tagged
/// [`wire::CODEC_V1`], the only codec such an agent could ship).
///
/// # Errors
///
/// Returns a [`CheckpointError`] naming the first container or payload
/// violation; never panics on malformed input.
pub fn decode_agent_checkpoint(bytes: &[u8]) -> Result<AgentCheckpoint, CheckpointError> {
    let (version, fingerprint, payload) = decode_container_versioned(AGENT_MAGIC, bytes)?;
    let mut r = Reader::new(payload);
    let router_id = decode_u32_field(&mut r, "router_id")?;
    let interval = r.uvarint("interval")?;
    let n_frames = r.uvarint("backlog")?;
    let n_frames = r.counted("backlog", n_frames, MAX_BACKLOG_FRAMES)?;
    let mut backlog = Vec::with_capacity(n_frames);
    for _ in 0..n_frames {
        let codec = if version >= CHECKPOINT_VERSION_2 {
            let tag = r.uvarint("backlog.codec")?;
            match u8::try_from(tag) {
                Ok(c) if c == wire::CODEC_V1 || c == wire::CODEC_V2 => c,
                _ => {
                    return Err(CheckpointError::Invalid {
                        at: "backlog.codec",
                        detail: format!("unknown codec tag {tag}"),
                    })
                }
            }
        } else {
            wire::CODEC_V1
        };
        let len = r.uvarint("backlog.frame")?;
        let len = r.counted("backlog.frame", len, MAX_FRAME_BYTES)?;
        let start = r.position();
        let end = start.checked_add(len).filter(|&e| e <= payload.len());
        let Some(end) = end else {
            return Err(CheckpointError::Payload(CodecError::Truncated {
                at: "backlog.frame",
            }));
        };
        backlog.push(BacklogFrame {
            codec,
            frame: payload[start..end].to_vec(),
        });
        r.skip(len, "backlog.frame")?;
    }
    if r.position() != payload.len() {
        return Err(CheckpointError::Payload(CodecError::TrailingBytes {
            extra: payload.len() - r.position(),
        }));
    }
    Ok(AgentCheckpoint {
        fingerprint,
        router_id,
        interval,
        backlog,
    })
}

/// Atomically writes `bytes` to `path` (temp file in the same directory,
/// then rename), so a crash mid-write can never corrupt an existing
/// checkpoint or history segment.
///
/// # Errors
///
/// Surfaces filesystem failures as [`CheckpointError::Io`].
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        CheckpointError::Io(std::io::Error::new(
            std::io::ErrorKind::InvalidInput,
            "checkpoint path has no file name",
        ))
    })?;
    let mut tmp_name = file_name.to_os_string();
    tmp_name.push(".tmp");
    let tmp_path = match dir {
        Some(d) => d.join(&tmp_name),
        None => std::path::PathBuf::from(&tmp_name),
    };
    let mut file = std::fs::File::create(&tmp_path)?;
    file.write_all(bytes)?;
    file.sync_all()?;
    drop(file);
    match std::fs::rename(&tmp_path, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp_path);
            Err(CheckpointError::Io(e))
        }
    }
}

/// Writes a core checkpoint to `path` atomically.
///
/// # Errors
///
/// Surfaces filesystem failures as [`CheckpointError::Io`].
pub fn write_core_checkpoint(path: &Path, ckpt: &CoreCheckpoint) -> Result<(), CheckpointError> {
    write_atomic(path, &encode_core_checkpoint(ckpt))
}

/// Reads and validates a core checkpoint from `path`.
///
/// # Errors
///
/// Surfaces filesystem failures and every container/payload violation.
pub fn read_core_checkpoint(path: &Path) -> Result<CoreCheckpoint, CheckpointError> {
    decode_core_checkpoint(&std::fs::read(path)?)
}

/// Writes an agent checkpoint to `path` atomically.
///
/// # Errors
///
/// Surfaces filesystem failures as [`CheckpointError::Io`].
pub fn write_agent_checkpoint(path: &Path, ckpt: &AgentCheckpoint) -> Result<(), CheckpointError> {
    write_atomic(path, &encode_agent_checkpoint(ckpt))
}

/// Reads and validates an agent checkpoint from `path`.
///
/// # Errors
///
/// Surfaces filesystem failures and every container/payload violation.
pub fn read_agent_checkpoint(path: &Path) -> Result<AgentCheckpoint, CheckpointError> {
    decode_agent_checkpoint(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind::pipeline::DetectionCore;
    use hifind::{HiFindConfig, SketchRecorder};
    use hifind_flow::Packet;

    fn busy_checkpoint() -> (HiFindConfig, CoreCheckpoint) {
        let cfg = HiFindConfig::small(50);
        let mut rec = SketchRecorder::new(&cfg).unwrap();
        let mut core = DetectionCore::new(cfg).unwrap();
        let victim: hifind_flow::Ip4 = [129, 105, 0, 1].into();
        for iv in 0..4u64 {
            for i in 0..25u32 {
                let c: hifind_flow::Ip4 = [9, 9, 9, (i % 100) as u8].into();
                rec.record(&Packet::syn(iv, c, 4000 + i as u16, victim, 80));
                rec.record(&Packet::syn_ack(iv, c, 4000 + i as u16, victim, 80));
            }
            if iv >= 1 {
                for i in 0..300u32 {
                    rec.record(&Packet::syn(
                        iv,
                        hifind_flow::Ip4::new(0x5000_0000 + i),
                        2000,
                        victim,
                        80,
                    ));
                }
            }
            let snap = rec.take_snapshot();
            core.process_snapshot(&snap);
        }
        (cfg, core.checkpoint())
    }

    #[test]
    fn core_round_trip_is_exact() {
        let (_, ckpt) = busy_checkpoint();
        assert!(!ckpt.forecasters.is_empty());
        let bytes = encode_core_checkpoint(&ckpt);
        let back = decode_core_checkpoint(&bytes).unwrap();
        assert_eq!(back, ckpt);
    }

    #[test]
    fn restored_core_continues_identically() {
        let (cfg, ckpt) = busy_checkpoint();
        let bytes = encode_core_checkpoint(&ckpt);
        let back = decode_core_checkpoint(&bytes).unwrap();
        let core = DetectionCore::restore(cfg, &back).unwrap();
        assert_eq!(core.intervals_processed(), ckpt.interval);
        assert_eq!(core.checkpoint(), ckpt, "checkpoint must be a fixed point");
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let (_, ckpt) = busy_checkpoint();
        let bytes = encode_core_checkpoint(&ckpt);
        // ~128 cuts spread over the whole container, plus the edges that
        // matter (empty, header boundary, one byte short). Each cut fails
        // on the declared-length check, so this stays cheap even though
        // the encoded grids run to megabytes.
        let step = (bytes.len() / 128).max(1);
        for cut in (0..bytes.len()).step_by(step).chain([
            0,
            CONTAINER_HEADER_LEN - 1,
            CONTAINER_HEADER_LEN,
            bytes.len() - 1,
        ]) {
            assert!(
                decode_core_checkpoint(&bytes[..cut]).is_err(),
                "cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn single_bit_flips_are_rejected() {
        let (_, ckpt) = busy_checkpoint();
        let bytes = encode_core_checkpoint(&ckpt);
        // Every rejection below costs a full-payload CRC pass, so sample
        // ~48 payload positions (first, last, and evenly spread) rather
        // than walking the megabytes of encoded grids byte by byte.
        let payload = CONTAINER_HEADER_LEN..bytes.len();
        let step = (payload.len() / 48).max(1);
        for idx in payload
            .clone()
            .step_by(step)
            .chain([payload.start, payload.end - 1])
        {
            let mut bad = bytes.clone();
            bad[idx] ^= 0x10;
            assert!(
                matches!(
                    decode_core_checkpoint(&bad),
                    Err(CheckpointError::Crc { .. })
                ),
                "flip at {idx} must fail the CRC"
            );
        }
    }

    #[test]
    fn kind_confusion_is_rejected() {
        let (_, ckpt) = busy_checkpoint();
        let bytes = encode_core_checkpoint(&ckpt);
        assert!(matches!(
            decode_agent_checkpoint(&bytes),
            Err(CheckpointError::WrongKind { .. })
        ));
        assert!(matches!(
            decode_core_checkpoint(b"nope"),
            Err(CheckpointError::TruncatedContainer { .. })
        ));
    }

    #[test]
    fn agent_round_trip_preserves_backlog() {
        let ckpt = AgentCheckpoint {
            fingerprint: 0xFEED,
            router_id: 7,
            interval: 42,
            backlog: vec![
                BacklogFrame {
                    codec: wire::CODEC_V1,
                    frame: vec![1, 2, 3],
                },
                BacklogFrame {
                    codec: wire::CODEC_V2,
                    frame: vec![],
                },
                BacklogFrame {
                    codec: wire::CODEC_V2,
                    frame: vec![0xFF; 300],
                },
            ],
        };
        let bytes = encode_agent_checkpoint(&ckpt);
        assert_eq!(decode_agent_checkpoint(&bytes).unwrap(), ckpt);
    }

    #[test]
    fn legacy_version_1_agent_checkpoint_decodes_with_v1_tags() {
        // Hand-built version-1 layout: untagged frames, exactly what a
        // pre-upgrade agent wrote to disk before being restarted onto
        // this build (the resume-across-upgrade regression).
        let frames: [&[u8]; 2] = [&[9, 9, 9], &[0xAB; 40]];
        let mut payload = Vec::new();
        put_uvarint(&mut payload, 7); // router_id
        put_uvarint(&mut payload, 42); // interval
        put_uvarint(&mut payload, 2); // backlog count
        for f in frames {
            put_uvarint(&mut payload, len_u64(f.len()));
            payload.extend_from_slice(f);
        }
        let bytes = encode_container(AGENT_MAGIC, 0xFEED, &payload);
        let ckpt = decode_agent_checkpoint(&bytes).unwrap();
        assert_eq!(ckpt.router_id, 7);
        assert_eq!(ckpt.interval, 42);
        assert_eq!(ckpt.backlog.len(), 2);
        for (entry, raw) in ckpt.backlog.iter().zip(frames) {
            assert_eq!(entry.codec, wire::CODEC_V1);
            assert_eq!(entry.frame, raw);
        }
    }

    #[test]
    fn unknown_backlog_codec_tag_is_rejected() {
        let ckpt = AgentCheckpoint {
            fingerprint: 1,
            router_id: 1,
            interval: 1,
            backlog: vec![BacklogFrame {
                codec: 9,
                frame: vec![1],
            }],
        };
        let bytes = encode_agent_checkpoint(&ckpt);
        assert!(matches!(
            decode_agent_checkpoint(&bytes),
            Err(CheckpointError::Invalid {
                at: "backlog.codec",
                ..
            })
        ));
    }

    #[test]
    fn file_round_trip_and_atomic_overwrite() {
        let (_, ckpt) = busy_checkpoint();
        let dir = std::env::temp_dir().join("hifind_ckpt_test_file_rt");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("core.ckpt");
        write_core_checkpoint(&path, &ckpt).unwrap();
        assert_eq!(read_core_checkpoint(&path).unwrap(), ckpt);
        // Overwriting in place must go through the temp file.
        write_core_checkpoint(&path, &ckpt).unwrap();
        assert_eq!(read_core_checkpoint(&path).unwrap(), ckpt);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let (_, ckpt) = busy_checkpoint();
        let mut bytes = encode_core_checkpoint(&ckpt);
        bytes[4] = 99;
        assert!(matches!(
            decode_core_checkpoint(&bytes),
            Err(CheckpointError::Version(99))
        ));
    }
}
