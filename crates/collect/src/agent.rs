//! The router side of networked collection.
//!
//! A [`RouterAgent`] wraps the per-packet [`SketchRecorder`] — the only
//! thing HiFIND asks of an edge router — and turns each interval's
//! snapshot into one wire frame. Shipping runs through the shared
//! [`crate::ship::Shipper`], engineered for an unreliable collector,
//! because a detection site restart must never ripple back into the data
//! plane:
//!
//! * frames queue in a **bounded backlog** (oldest dropped first on
//!   overflow, since fresher intervals matter more to detection);
//! * sends run with **bounded attempts** and **exponential backoff**, so
//!   a dead collector costs a capped, predictable stall per interval;
//! * every failure closes and later **reconnects** the socket, and the
//!   backlog survives in between — a restarted collector receives the
//!   missed intervals in order and realigns via the frame headers.

use crate::checkpoint::{self, AgentCheckpoint, CheckpointError};
use crate::ship::{ShipConfig, Shipper};
use crate::wire;
use crate::CollectError;
use hifind::parallel::{ParallelError, ParallelRecorder};
use hifind::{HiFindConfig, IntervalSnapshot, SketchRecorder};
use hifind_flow::Packet;
use hifind_sketch::SketchError;
use serde::Serialize;
use std::time::Duration;

/// Shipping policy of one router agent.
#[derive(Clone, Debug)]
pub struct AgentConfig {
    /// This router's id in frame headers.
    pub router_id: u32,
    /// Encoded frames kept while the collector is unreachable; the oldest
    /// interval is dropped when a new one would exceed this.
    pub max_backlog_frames: usize,
    /// Connect/send attempts per flush before giving up (the backlog
    /// keeps the frames for the next flush).
    pub max_attempts: u32,
    /// First retry delay; doubles per failure.
    pub initial_backoff: Duration,
    /// Backoff ceiling.
    pub max_backoff: Duration,
    /// Socket connect and write timeout.
    pub io_timeout: Duration,
    /// Codec ids this agent offers, in preference order. The default
    /// offers [`wire::CODEC_V2`] and falls back to v1 automatically when
    /// the collector does not negotiate; `vec![wire::CODEC_V1]` pins the
    /// agent to legacy framing.
    pub codecs: Vec<u8>,
}

impl AgentConfig {
    /// Sensible defaults for `router_id`.
    pub fn new(router_id: u32) -> Self {
        AgentConfig {
            router_id,
            max_backlog_frames: 64,
            max_attempts: 5,
            initial_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            io_timeout: Duration::from_secs(5),
            codecs: vec![wire::CODEC_V2, wire::CODEC_V1],
        }
    }

    /// The shipping-policy subset of this configuration.
    pub fn ship(&self) -> ShipConfig {
        ShipConfig {
            max_backlog_frames: self.max_backlog_frames,
            max_attempts: self.max_attempts,
            initial_backoff: self.initial_backoff,
            max_backoff: self.max_backoff,
            io_timeout: self.io_timeout,
            codecs: self.codecs.clone(),
        }
    }
}

/// Lifetime shipping counters of one agent (or aggregator upstream path).
#[derive(Clone, Debug, Default, Serialize)]
pub struct AgentStats {
    /// Frames produced by [`RouterAgent::end_interval`].
    pub frames_enqueued: u64,
    /// Frames written to the collector.
    pub frames_shipped: u64,
    /// Frames dropped to backlog overflow.
    pub frames_dropped: u64,
    /// Bytes written to the collector.
    pub bytes_shipped: u64,
    /// Successful connections after the first.
    pub reconnects: u64,
    /// Failed connect or write attempts.
    pub send_failures: u64,
    /// Intervals encoded as v2 keyframes.
    pub frames_v2_keyframes: u64,
    /// Intervals encoded as v2 deltas against an acked baseline.
    pub frames_v2_deltas: u64,
    /// Backlogged v2 frames rewritten as v1 for a downgraded session.
    pub frames_transcoded: u64,
}

/// What one flush (or interval end) managed to ship.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShipReport {
    /// Frames written to the collector in this call.
    pub shipped: usize,
    /// Frames still queued when the attempt budget ran out.
    pub queued: usize,
    /// Frames evicted from the backlog in this call.
    pub dropped: usize,
}

/// Why one frame could not be shipped. Internal retry handling consumes
/// most of these; they surface so callers embedding the agent can log
/// shipping trouble without the agent ever panicking.
#[derive(Debug)]
pub enum AgentError {
    /// No live connection to the collector.
    NotConnected,
    /// The socket write failed (the connection is dropped for reconnect).
    Io(std::io::Error),
    /// A snapshot could not be framed (counted as a dropped frame).
    Encode(wire::WireError),
}

impl std::fmt::Display for AgentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AgentError::NotConnected => write!(f, "not connected to the collector"),
            AgentError::Io(e) => write!(f, "frame write failed: {e}"),
            AgentError::Encode(e) => write!(f, "snapshot framing failed: {e}"),
        }
    }
}

impl std::error::Error for AgentError {}

/// The agent's record plane: one recorder, or a sharded parallel plane
/// whose merged snapshots are bit-identical to the serial recorder's.
/// The serial recorder (~1 KB of inline sketch headers) is boxed so the
/// enum stays small in the `RouterAgent`.
enum RecordPlane {
    Serial(Box<SketchRecorder>),
    Sharded(ParallelRecorder),
}

impl RecordPlane {
    #[inline]
    fn record(&mut self, packet: &Packet) {
        match self {
            RecordPlane::Serial(r) => r.record(packet),
            RecordPlane::Sharded(r) => r.record(packet),
        }
    }

    fn take_snapshot(&mut self) -> Result<IntervalSnapshot, ParallelError> {
        match self {
            RecordPlane::Serial(r) => Ok(r.take_snapshot()),
            RecordPlane::Sharded(r) => r.end_interval(),
        }
    }
}

/// A router agent: records packets, ships one frame per interval.
pub struct RouterAgent {
    cfg: AgentConfig,
    fingerprint: u64,
    recorder: RecordPlane,
    interval: u64,
    shipper: Shipper,
}

impl std::fmt::Debug for RouterAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterAgent")
            .field("addr", &self.shipper.addr())
            .field("router_id", &self.cfg.router_id)
            .field("interval", &self.interval)
            .field("backlog", &self.shipper.backlog_len())
            .finish_non_exhaustive()
    }
}

impl RouterAgent {
    /// Builds an agent recording under `hifind_cfg`, shipping to `addr`.
    /// No connection is made until the first flush.
    ///
    /// # Errors
    ///
    /// Propagates recorder construction errors.
    pub fn new(
        addr: impl Into<String>,
        hifind_cfg: &HiFindConfig,
        cfg: AgentConfig,
    ) -> Result<Self, SketchError> {
        Ok(Self::with_plane(
            addr,
            cfg,
            hifind_cfg.fingerprint(),
            RecordPlane::Serial(Box::new(SketchRecorder::new(hifind_cfg)?)),
        ))
    }

    /// Like [`RouterAgent::new`], but records through a sharded
    /// [`ParallelRecorder`] with `workers` threads. Frames are
    /// bit-identical to the serial agent's, so the collector cannot tell
    /// the difference.
    ///
    /// # Errors
    ///
    /// Propagates recorder construction and thread-spawn errors.
    pub fn new_parallel(
        addr: impl Into<String>,
        hifind_cfg: &HiFindConfig,
        cfg: AgentConfig,
        workers: usize,
    ) -> Result<Self, ParallelError> {
        Ok(Self::with_plane(
            addr,
            cfg,
            hifind_cfg.fingerprint(),
            RecordPlane::Sharded(ParallelRecorder::new(hifind_cfg, workers)?),
        ))
    }

    fn with_plane(
        addr: impl Into<String>,
        cfg: AgentConfig,
        fingerprint: u64,
        recorder: RecordPlane,
    ) -> Self {
        let shipper = Shipper::new(addr, cfg.router_id, cfg.ship());
        RouterAgent {
            cfg,
            fingerprint,
            recorder,
            interval: 0,
            shipper,
        }
    }

    /// Attaches an observer notified on reconnects. Callbacks run inline
    /// on the shipping path, so they must stay cheap.
    pub fn set_observer(&mut self, observer: std::sync::Arc<dyn crate::observer::CollectObserver>) {
        self.shipper.set_observer(observer);
    }

    /// Records one packet (the hot path; never touches the network).
    #[inline]
    pub fn record(&mut self, packet: &Packet) {
        self.recorder.record(packet);
    }

    /// Ends the current interval: snapshots the recorder, encodes the
    /// snapshot in the negotiated codec, enqueues it, and attempts a
    /// flush.
    pub fn end_interval(&mut self) -> ShipReport {
        let interval = self.interval;
        self.interval += 1;
        match self.recorder.take_snapshot() {
            Ok(s) => self.shipper.ship_snapshot(interval, &s),
            // A lost shard worker yields no merged snapshot; the interval
            // is counted as dropped rather than aborting the data plane.
            Err(_) => {
                self.shipper.count_unframeable();
                let mut report = self.flush();
                report.dropped += 1;
                report
            }
        }
    }

    /// Tries to ship the whole backlog within the configured attempt and
    /// backoff budget. Whatever could not be sent stays queued.
    pub fn flush(&mut self) -> ShipReport {
        self.shipper.flush()
    }

    /// Points the agent at a different collector address (e.g. a restarted
    /// site on a new port). Any open connection is dropped; the backlog is
    /// kept and ships to the new address on the next flush.
    pub fn set_collector_addr(&mut self, addr: impl Into<String>) {
        self.shipper.set_addr(addr);
    }

    /// Snapshots the agent's durable state: identity, interval counter,
    /// and the still-unshipped backlog frames (verbatim, so a restarted
    /// agent re-ships exactly what this one still owed the collector).
    /// The in-progress interval's packet counters are *not* included —
    /// they belong to the data plane, which a restart inherently loses.
    pub fn checkpoint(&self) -> AgentCheckpoint {
        AgentCheckpoint {
            fingerprint: self.fingerprint,
            router_id: self.cfg.router_id,
            interval: self.interval,
            backlog: self.shipper.backlog_frames(),
        }
    }

    /// Writes the agent checkpoint to `path` atomically.
    ///
    /// # Errors
    ///
    /// Surfaces filesystem failures as [`CheckpointError::Io`].
    pub fn save_checkpoint(&self, path: &std::path::Path) -> Result<(), CheckpointError> {
        checkpoint::write_agent_checkpoint(path, &self.checkpoint())
    }

    /// Rebuilds an agent from a checkpoint: same router id, same interval
    /// numbering, and the checkpointed backlog queued for shipping. The
    /// record plane starts fresh (serial), under `hifind_cfg`.
    ///
    /// # Errors
    ///
    /// Rejects a checkpoint whose fingerprint does not match `hifind_cfg`
    /// or whose router id does not match `cfg.router_id`; propagates
    /// recorder construction errors.
    pub fn resume(
        addr: impl Into<String>,
        hifind_cfg: &HiFindConfig,
        cfg: AgentConfig,
        ckpt: &AgentCheckpoint,
    ) -> Result<Self, CollectError> {
        let expected = hifind_cfg.fingerprint();
        if ckpt.fingerprint != expected {
            return Err(CollectError::Checkpoint(
                CheckpointError::FingerprintMismatch {
                    expected,
                    got: ckpt.fingerprint,
                },
            ));
        }
        if ckpt.router_id != cfg.router_id {
            return Err(CollectError::Checkpoint(CheckpointError::Invalid {
                at: "router_id",
                detail: format!(
                    "checkpoint is for router {}, agent configured as router {}",
                    ckpt.router_id, cfg.router_id
                ),
            }));
        }
        let mut agent = RouterAgent::new(addr, hifind_cfg, cfg).map_err(CollectError::Sketch)?;
        agent.interval = ckpt.interval;
        agent.shipper.restore_backlog(&ckpt.backlog);
        Ok(agent)
    }

    /// Like [`RouterAgent::resume`], reading the checkpoint from `path`.
    ///
    /// # Errors
    ///
    /// Propagates read, validation, and construction failures.
    pub fn resume_from_file(
        addr: impl Into<String>,
        hifind_cfg: &HiFindConfig,
        cfg: AgentConfig,
        path: &std::path::Path,
    ) -> Result<Self, CollectError> {
        let ckpt = checkpoint::read_agent_checkpoint(path)?;
        Self::resume(addr, hifind_cfg, cfg, &ckpt)
    }

    /// Frames waiting for a reachable collector.
    pub fn backlog_len(&self) -> usize {
        self.shipper.backlog_len()
    }

    /// Intervals ended so far (the next frame's interval index).
    pub fn intervals_ended(&self) -> u64 {
        self.interval
    }

    /// Lifetime shipping counters.
    pub fn stats(&self) -> &AgentStats {
        self.shipper.stats()
    }

    /// Final flush, then closes the connection, joins any shard workers,
    /// and returns the stats.
    pub fn finish(mut self) -> AgentStats {
        self.shipper.flush();
        self.shipper.close();
        let stats = self.shipper.stats().clone();
        if let RecordPlane::Sharded(r) = self.recorder {
            // A worker lost earlier already surfaced as a dropped frame;
            // all that matters here is that every thread is joined.
            let _ = r.finish();
        }
        stats
    }
}
