//! Property-based tests of the v2 codec: sparse grids, ack-gated delta
//! chains, and the equivalence guarantees the compression rests on.
//!
//! The contract under test: however the encoder chooses to represent a
//! snapshot (dense, sparse, keyframe, delta), whatever intervals get
//! dropped before the receiver acks, and wherever keyframe boundaries
//! fall, the receiver reconstructs the **exact** `IntervalSnapshot` —
//! so detection over a v2 stream is alert-for-alert identical to v1 —
//! and any corruption dies as a typed error, never a panic or a silently
//! wrong snapshot.

use hifind::pipeline::DetectionCore;
use hifind::{HiFindConfig, SketchRecorder};
use hifind_collect::codec_v2::{ChainStore, SnapshotEncoder};
use hifind_collect::wire;
use hifind_flow::rng::SplitMix64;
use hifind_flow::{Ip4, Packet};
use proptest::prelude::*;

/// Records a seed-derived packet mix for one interval into `rec`.
fn record_interval(rec: &mut SketchRecorder, rng: &mut SplitMix64, packets: u32) {
    for _ in 0..packets {
        let src = Ip4::new(rng.next_u32());
        let dst = Ip4::new(0x8169_0000 | (rng.next_u32() & 0xFF));
        let sport = 1024 + (rng.next_u32() % 60000) as u16;
        let dport = [80u16, 443, 22, 445][(rng.next_u32() % 4) as usize];
        let ts = rng.next_u64() % 10_000;
        match rng.next_u32() % 8 {
            0 => rec.record(&Packet::syn_ack(ts, dst, dport, src, sport)),
            1 => rec.record(&Packet::fin(ts, src, sport, dst, dport)),
            _ => rec.record(&Packet::syn(ts, src, sport, dst, dport)),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A lossy, laggy delivery schedule — arbitrary drops, arbitrary
    /// keyframe cadence — still reconstructs every *delivered* interval
    /// byte-exactly. The ack gate is what makes this hold: a delta is
    /// only ever encoded against a baseline the receiver proved it has.
    #[test]
    fn chain_reconstruction_is_exact_under_drops(
        seed in any::<u64>(),
        keyframe_every in 0u32..6,
        drop_mask in any::<u32>(),
        intervals in 2u64..10,
    ) {
        let cfg = HiFindConfig::small(42);
        let mut rng = SplitMix64::new(seed);
        let mut rec = SketchRecorder::new(&cfg).expect("small config");
        let mut enc = SnapshotEncoder::new(keyframe_every);
        let mut chains = ChainStore::new();
        let mut acked: Option<u64> = None;
        let mut delivered = 0u32;
        for interval in 0..intervals {
            let packets = 40 + (rng.next_u32() % 120);
            record_interval(&mut rec, &mut rng, packets);
            let snap = rec.take_snapshot();
            let encoded = enc.encode(interval, &snap, acked);
            // A dropped frame never reaches the chain store and never
            // advances the ack watermark; the encoder must recover by
            // keyframing on its own.
            if drop_mask & (1 << (interval % 32)) != 0 {
                continue;
            }
            let decoded = chains
                .decode(7, interval, &encoded.payload)
                .expect("an ack-gated frame is always decodable");
            prop_assert_eq!(decoded.was_delta, encoded.is_delta);
            prop_assert_eq!(&decoded.snapshot, &snap, "interval {}", interval);
            acked = Some(interval);
            delivered += 1;
        }
        prop_assert!(delivered > 0 || drop_mask != 0);
    }

    /// Every single-byte flip of a framed v2 keyframe or delta either
    /// fails typed or — only for unauthenticated header metadata
    /// (router id, interval) — decodes to the exact original snapshot.
    /// Nothing panics, nothing misdecodes.
    #[test]
    fn v2_single_byte_corruption_is_typed_or_harmless(
        seed in any::<u64>(),
        pos_pick in any::<u64>(),
        mask in 1u8..=255,
        corrupt_delta in any::<bool>(),
    ) {
        let cfg = HiFindConfig::small(42);
        let mut rng = SplitMix64::new(seed);
        let mut rec = SketchRecorder::new(&cfg).expect("small config");
        let mut enc = SnapshotEncoder::new(8);
        let mut chains = ChainStore::new();

        record_interval(&mut rec, &mut rng, 150);
        let base = rec.take_snapshot();
        let e0 = enc.encode(0, &base, None);
        chains.decode(7, 0, &e0.payload).expect("keyframe decodes");

        record_interval(&mut rec, &mut rng, 60);
        let snap = rec.take_snapshot();
        let e1 = enc.encode(1, &snap, Some(0));
        prop_assert!(e1.is_delta, "an acked successor should delta");

        let (interval, target, payload) = if corrupt_delta {
            (1u64, &snap, &e1.payload)
        } else {
            (0u64, &base, &e0.payload)
        };
        let mut frame =
            wire::encode_frame_v2(7, interval, target.fingerprint, payload).expect("framable");
        let pos = (pos_pick % frame.len() as u64) as usize;
        frame[pos] ^= mask;

        let outcome = wire::parse_header(
            &<[u8; wire::HEADER_LEN]>::try_from(&frame[..wire::HEADER_LEN]).unwrap(),
            wire::DEFAULT_MAX_PAYLOAD,
        )
        .and_then(|header| {
            let mut fresh = ChainStore::new();
            // Replay the intact predecessor so a corrupted delta is
            // judged against a valid baseline, not a missing one.
            if corrupt_delta {
                fresh.decode(7, 0, &e0.payload).expect("keyframe decodes");
            }
            wire::decode_payload_v2(&header, &frame[wire::HEADER_LEN..], &mut fresh)
        });
        // An Err outcome is typed by construction; the assertion there is
        // simply "no panic".
        if let Ok((decoded, _)) = outcome {
            prop_assert!(
                (8..20).contains(&pos),
                "flip at {} outside unauthenticated header metadata was accepted",
                pos
            );
            prop_assert_eq!(&decoded, target);
        }
    }
}

/// The headline equivalence claim: a detection core fed through a v2
/// delta chain (with a mid-run receiver restart forcing recovery)
/// produces a checkpoint — alerts, forecaster state, streaks, all of it —
/// identical to one fed the same traffic through v1 frames.
#[test]
fn detection_over_v2_chain_is_alert_identical_to_v1() {
    let cfg = HiFindConfig::small(50);
    let mut rec = SketchRecorder::new(&cfg).unwrap();
    let mut core_v1 = DetectionCore::new(cfg).unwrap();
    let mut core_v2 = DetectionCore::new(cfg).unwrap();
    let mut enc = SnapshotEncoder::new(4);
    let mut chains = ChainStore::new();
    let mut acked: Option<u64> = None;
    let victim: Ip4 = [129, 105, 0, 1].into();
    for iv in 0..8u64 {
        // Benign background plus, from interval 2 on, a SYN flood big
        // enough to alert — the exact signal that must survive v2.
        for i in 0..25u32 {
            let c: Ip4 = [9, 9, 9, (i % 100) as u8].into();
            rec.record(&Packet::syn(iv, c, 4000 + i as u16, victim, 80));
            rec.record(&Packet::syn_ack(iv, c, 4000 + i as u16, victim, 80));
        }
        if iv >= 2 {
            for i in 0..300u32 {
                rec.record(&Packet::syn(
                    iv,
                    Ip4::new(0x5000_0000 + i),
                    2000,
                    victim,
                    80,
                ));
            }
        }
        let snap = rec.take_snapshot();

        // v1 path: the lossless legacy round trip.
        let frame = wire::encode_frame(3, iv, &snap).unwrap();
        let mut cursor = frame.as_slice();
        let (_, via_v1) = wire::read_frame(&mut cursor, wire::DEFAULT_MAX_PAYLOAD)
            .unwrap()
            .unwrap();

        // v2 path: ack-gated chain, with the receiver losing its entire
        // chain state mid-run (a collector restart) at interval 5.
        if iv == 5 {
            chains = ChainStore::new();
            acked = None;
            enc.reset();
        }
        let encoded = enc.encode(iv, &snap, acked);
        let via_v2 = chains.decode(3, iv, &encoded.payload).unwrap().snapshot;
        acked = Some(iv);

        assert_eq!(via_v1, via_v2, "interval {iv} diverged across codecs");
        core_v1.process_snapshot(&via_v1);
        core_v2.process_snapshot(&via_v2);
    }
    let ck1 = core_v1.checkpoint();
    let ck2 = core_v2.checkpoint();
    assert!(
        !ck1.final_alerts.is_empty(),
        "the flood must actually alert for the equivalence to mean anything"
    );
    assert_eq!(
        ck1, ck2,
        "v1 and v2 detection must be alert-for-alert identical"
    );
}

/// An interval snapshot is cheap on the wire in v2: the steady-state
/// delta for a quiet interval must be far below the v1 encoding of the
/// same snapshot (the multi_router bench records the measured ratio).
#[test]
fn quiet_interval_deltas_are_tiny_next_to_v1() {
    let cfg = HiFindConfig::small(51);
    let mut rec = SketchRecorder::new(&cfg).unwrap();
    let mut enc = SnapshotEncoder::new(u32::MAX);
    let mut chains = ChainStore::new();
    let mut rng = SplitMix64::new(7);
    record_interval(&mut rec, &mut rng, 200);
    let warm = rec.take_snapshot();
    let e0 = enc.encode(0, &warm, None);
    chains.decode(1, 0, &e0.payload).unwrap();
    let mut worst: f64 = 0.0;
    for iv in 1..4u64 {
        record_interval(&mut rec, &mut rng, 30);
        let snap = rec.take_snapshot();
        let v1_len = hifind_collect::codec::encode_snapshot(&snap).len();
        let encoded = enc.encode(iv, &snap, Some(iv - 1));
        assert!(encoded.is_delta);
        chains.decode(1, iv, &encoded.payload).unwrap();
        worst = worst.max(encoded.payload.len() as f64 / v1_len as f64);
    }
    assert!(
        worst < 0.02,
        "a quiet-interval delta should be <2% of v1, got {worst:.4}"
    );
}
