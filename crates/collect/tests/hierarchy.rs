//! Tree-structured collection at scale, over real loopback TCP.
//!
//! Sketch linearity (paper §3.1) makes interior aggregation exact: the
//! sum of sums equals the flat sum, bit for bit. The headline test here
//! drives 1000 router agents through a 3-tier tree — 1000 agents → 10
//! aggregators → 1 root collector — and asserts the root's detection is
//! alert-for-alert *and* snapshot-for-snapshot identical to one router
//! that saw all traffic. A second test pins the engine's scaling claim:
//! hundreds of concurrent connections without a thread per connection.

use hifind::report::Phase;
use hifind::{HiFind, HiFindConfig, IntervalOutcome, IntervalSnapshot, SketchRecorder};
use hifind_collect::wire;
use hifind_collect::{
    AgentConfig, Aggregator, AggregatorConfig, CollectObserver, Collector, CollectorConfig,
    RouterAgent,
};
use hifind_flow::{Packet, Trace};
use hifind_telemetry::registry::MetricValue;
use hifind_telemetry::Registry;
use hifind_trafficgen::{presets, split_per_packet};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Buckets `part`'s packets into the merged trace's interval grid, so
/// every router ends exactly `n` intervals in lockstep.
fn global_windows(part: &Trace, interval_ms: u64, base: u64, n: usize) -> Vec<Vec<Packet>> {
    let mut windows = vec![Vec::new(); n];
    for p in part.iter() {
        let idx = (p.ts_ms / interval_ms - base) as usize;
        windows[idx].push(*p);
    }
    windows
}

type AlertIdentity = (
    hifind::report::AlertKind,
    Option<u32>,
    Option<u32>,
    Option<u16>,
);

fn alert_identities(log: &hifind::report::AlertLog, phase: Phase) -> Vec<AlertIdentity> {
    let mut ids: Vec<_> = log.alerts(phase).iter().map(|a| a.identity()).collect();
    ids.sort();
    ids
}

/// Captures the combined snapshot of every closed interval, encoded
/// canonically so equality is byte-exact.
#[derive(Default)]
struct SnapshotTap {
    closed: Mutex<Vec<(u64, Vec<u8>)>>,
}

impl CollectObserver for SnapshotTap {
    fn interval_closed(
        &self,
        interval: u64,
        snapshot: &IntervalSnapshot,
        _outcome: &IntervalOutcome,
        _contributors: usize,
        _expected: usize,
    ) {
        let frame = wire::encode_frame(0, interval, snapshot).expect("encodable snapshot");
        self.closed.lock().unwrap().push((interval, frame));
    }
}

const AGENTS: usize = 1000;
const MID_TIER: usize = 10;
const FAN_IN: usize = AGENTS / MID_TIER;

#[test]
#[ignore = "heavyweight (1000 agents over loopback); CI runs it in release via --include-ignored"]
fn thousand_agents_through_three_tiers_equal_flat_run() {
    let t0 = std::time::Instant::now();
    let stage = |name: &str| eprintln!("[hierarchy {:>6.1}s] {name}", t0.elapsed().as_secs_f64());
    let seed = 2026;
    // CI-sized sketches, sensitive threshold: identical detection with
    // zero alerts on both sides would be a vacuous pass. The sketches are
    // shrunk well below `small` and the interval stretched to bound the
    // frame volume — 1000 agents × 6 intervals is 6000 frames either way,
    // and at `small` sizes each one costs ~1.4 MB and ~20 ms to decode.
    let mut cfg = HiFindConfig::small(seed);
    cfg.interval_ms = 600_000;
    cfg.threshold_per_sec = 0.25;
    cfg.rs64.buckets = 1 << 8;
    cfg.rs48.buckets = 1 << 6;
    cfg.twod.x_buckets = 1 << 6;
    cfg.os.buckets = 1 << 10;
    cfg.active_service_bloom_bits = 1 << 14;
    let (trace, _) = presets::nu_like(seed).scaled(0.05).generate();
    assert!(!trace.is_empty());
    stage("trace generated");
    let base = trace.iter().next().unwrap().ts_ms / cfg.interval_ms;
    let last = trace.iter().last().unwrap().ts_ms / cfg.interval_ms;
    let n = (last - base + 1) as usize;

    // Flat reference: one recorder saw all traffic; one core detected on
    // its snapshots. Also keep the per-interval snapshots for the
    // bit-identity assertion.
    let mut single = HiFind::new(cfg).expect("config");
    let single_log = single.run_trace(&trace);
    let mut flat_recorder = SketchRecorder::new(&cfg).expect("config");
    let flat_windows = global_windows(&trace, cfg.interval_ms, base, n);
    let flat_frames: Vec<Vec<u8>> = flat_windows
        .iter()
        .enumerate()
        .map(|(iv, window)| {
            for p in window {
                flat_recorder.record(p);
            }
            wire::encode_frame(0, iv as u64, &flat_recorder.take_snapshot()).expect("encodable")
        })
        .collect();
    stage("flat reference done");

    // Agents are driven sequentially below (CI cores are scarce), so the
    // last mid-tier node's first upstream frame lands many minutes after
    // the first one's. Intervals close on *completeness* — every expected
    // child contributing — so a straggler deadline far beyond the whole
    // drive costs nothing here; it only must never fire.
    let deadline = Duration::from_secs(3600);

    // Root collector expects the 10 mid-tier node ids as its "routers".
    let tap = Arc::new(SnapshotTap::default());
    let mut root_cfg = CollectorConfig::new(MID_TIER);
    root_cfg.straggler_deadline = deadline;
    root_cfg.reorder_window = 64;
    root_cfg.observer = Some(tap.clone());
    let root = Collector::bind("127.0.0.1:0", cfg, root_cfg, None).expect("bind root");
    let upstream = root.local_addr().to_string();

    // Ten mid-tier aggregators, each fanning in 100 agents.
    let aggs: Vec<_> = (0..MID_TIER)
        .map(|node| {
            let mut acfg = AggregatorConfig::new(node as u32, FAN_IN);
            acfg.straggler_deadline = deadline;
            acfg.reorder_window = 64;
            Aggregator::bind("127.0.0.1:0", upstream.clone(), cfg, acfg, None).expect("bind mid")
        })
        .collect();
    let mid_addrs: Vec<String> = aggs.iter().map(|a| a.local_addr().to_string()).collect();

    // 1000 agents, driven sequentially (CI cores are scarce; the tree's
    // reorder windows absorb the resulting skew). Each agent replays its
    // per-packet split of the same trace on the shared interval grid.
    for (id, part) in split_per_packet(&trace, AGENTS, seed ^ 0x60D)
        .iter()
        .enumerate()
    {
        let windows = global_windows(part, cfg.interval_ms, base, n);
        let mut agent = RouterAgent::new(
            mid_addrs[id / FAN_IN].clone(),
            &cfg,
            AgentConfig::new(id as u32),
        )
        .expect("config");
        for window in &windows {
            for p in window {
                agent.record(p);
            }
            agent.end_interval();
        }
        let stats = agent.finish();
        assert_eq!(stats.frames_shipped, n as u64, "agent {id} shipped all");
        assert_eq!(stats.frames_dropped, 0, "agent {id} dropped none");
        if (id + 1) % 200 == 0 {
            stage(&format!("{} agents driven", id + 1));
        }
    }

    // Every mid-tier node saw exactly its 100 children, assembled every
    // interval completely, and shipped every sum upstream.
    for agg in aggs {
        let report = agg.wait().expect("aggregator threads");
        let node = report.node_id;
        assert_eq!(report.frames_received, (FAN_IN * n) as u64, "node {node}");
        assert_eq!(report.intervals_forwarded, n as u64, "node {node}");
        assert_eq!(report.complete_intervals, n as u64, "node {node}");
        assert_eq!(report.partial_intervals, 0, "node {node}");
        assert_eq!(report.gap_intervals, 0, "node {node}");
        assert_eq!(report.frames_rejected, 0, "node {node}");
        assert_eq!(report.frames_unshipped, 0, "node {node}");
        assert_eq!(report.children_seen.len(), FAN_IN, "node {node}");
    }
    stage("mid tier drained");
    let report = root.wait().expect("collector threads");
    stage("root drained");

    // The root saw ten complete "routers" — the aggregators.
    assert_eq!(report.intervals_flushed, n as u64);
    assert_eq!(report.complete_intervals, n as u64);
    assert_eq!(report.partial_intervals, 0);
    assert_eq!(report.gap_intervals, 0);
    assert_eq!(report.frames_received, (MID_TIER * n) as u64);
    assert_eq!(report.frames_rejected, 0);
    let mut routers = report.routers_seen.clone();
    routers.sort_unstable();
    assert_eq!(routers, (0..MID_TIER as u32).collect::<Vec<_>>());

    // Snapshot-for-snapshot: the root's combined interval sketches are
    // byte-identical to the flat recorder's (sketch linearity through two
    // levels of interior summation).
    let mut closed = tap.closed.lock().unwrap().clone();
    closed.sort_by_key(|(iv, _)| *iv);
    assert_eq!(closed.len(), n);
    for (iv, frame) in &closed {
        assert_eq!(
            frame, &flat_frames[*iv as usize],
            "interval {iv} diverged from the flat run"
        );
    }

    // Alert-for-alert, at every phase of the pipeline.
    for phase in [Phase::Raw, Phase::AfterClassification, Phase::Final] {
        assert_eq!(
            alert_identities(&single_log, phase),
            alert_identities(&report.log, phase),
            "phase {phase:?} diverged between flat and 3-tier runs"
        );
    }
    assert!(
        !alert_identities(&single_log, Phase::Raw).is_empty(),
        "trace must actually trigger detection for the equivalence to mean anything"
    );
}

/// Threads this process is running, per the kernel.
#[cfg(target_os = "linux")]
fn num_threads() -> u64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("/proc/self/stat");
    // Field 20 (1-based), counted after the parenthesised comm field,
    // which may itself contain spaces.
    let after_comm = &stat[stat.rfind(')').expect("comm field") + 2..];
    after_comm
        .split_whitespace()
        .nth(17)
        .expect("num_threads field")
        .parse()
        .expect("numeric num_threads")
}

#[cfg(target_os = "linux")]
#[test]
fn engine_serves_hundreds_of_connections_without_thread_per_connection() {
    const CONNS: usize = 300;
    let seed = 5;
    let cfg = HiFindConfig::small(seed);
    let registry = Registry::new();
    let mut ccfg = CollectorConfig::new(CONNS);
    ccfg.straggler_deadline = Duration::from_secs(60);
    let handle =
        Collector::bind("127.0.0.1:0", cfg, ccfg, Some(registry.clone())).expect("bind loopback");
    let addr = handle.local_addr();

    let before = num_threads();
    let mut streams = Vec::with_capacity(CONNS);
    for i in 0..CONNS {
        streams.push(
            std::net::TcpStream::connect(addr)
                .unwrap_or_else(|e| panic!("connection {i} refused: {e}")),
        );
    }
    // Wait until the engine has accepted them all.
    let connected = |r: &Registry| match r.snapshot().get("hifind_collect_routers_connected") {
        Some(MetricValue::Gauge { value }) => *value,
        other => panic!("routers_connected: {other:?}"),
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while connected(&registry) < CONNS as i64 {
        assert!(
            std::time::Instant::now() < deadline,
            "engine accepted only {} of {CONNS} connections",
            connected(&registry)
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    let during = num_threads();
    assert!(
        during <= before + 2,
        "thread count grew from {before} to {during} under {CONNS} connections — \
         the engine must not spawn per-connection threads"
    );
    drop(streams);
    let report = handle.stop().expect("collector threads");
    assert_eq!(report.frames_received, 0);
}
