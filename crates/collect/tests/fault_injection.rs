//! Deterministic fault injection between agents and the collector.
//!
//! Every fault class the [`hifind_collect::faults`] proxy can inject —
//! drop, duplicate, reorder, delay, truncate, bit-flip, connection kill —
//! gets a scenario here, each asserting the paper's resilience posture:
//! the collection site *degrades* (gaps, partial intervals, rejected
//! frames, all counted in the report and telemetry) and never panics,
//! stalls, or silently combines corrupt counters. Faults that preserve
//! frame content (duplicate, reorder, delay) must additionally leave the
//! final alerts identical to an undisturbed run.

use hifind::report::{AlertKind, Phase};
use hifind::{HiFind, HiFindConfig};
use hifind_collect::{
    AgentConfig, Aggregator, AggregatorConfig, CheckpointPolicy, CollectObserver, Collector,
    CollectorConfig, FaultPlan, FaultProxy, RouterAgent,
};
use hifind_flow::{Ip4, Packet, Trace};
use hifind_telemetry::registry::MetricValue;
use hifind_telemetry::Registry;
use std::sync::Mutex;
use std::time::Duration;

type AlertIdentity = (
    hifind::report::AlertKind,
    Option<u32>,
    Option<u32>,
    Option<u16>,
);

fn alert_identities(log: &hifind::report::AlertLog, phase: Phase) -> Vec<AlertIdentity> {
    let mut ids: Vec<_> = log.alerts(phase).iter().map(|a| a.identity()).collect();
    ids.sort();
    ids
}

fn counter(registry: &Registry, name: &str) -> u64 {
    match registry
        .snapshot()
        .metrics
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .value
    {
        MetricValue::Counter { value } => value,
        ref other => panic!("{name}: expected counter, got {other:?}"),
    }
}

/// Five intervals of benign traffic with a SYN flood from interval 2 on.
fn flood_trace(cfg: &HiFindConfig) -> Trace {
    let mut t = Trace::new();
    let victim: Ip4 = [129, 105, 0, 1].into();
    for iv in 0..5u64 {
        let b = iv * cfg.interval_ms;
        for i in 0..30u32 {
            let c: Ip4 = [9, 9, 9, (i % 100) as u8].into();
            t.push(Packet::syn(b + u64::from(i) * 7, c, 4000, victim, 80));
            t.push(Packet::syn_ack(
                b + u64::from(i) * 7 + 1,
                c,
                4000,
                victim,
                80,
            ));
        }
        if iv >= 2 {
            for i in 0..400u32 {
                t.push(Packet::syn(
                    b + 300 + u64::from(i),
                    Ip4::new(0x5100_0000 + i),
                    2000,
                    victim,
                    80,
                ));
            }
        }
    }
    t.sort_by_time();
    t
}

/// `n` identical light benign intervals — cheap frames for the scenarios
/// where only the transport (not detection content) is under test.
fn steady_windows(n: usize) -> Vec<Vec<Packet>> {
    (0..n)
        .map(|_| {
            let mut w = Vec::new();
            for i in 0..40u32 {
                let c: Ip4 = [9, 9, (i % 3) as u8, (i % 100) as u8].into();
                let s: Ip4 = [129, 105, 0, (i % 5) as u8].into();
                w.push(Packet::syn(u64::from(i), c, 4000 + i as u16, s, 80));
                w.push(Packet::syn_ack(u64::from(i) + 1, c, 4000 + i as u16, s, 80));
            }
            w
        })
        .collect()
}

fn flood_windows(cfg: &HiFindConfig) -> Vec<Vec<Packet>> {
    let trace = flood_trace(cfg);
    let mut out = vec![Vec::new(); 5];
    for p in trace.iter() {
        out[(p.ts_ms / cfg.interval_ms) as usize].push(*p);
    }
    out
}

/// Everything one faulted run produced.
struct FaultedRun {
    report: hifind_collect::CollectionReport,
    stats: hifind_collect::FaultStats,
    registry: Registry,
}

/// Runs one agent shipping `windows` through a fault proxy with `plan`
/// into a single-router collector; `deadline` tunes how fast missing
/// frames degrade to gaps. The run itself is the no-panic assertion:
/// both the collector's threads and the proxy's are joined and their
/// typed reports returned.
fn run_faulted(
    cfg: HiFindConfig,
    windows: &[Vec<Packet>],
    plan: FaultPlan,
    deadline: Duration,
) -> FaultedRun {
    let registry = Registry::new();
    let mut ccfg = CollectorConfig::new(1);
    ccfg.straggler_deadline = deadline;
    ccfg.linger = Duration::from_millis(300);
    let handle =
        Collector::bind("127.0.0.1:0", cfg, ccfg, Some(registry.clone())).expect("bind loopback");
    let proxy = FaultProxy::spawn(handle.local_addr(), plan, Some(&registry)).expect("spawn proxy");
    let mut agent = RouterAgent::new(proxy.local_addr().to_string(), &cfg, AgentConfig::new(0))
        .expect("agent config");
    for window in windows {
        for p in window {
            agent.record(p);
        }
        agent.end_interval();
    }
    agent.finish();
    let report = handle.wait().expect("collector never panics under faults");
    let stats = proxy.stop().expect("proxy never panics");
    FaultedRun {
        report,
        stats,
        registry,
    }
}

#[test]
fn faithful_proxy_is_transparent() {
    let cfg = HiFindConfig::small(2026);
    let mut single = HiFind::new(cfg).expect("config");
    let reference = single.run_trace(&flood_trace(&cfg));
    let run = run_faulted(
        cfg,
        &flood_windows(&cfg),
        FaultPlan::new(1),
        Duration::from_secs(30),
    );
    assert_eq!(run.stats.frames_seen, 5);
    assert_eq!(
        run.stats.dropped + run.stats.duplicated + run.stats.reordered,
        0
    );
    assert_eq!(run.report.complete_intervals, 5);
    for phase in [Phase::Raw, Phase::AfterClassification, Phase::Final] {
        assert_eq!(
            alert_identities(&reference, phase),
            alert_identities(&run.report.log, phase),
            "a no-fault proxy must be invisible at phase {phase:?}"
        );
    }
    assert!(
        !alert_identities(&reference, Phase::Raw).is_empty(),
        "the flood must trigger detection for the equivalences here to bite"
    );
}

#[test]
fn dropped_frames_become_counted_gaps() {
    let cfg = HiFindConfig::small(3);
    let mut plan = FaultPlan::new(0xD0);
    plan.drop_ppm = 500_000;
    let run = run_faulted(cfg, &steady_windows(12), plan, Duration::from_millis(200));
    assert!(
        run.stats.dropped > 0 && run.stats.dropped < run.stats.frames_seen,
        "seed must exercise both paths: {:?}",
        run.stats
    );
    // Every surviving frame is accepted; every dropped one degrades to a
    // gap (or a never-proven trailing interval), never a stall or panic.
    assert_eq!(
        run.report.frames_received,
        run.stats.frames_seen - run.stats.dropped
    );
    assert_eq!(run.report.complete_intervals, run.report.frames_received);
    assert_eq!(
        run.report.gap_intervals,
        run.report.intervals_flushed - run.report.complete_intervals
    );
    assert_eq!(
        counter(&run.registry, "hifind_collect_fault_dropped_total"),
        run.stats.dropped
    );
}

#[test]
fn duplicated_frames_are_counted_late_and_detection_is_unchanged() {
    let cfg = HiFindConfig::small(2026);
    let mut single = HiFind::new(cfg).expect("config");
    let reference = single.run_trace(&flood_trace(&cfg));
    let mut plan = FaultPlan::new(0xD1);
    plan.dup_ppm = 600_000;
    let run = run_faulted(cfg, &flood_windows(&cfg), plan, Duration::from_secs(30));
    assert!(run.stats.duplicated > 0, "{:?}", run.stats);
    assert_eq!(run.report.frames_late, run.stats.duplicated);
    assert_eq!(run.report.complete_intervals, 5);
    for phase in [Phase::Raw, Phase::AfterClassification, Phase::Final] {
        assert_eq!(
            alert_identities(&reference, phase),
            alert_identities(&run.report.log, phase),
            "duplicates must be deduplicated, not double-combined (phase {phase:?})"
        );
    }
    assert_eq!(
        counter(&run.registry, "hifind_collect_fault_duplicated_total"),
        run.stats.duplicated
    );
}

#[test]
fn reordered_frames_realign_inside_the_window() {
    let cfg = HiFindConfig::small(2026);
    let mut single = HiFind::new(cfg).expect("config");
    let reference = single.run_trace(&flood_trace(&cfg));
    let mut plan = FaultPlan::new(0xD2);
    plan.reorder_ppm = 600_000;
    let run = run_faulted(cfg, &flood_windows(&cfg), plan, Duration::from_secs(30));
    assert!(run.stats.reordered > 0, "{:?}", run.stats);
    assert_eq!(run.report.complete_intervals, 5);
    for phase in [Phase::Raw, Phase::AfterClassification, Phase::Final] {
        assert_eq!(
            alert_identities(&reference, phase),
            alert_identities(&run.report.log, phase),
            "interval-indexed frames must realign after reordering (phase {phase:?})"
        );
    }
    assert_eq!(
        counter(&run.registry, "hifind_collect_fault_reordered_total"),
        run.stats.reordered
    );
}

#[test]
fn delayed_frames_still_align() {
    let cfg = HiFindConfig::small(2026);
    let mut single = HiFind::new(cfg).expect("config");
    let reference = single.run_trace(&flood_trace(&cfg));
    let mut plan = FaultPlan::new(0xD3);
    plan.delay_ppm = 600_000;
    plan.delay = Duration::from_millis(30);
    let run = run_faulted(cfg, &flood_windows(&cfg), plan, Duration::from_secs(30));
    assert!(run.stats.delayed > 0, "{:?}", run.stats);
    assert_eq!(run.report.complete_intervals, 5);
    for phase in [Phase::Raw, Phase::AfterClassification, Phase::Final] {
        assert_eq!(
            alert_identities(&reference, phase),
            alert_identities(&run.report.log, phase),
            "delays inside the straggler deadline are invisible (phase {phase:?})"
        );
    }
    assert_eq!(
        counter(&run.registry, "hifind_collect_fault_delayed_total"),
        run.stats.delayed
    );
}

#[test]
fn truncated_frames_tear_the_connection_not_the_collector() {
    let cfg = HiFindConfig::small(5);
    let mut plan = FaultPlan::new(0xD4);
    plan.truncate_ppm = 300_000;
    let run = run_faulted(cfg, &steady_windows(12), plan, Duration::from_millis(200));
    assert!(run.stats.truncated > 0, "{:?}", run.stats);
    assert!(
        run.stats.conn_kills >= run.stats.truncated,
        "truncation tears the connection: {:?}",
        run.stats
    );
    // The half-written frame can never be combined: the collector sees a
    // mid-frame hangup and discards the fragment.
    assert!(run.report.frames_received < run.stats.frames_seen);
    assert_eq!(
        counter(&run.registry, "hifind_collect_fault_truncated_total"),
        run.stats.truncated
    );
}

#[test]
fn bitflipped_frames_are_rejected_by_crc_not_combined() {
    let cfg = HiFindConfig::small(7);
    let mut plan = FaultPlan::new(0xD5);
    plan.bitflip_ppm = 400_000;
    let run = run_faulted(cfg, &steady_windows(12), plan, Duration::from_millis(200));
    assert!(run.stats.bitflipped > 0, "{:?}", run.stats);
    // Single-bit payload corruption is always caught by the frame CRC and
    // surfaces as a typed rejection, never as poisoned counters.
    assert_eq!(run.report.frames_rejected, run.stats.bitflipped);
    assert_eq!(
        run.report.frames_received,
        run.stats.frames_seen - run.stats.bitflipped
    );
    assert_eq!(
        counter(&run.registry, "hifind_collect_fault_bitflipped_total"),
        run.stats.bitflipped
    );
    assert_eq!(
        counter(&run.registry, "hifind_collect_frames_rejected_total"),
        run.stats.bitflipped
    );
}

#[test]
fn connection_kills_force_reconnects_not_stalls() {
    let cfg = HiFindConfig::small(11);
    let mut plan = FaultPlan::new(0xD6);
    plan.kill_conn_every_frames = 3;
    let run = run_faulted(cfg, &steady_windows(12), plan, Duration::from_millis(300));
    assert!(run.stats.conn_kills > 0, "{:?}", run.stats);
    // The agent reconnects through the proxy and keeps shipping; frames
    // buffered inside a killed connection may be lost, but the interval
    // grid keeps advancing and the run terminates.
    assert!(run.report.frames_received > 0);
    assert_eq!(
        run.report.gap_intervals,
        run.report.intervals_flushed - run.report.complete_intervals
    );
    assert_eq!(
        counter(&run.registry, "hifind_collect_fault_conn_kills_total"),
        run.stats.conn_kills
    );
}

/// Drives one agent through `windows` against `addr`, ending one
/// interval per window, and returns it unfinished (connection open).
fn drive_windows(agent: &mut RouterAgent, windows: &[Vec<Packet>]) {
    for window in windows {
        for p in window {
            agent.record(p);
        }
        agent.end_interval();
    }
}

/// Every final alert must be the flood itself — a degraded tier must
/// never invent detections out of the traffic it *lost*.
fn assert_flood_only(log: &hifind::report::AlertLog) {
    let finals = log.alerts(Phase::Final);
    assert!(
        !finals.is_empty(),
        "the flood must still be detected through the degraded tier"
    );
    for alert in finals {
        assert_eq!(
            alert.identity().0,
            AlertKind::SynFlooding,
            "spurious non-flood alert after tier degradation: {alert:?}"
        );
    }
}

/// A mid-tier aggregator's upstream connection is killed mid-interval by
/// the fault proxy: the frame the proxy swallowed degrades that interval
/// to a quorum flush at the root — counted, never a stall or a spurious
/// alert — while the other aggregator's tier is untouched.
#[test]
fn mid_tier_upstream_kill_degrades_to_partials_at_the_root() {
    let cfg = HiFindConfig::small(2026);
    let registry = Registry::new();
    let mut rcfg = CollectorConfig::new(2);
    rcfg.straggler_deadline = Duration::from_secs(60);
    rcfg.reorder_window = 64;
    let root = Collector::bind("127.0.0.1:0", cfg, rcfg, Some(registry.clone())).expect("root");
    let root_addr = root.local_addr();
    // Keeps the root from lingering out between one tier's disconnect and
    // the next tier's connect.
    let hold = std::net::TcpStream::connect(root_addr).expect("hold connection");

    // Aggregator A ships upstream through a proxy that kills the
    // connection on its fourth frame; aggregator B ships directly.
    let mut plan = FaultPlan::new(0xA6);
    plan.kill_conn_every_frames = 3;
    let proxy = FaultProxy::spawn(root_addr, plan, None).expect("proxy");
    let tier = |node: u32, upstream: String| {
        let mut acfg = AggregatorConfig::new(node, 2);
        acfg.straggler_deadline = Duration::from_secs(60);
        acfg.reorder_window = 64;
        Aggregator::bind("127.0.0.1:0", upstream, cfg, acfg, None).expect("aggregator")
    };
    let a = tier(100, proxy.local_addr().to_string());
    let b = tier(200, root_addr.to_string());

    // A's tier carries benign traffic only; the flood rides B's tier, so
    // the kill on A's upstream can only ever *lose* benign evidence.
    let steady = steady_windows(5);
    let flood = flood_windows(&cfg);
    for (windows, addr, id) in [
        (&steady, a.local_addr(), 0u32),
        (&steady, a.local_addr(), 1),
        (&flood, b.local_addr(), 0),
        (&steady, b.local_addr(), 1),
    ] {
        let mut agent =
            RouterAgent::new(addr.to_string(), &cfg, AgentConfig::new(id)).expect("config");
        drive_windows(&mut agent, windows);
        agent.finish();
    }
    let a_report = a.wait().expect("aggregator A");
    let b_report = b.wait().expect("aggregator B");
    drop(hold);
    let report = root.wait().expect("root collector");
    let stats = proxy.stop().expect("proxy");

    // The kill fired, and it fired on A's path only.
    assert!(stats.conn_kills >= 1, "{stats:?}");
    assert_eq!(a_report.intervals_forwarded, 5);
    assert_eq!(a_report.gap_intervals, 0);
    assert_eq!(b_report.intervals_forwarded, 5);
    assert_eq!(b_report.frames_rejected, 0);

    // The swallowed frame(s) degrade those intervals to quorum flushes at
    // the root; everything else completes, nothing stalls or gaps.
    assert_eq!(report.intervals_flushed, 5);
    assert_eq!(report.gap_intervals, 0);
    assert_eq!(
        report.complete_intervals + report.partial_intervals,
        5,
        "{report:?}"
    );
    assert!(
        report.partial_intervals >= 1,
        "the kill swallowed at least one of A's sums: {report:?}"
    );
    assert_eq!(
        counter(&registry, "hifind_collect_straggler_slots_total"),
        report.straggler_slots
    );
    assert_flood_only(&report.log);
}

/// Captures which tier synthesized a gap for which interval.
#[derive(Default)]
struct TierTap {
    gaps: Mutex<Vec<(u32, u64)>>,
}

impl CollectObserver for TierTap {
    fn tier_gap(&self, node_id: u32, interval: u64) {
        self.gaps.lock().unwrap().push((node_id, interval));
    }
}

/// A mid-tier aggregator is killed outright between intervals and a
/// replacement resumes from its checkpoint: the interval lost while the
/// tier was down is synthesized as a gap *at that tier* (nothing — never
/// zeros — is forwarded for it), the root degrades that one interval to
/// quorum, and detection converges with no spurious alerts.
#[test]
fn killed_mid_tier_resumes_from_checkpoint_and_synthesizes_the_gap() {
    let cfg = HiFindConfig::small(2026);
    let dir = std::env::temp_dir().join(format!("hifind-midtier-kill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("agg.ckpt");

    let mut rcfg = CollectorConfig::new(2);
    rcfg.straggler_deadline = Duration::from_secs(60);
    rcfg.reorder_window = 64;
    let root = Collector::bind("127.0.0.1:0", cfg, rcfg, None).expect("root");
    let root_addr = root.local_addr().to_string();

    // Node 200 is a plain router shipping the flood directly to the root;
    // its open connection also keeps the root from lingering out while
    // node 100's tier is being killed and resumed.
    let mut flood_router =
        RouterAgent::new(root_addr.clone(), &cfg, AgentConfig::new(200)).expect("config");
    drive_windows(&mut flood_router, &flood_windows(&cfg));

    // Node 100: two agents behind an aggregator that checkpoints every
    // interval. A backlog of one frame means an interval that cannot ship
    // while the tier is down is genuinely lost, not replayed later.
    let mut acfg = AggregatorConfig::new(100, 2);
    acfg.straggler_deadline = Duration::from_secs(60);
    acfg.reorder_window = 64;
    let mut policy = CheckpointPolicy::new(&ckpt);
    policy.every_intervals = 1;
    acfg.checkpoint = Some(policy);
    let a1 = Aggregator::bind("127.0.0.1:0", root_addr.clone(), cfg, acfg.clone(), None)
        .expect("aggregator");
    let mut agents: Vec<RouterAgent> = (0..2)
        .map(|id| {
            let mut agent_cfg = AgentConfig::new(id);
            agent_cfg.max_backlog_frames = 1;
            agent_cfg.max_attempts = 2;
            agent_cfg.initial_backoff = Duration::from_millis(10);
            agent_cfg.max_backoff = Duration::from_millis(20);
            RouterAgent::new(a1.local_addr().to_string(), &cfg, agent_cfg).expect("config")
        })
        .collect();
    let steady = steady_windows(5);
    for agent in &mut agents {
        drive_windows(agent, &steady[0..2]);
    }
    // Let the engine hand the shipped frames to the merger before the
    // kill; both agents' flushes already returned success.
    std::thread::sleep(Duration::from_millis(300));
    let report1 = a1.stop().expect("first incarnation");
    assert_eq!(report1.frames_received, 4);
    assert_eq!(report1.intervals_forwarded, 2);
    assert_eq!(report1.complete_intervals, 2);
    assert!(report1.checkpoints_written >= 1, "{report1:?}");

    // The tier is down: interval 2 cannot ship anywhere and the one-frame
    // backlog will evict it when interval 3 arrives.
    for agent in &mut agents {
        drive_windows(agent, &steady[2..3]);
    }

    // A replacement resumes from the checkpoint on a fresh port.
    let tap = std::sync::Arc::new(TierTap::default());
    acfg.resume_from = Some(ckpt.clone());
    acfg.observer = Some(tap.clone());
    let a2 = Aggregator::bind("127.0.0.1:0", root_addr, cfg, acfg, None).expect("resume");
    for agent in &mut agents {
        agent.set_collector_addr(a2.local_addr().to_string());
    }
    for mut agent in agents {
        drive_windows(&mut agent, &steady[3..5]);
        agent.finish();
    }
    let report2 = a2.wait().expect("second incarnation");
    assert_eq!(report2.resumed_at_interval, Some(2), "{report2:?}");
    assert_eq!(report2.frames_received, 4, "intervals 3 and 4, twice each");
    assert_eq!(report2.intervals_forwarded, 2);
    assert_eq!(
        report2.gap_intervals, 1,
        "the lost interval becomes a gap at THIS tier: {report2:?}"
    );
    assert_eq!(
        *tap.gaps.lock().unwrap(),
        vec![(100, 2)],
        "the tier forwarded nothing for the lost interval"
    );

    flood_router.finish();
    let report = root.wait().expect("root collector");
    // The root saw node 100 for intervals 0, 1, 3, 4 and node 200 for all
    // five: exactly one quorum flush, no gaps, no stall.
    assert_eq!(report.intervals_flushed, 5);
    assert_eq!(report.complete_intervals, 4);
    assert_eq!(report.partial_intervals, 1);
    assert_eq!(report.gap_intervals, 0);
    assert_eq!(report.straggler_slots, 1);
    assert_flood_only(&report.log);
    std::fs::remove_dir_all(&dir).ok();
}

/// All fault classes at once, across two seeds: the collector's only
/// obligations under arbitrary transport chaos are to terminate, to keep
/// every degradation counted, and to never accept a corrupt frame.
#[test]
fn chaos_mix_terminates_with_consistent_accounting() {
    for seed in [31u64, 32] {
        let cfg = HiFindConfig::small(13);
        let mut plan = FaultPlan::new(seed);
        plan.drop_ppm = 120_000;
        plan.dup_ppm = 120_000;
        plan.reorder_ppm = 120_000;
        plan.delay_ppm = 120_000;
        plan.delay = Duration::from_millis(10);
        plan.truncate_ppm = 60_000;
        plan.bitflip_ppm = 120_000;
        plan.kill_conn_every_frames = 7;
        let run = run_faulted(cfg, &steady_windows(12), plan, Duration::from_millis(200));
        let s = run.stats;
        assert!(
            s.dropped
                + s.duplicated
                + s.reordered
                + s.delayed
                + s.truncated
                + s.bitflipped
                + s.conn_kills
                > 0,
            "chaos seed {seed} injected nothing: {s:?}"
        );
        // Telemetry and the proxy's own stats must tell the same story.
        for (metric, value) in [
            ("hifind_collect_fault_frames_total", s.frames_seen),
            ("hifind_collect_fault_dropped_total", s.dropped),
            ("hifind_collect_fault_duplicated_total", s.duplicated),
            ("hifind_collect_fault_reordered_total", s.reordered),
            ("hifind_collect_fault_delayed_total", s.delayed),
            ("hifind_collect_fault_truncated_total", s.truncated),
            ("hifind_collect_fault_bitflipped_total", s.bitflipped),
            ("hifind_collect_fault_conn_kills_total", s.conn_kills),
        ] {
            assert_eq!(
                counter(&run.registry, metric),
                value,
                "seed {seed}: {metric}"
            );
        }
        // Accounting closes: every flushed interval is complete, partial,
        // or an explicit gap; corrupt frames were rejected, not combined.
        assert_eq!(
            run.report.intervals_flushed,
            run.report.complete_intervals + run.report.partial_intervals + run.report.gap_intervals,
            "seed {seed}: {:?}",
            run.report
        );
        // Every counted bit-flip was forwarded and rejected; a flipped
        // frame that was *also* duplicated is rejected twice.
        assert!(run.report.frames_rejected >= s.bitflipped, "seed {seed}");
    }
}
