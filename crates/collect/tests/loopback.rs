//! End-to-end networked collection over real loopback TCP.
//!
//! The paper's §5.3.2 claim, operationalised: three router agents, each
//! seeing a per-packet split of the same NU-like trace, ship their sketch
//! snapshots over TCP to one collector — and the aggregate detection is
//! alert-for-alert identical to a single router that saw everything. A
//! second test kills one agent mid-run and checks the collector degrades
//! to quorum detection instead of stalling.

use hifind::report::Phase;
use hifind::{HiFind, HiFindConfig};
use hifind_collect::{AgentConfig, Collector, CollectorConfig, RouterAgent};
use hifind_flow::{Ip4, Packet, Trace};
use hifind_telemetry::registry::MetricValue;
use hifind_telemetry::Registry;
use hifind_trafficgen::{presets, split_per_packet};
use std::time::Duration;

/// Buckets `part`'s packets into the merged trace's interval grid, so
/// every router ends exactly `n` intervals in lockstep — window `i`
/// always means the same wall-clock slice on every router.
fn global_windows(part: &Trace, interval_ms: u64, base: u64, n: usize) -> Vec<Vec<Packet>> {
    let mut windows = vec![Vec::new(); n];
    for p in part.iter() {
        let idx = (p.ts_ms / interval_ms - base) as usize;
        windows[idx].push(*p);
    }
    windows
}

type AlertIdentity = (
    hifind::report::AlertKind,
    Option<u32>,
    Option<u32>,
    Option<u16>,
);

fn alert_identities(log: &hifind::report::AlertLog, phase: Phase) -> Vec<AlertIdentity> {
    let mut ids: Vec<_> = log.alerts(phase).iter().map(|a| a.identity()).collect();
    ids.sort();
    ids
}

fn counter(registry: &Registry, name: &str) -> u64 {
    match registry
        .snapshot()
        .metrics
        .iter()
        .find(|m| m.name == name)
        .unwrap_or_else(|| panic!("metric {name} missing"))
        .value
    {
        MetricValue::Counter { value } => value,
        ref other => panic!("{name}: expected counter, got {other:?}"),
    }
}

#[test]
fn three_agents_over_tcp_equal_single_router() {
    let seed = 2026;
    // CI-sized sketches (identical semantics to paper-scale), and a
    // sensitive threshold so the scaled-down trace still raises alerts —
    // identical detection with zero alerts on both sides would be a
    // vacuous pass. Paper-length intervals keep the interval count (and
    // so the number of inference runs) small.
    let mut cfg = HiFindConfig::small(seed);
    cfg.interval_ms = 60_000;
    cfg.threshold_per_sec = 0.25;
    let (trace, _) = presets::nu_like(seed).scaled(0.05).generate();
    assert!(!trace.is_empty());

    // Reference: one router saw all traffic.
    let mut single = HiFind::new(cfg).expect("paper config");
    let single_log = single.run_trace(&trace);

    // Networked: the same packets split per packet across three agents.
    let base = trace.iter().next().unwrap().ts_ms / cfg.interval_ms;
    let last = trace.iter().last().unwrap().ts_ms / cfg.interval_ms;
    let n = (last - base + 1) as usize;
    let registry = Registry::new();
    // This test is about alignment identity, not deadline policy: a huge
    // straggler deadline means a slow CI box can never force a partial
    // flush and turn the assertions flaky.
    let mut ccfg = CollectorConfig::new(3);
    ccfg.straggler_deadline = Duration::from_secs(60);
    let handle =
        Collector::bind("127.0.0.1:0", cfg, ccfg, Some(registry.clone())).expect("bind loopback");
    let addr = handle.local_addr().to_string();
    // Real routers tick intervals off the same wall clock; the barrier
    // models that, keeping inter-agent skew under the reorder window.
    let tick = std::sync::Arc::new(std::sync::Barrier::new(3));
    let agents: Vec<_> = split_per_packet(&trace, 3, seed ^ 0x60D)
        .iter()
        .enumerate()
        .map(|(id, part)| {
            let windows = global_windows(part, cfg.interval_ms, base, n);
            let addr = addr.clone();
            let tick = std::sync::Arc::clone(&tick);
            std::thread::spawn(move || {
                let mut agent =
                    RouterAgent::new(addr, &cfg, AgentConfig::new(id as u32)).expect("config");
                for window in &windows {
                    tick.wait();
                    for p in window {
                        agent.record(p);
                    }
                    agent.end_interval();
                }
                agent.finish()
            })
        })
        .collect();
    for agent in agents {
        let stats = agent.join().expect("agent thread");
        assert_eq!(stats.frames_shipped, n as u64, "every interval shipped");
        assert_eq!(stats.frames_dropped, 0);
    }
    let report = handle.wait().expect("collector threads");

    // Every interval aligned and complete; nothing late, lost or partial.
    assert_eq!(report.intervals_flushed, n as u64, "{report:?}");
    assert_eq!(report.complete_intervals, n as u64, "{report:?}");
    assert_eq!(report.partial_intervals, 0);
    assert_eq!(report.gap_intervals, 0);
    assert_eq!(report.frames_received, 3 * n as u64);
    assert_eq!(report.frames_late, 0);
    assert_eq!(report.frames_rejected, 0);
    assert_eq!(report.straggler_slots, 0);
    let mut routers = report.routers_seen.clone();
    routers.sort_unstable();
    assert_eq!(routers, vec![0, 1, 2]);

    // The §5.3.2 equivalence, now across real sockets: identical alerts
    // at every phase of the pipeline.
    for phase in [Phase::Raw, Phase::AfterClassification, Phase::Final] {
        assert_eq!(
            alert_identities(&single_log, phase),
            alert_identities(&report.log, phase),
            "phase {phase:?} diverged between single-router and networked runs"
        );
    }
    assert!(
        !alert_identities(&single_log, Phase::Raw).is_empty(),
        "trace must actually trigger detection for the equivalence to mean anything"
    );

    // Telemetry saw the run too.
    assert_eq!(
        counter(&registry, "hifind_collect_frames_received_total"),
        3 * n as u64
    );
    assert!(counter(&registry, "hifind_collect_bytes_received_total") > 0);
    assert_eq!(
        counter(&registry, "hifind_collect_frames_rejected_total"),
        0
    );
}

/// A compact five-interval trace: two benign intervals establish the
/// forecast baseline, then a SYN flood loud enough that two of three
/// routers still carry it far over the threshold.
fn flood_trace(cfg: &HiFindConfig) -> Trace {
    let mut t = Trace::new();
    let victim: Ip4 = [129, 105, 0, 1].into();
    for iv in 0..5u64 {
        let b = iv * cfg.interval_ms;
        for i in 0..30u32 {
            let c: Ip4 = [9, 9, 9, (i % 100) as u8].into();
            t.push(Packet::syn(b + u64::from(i) * 7, c, 4000, victim, 80));
            t.push(Packet::syn_ack(
                b + u64::from(i) * 7 + 1,
                c,
                4000,
                victim,
                80,
            ));
        }
        if iv >= 2 {
            for i in 0..400u32 {
                t.push(Packet::syn(
                    b + 300 + u64::from(i),
                    Ip4::new(0x5100_0000 + i),
                    2000,
                    victim,
                    80,
                ));
            }
        }
    }
    t.sort_by_time();
    t
}

#[test]
fn dead_agent_degrades_to_quorum_instead_of_stalling() {
    let seed = 77;
    let cfg = HiFindConfig::small(seed);
    let trace = flood_trace(&cfg);
    let mut ccfg = CollectorConfig::new(3);
    ccfg.straggler_deadline = Duration::from_millis(300);
    ccfg.linger = Duration::from_millis(200);
    let registry = Registry::new();
    let handle =
        Collector::bind("127.0.0.1:0", cfg, ccfg, Some(registry.clone())).expect("bind loopback");
    let addr = handle.local_addr().to_string();
    let parts = split_per_packet(&trace, 3, seed);
    let windows: Vec<_> = parts
        .iter()
        .map(|p| global_windows(p, cfg.interval_ms, 0, 5))
        .collect();
    let threads: Vec<_> = windows
        .into_iter()
        .enumerate()
        .map(|(id, windows)| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut agent =
                    RouterAgent::new(addr, &cfg, AgentConfig::new(id as u32)).expect("config");
                for (iv, window) in windows.iter().enumerate() {
                    // Router 2 dies after shipping two intervals: its
                    // socket drops and it never reports again.
                    if id == 2 && iv >= 2 {
                        return agent.finish();
                    }
                    for p in window {
                        agent.record(p);
                    }
                    agent.end_interval();
                }
                agent.finish()
            })
        })
        .collect();
    for t in threads {
        t.join().expect("agent thread");
    }

    // This join is itself the liveness assertion: a collector that waited
    // forever for router 2 would hang the test (CI enforces a timeout).
    let report = handle.wait().expect("collector threads");
    assert_eq!(report.intervals_flushed, 5, "all intervals still detected");
    assert_eq!(report.complete_intervals, 2);
    assert_eq!(
        report.partial_intervals, 3,
        "quorum detection after deadline"
    );
    assert_eq!(
        report.straggler_slots, 3,
        "one missing router × 3 intervals"
    );
    assert_eq!(report.frames_received, 2 * 5 + 2);
    // Telemetry exposes the degradation for operators.
    assert_eq!(
        counter(&registry, "hifind_collect_straggler_slots_total"),
        3
    );
    // And the pipeline kept emitting: the flood is loud enough that two
    // of three routers still carry it over the threshold.
    assert!(
        report
            .log
            .count(Phase::Final, hifind::report::AlertKind::SynFlooding)
            >= 1,
        "quorum view must still detect the flood: {:?}",
        report.log
    );
}
