//! Crash/resume equivalence for the collection site.
//!
//! The durability contract: a collection site killed after any interval
//! and restarted from its checkpoint must end the run with exactly the
//! final alerts an uninterrupted site would have raised. The property
//! test drives that through the *serialized* checkpoint (container
//! header, CRC, varint payload), not just the in-memory state, so the
//! codec itself is inside the proved loop. A second test restarts a real
//! TCP collector mid-stream, and a third checks a multi-interval outage
//! raises nothing spurious once traffic returns.

use hifind::pipeline::DetectionCore;
use hifind::report::Phase;
use hifind::{HiFind, HiFindConfig, IntervalSnapshot, SketchRecorder};
use hifind_collect::checkpoint::{
    decode_core_checkpoint, encode_core_checkpoint, read_core_checkpoint,
};
use hifind_collect::{AgentConfig, CheckpointPolicy, Collector, CollectorConfig, RouterAgent};
use hifind_flow::{Ip4, Packet, Trace};
use proptest::prelude::*;
use std::path::PathBuf;
use std::time::Duration;

type AlertIdentity = (
    hifind::report::AlertKind,
    Option<u32>,
    Option<u32>,
    Option<u16>,
);

fn alert_identities(log: &hifind::report::AlertLog, phase: Phase) -> Vec<AlertIdentity> {
    let mut ids: Vec<_> = log.alerts(phase).iter().map(|a| a.identity()).collect();
    ids.sort();
    ids
}

/// A unique scratch path under the system temp dir (no global state, so
/// parallel tests and reruns never collide).
fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hifind_{tag}_{}.ckpt", std::process::id()))
}

/// Five intervals of benign traffic with a SYN flood from interval 2 on —
/// loud enough that the scaled-down config still alerts, so equivalence
/// claims are never vacuous.
fn flood_trace(cfg: &HiFindConfig) -> Trace {
    let mut t = Trace::new();
    let victim: Ip4 = [129, 105, 0, 1].into();
    for iv in 0..5u64 {
        let b = iv * cfg.interval_ms;
        for i in 0..30u32 {
            let c: Ip4 = [9, 9, 9, (i % 100) as u8].into();
            t.push(Packet::syn(b + u64::from(i) * 7, c, 4000, victim, 80));
            t.push(Packet::syn_ack(
                b + u64::from(i) * 7 + 1,
                c,
                4000,
                victim,
                80,
            ));
        }
        if iv >= 2 {
            for i in 0..400u32 {
                t.push(Packet::syn(
                    b + 300 + u64::from(i),
                    Ip4::new(0x5100_0000 + i),
                    2000,
                    victim,
                    80,
                ));
            }
        }
    }
    t.sort_by_time();
    t
}

/// Buckets the trace into per-interval windows starting at interval 0.
fn windows(trace: &Trace, interval_ms: u64, n: usize) -> Vec<Vec<Packet>> {
    let mut out = vec![Vec::new(); n];
    for p in trace.iter() {
        out[(p.ts_ms / interval_ms) as usize].push(*p);
    }
    out
}

/// One snapshot per interval of the flood trace under `cfg`.
fn flood_snapshots(cfg: &HiFindConfig) -> Vec<IntervalSnapshot> {
    let trace = flood_trace(cfg);
    let mut rec = SketchRecorder::new(cfg).expect("small config");
    windows(&trace, cfg.interval_ms, 5)
        .iter()
        .map(|window| {
            for p in window {
                rec.record(p);
            }
            rec.take_snapshot()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill the site after `kill` intervals, serialize its checkpoint
    /// through the binary container, restore, and finish the run: every
    /// phase of the alert log must be identity-identical to the
    /// uninterrupted run — across seeds (distinct sketch hash functions)
    /// and every possible kill point.
    #[test]
    fn resume_equivalence_over_kill_points(
        seed_pick in any::<u64>(),
        kill_pick in any::<u64>(),
    ) {
        let seed = [11u64, 77, 2026, 0xBEEF][(seed_pick % 4) as usize];
        let cfg = HiFindConfig::small(seed);
        let snaps = flood_snapshots(&cfg);
        let kill = (kill_pick % (snaps.len() as u64 + 1)) as usize;

        let mut reference = DetectionCore::new(cfg).expect("small config");
        for s in &snaps {
            reference.process_snapshot(s);
        }
        prop_assert!(
            !alert_identities(reference.log(), Phase::Raw).is_empty(),
            "the flood must trigger detection for equivalence to mean anything"
        );

        let mut first = DetectionCore::new(cfg).expect("small config");
        for s in &snaps[..kill] {
            first.process_snapshot(s);
        }
        let bytes = encode_core_checkpoint(&first.checkpoint());
        drop(first); // the site is dead; only the serialized bytes survive
        let decoded = decode_core_checkpoint(&bytes).expect("own checkpoint decodes");
        let mut resumed = DetectionCore::restore(cfg, &decoded).expect("restore");
        prop_assert_eq!(resumed.intervals_processed(), kill as u64);
        for s in &snaps[kill..] {
            resumed.process_snapshot(s);
        }

        for phase in [Phase::Raw, Phase::AfterClassification, Phase::Final] {
            prop_assert_eq!(
                alert_identities(reference.log(), phase),
                alert_identities(resumed.log(), phase),
                "phase {:?} diverged after kill at {}", phase, kill
            );
        }
    }
}

/// A real TCP collector is stopped after checkpointing, a second one
/// resumes from the file on a fresh port, and the agent is re-pointed at
/// it: the combined run's final alerts equal an uninterrupted single
/// router's.
#[test]
fn collector_restart_resumes_from_checkpoint() {
    let seed = 77;
    let cfg = HiFindConfig::small(seed);
    let trace = flood_trace(&cfg);
    let windows = windows(&trace, cfg.interval_ms, 5);
    let path = scratch("restart");
    let kill_after = 2usize;

    let mut single = HiFind::new(cfg).expect("small config");
    let reference = single.run_trace(&trace);
    assert!(
        !alert_identities(&reference, Phase::Raw).is_empty(),
        "the flood must trigger detection"
    );

    // First life: checkpoint after every flushed interval, then die.
    let mut ccfg = CollectorConfig::new(1);
    ccfg.straggler_deadline = Duration::from_secs(30);
    ccfg.linger = Duration::from_millis(100);
    ccfg.checkpoint = Some(CheckpointPolicy {
        path: path.clone(),
        every_intervals: 1,
    });
    let handle = Collector::bind("127.0.0.1:0", cfg, ccfg.clone(), None).expect("bind");
    let mut agent = RouterAgent::new(handle.local_addr().to_string(), &cfg, AgentConfig::new(0))
        .expect("agent config");
    for window in &windows[..kill_after] {
        for p in window {
            agent.record(p);
        }
        let ship = agent.end_interval();
        assert_eq!(ship.shipped, 1, "loopback ship");
    }
    // Give the aligner a moment to flush both intervals, then kill the
    // site. `stop` force-flushes and writes a final checkpoint, modelling
    // a clean SIGTERM; the bytes on disk are all that survives.
    std::thread::sleep(Duration::from_millis(300));
    let first_report = handle.stop().expect("first collector run");
    assert_eq!(first_report.intervals_flushed, kill_after as u64);
    assert!(
        first_report.checkpoints_written >= 1,
        "periodic checkpointing ran: {first_report:?}"
    );
    let on_disk = read_core_checkpoint(&path).expect("checkpoint readable");
    assert_eq!(on_disk.interval, kill_after as u64);

    // Second life: resume from the file on a fresh port; the agent is
    // re-pointed and ships the remaining intervals.
    ccfg.resume_from = Some(path.clone());
    let handle = Collector::bind("127.0.0.1:0", cfg, ccfg, None).expect("resume bind");
    agent.set_collector_addr(handle.local_addr().to_string());
    for window in &windows[kill_after..] {
        for p in window {
            agent.record(p);
        }
        agent.end_interval();
    }
    let stats = agent.finish();
    assert_eq!(stats.frames_shipped, windows.len() as u64);
    let report = handle.wait().expect("resumed collector run");
    std::fs::remove_file(&path).ok();

    assert_eq!(report.resumed_at_interval, Some(kill_after as u64));
    assert_eq!(
        report.intervals_flushed,
        (windows.len() - kill_after) as u64
    );
    for phase in [Phase::Raw, Phase::AfterClassification, Phase::Final] {
        assert_eq!(
            alert_identities(&reference, phase),
            alert_identities(&report.log, phase),
            "phase {phase:?} diverged across the restart"
        );
    }
}

/// A collection outage (three intervals with no frames at all) over
/// steady traffic must not turn into alerts when traffic returns: the
/// collector advances past the gap without feeding synthetic zeros to
/// the forecasters. Regression for the gap-synthesis bug.
#[test]
fn outage_gap_raises_no_spurious_alerts() {
    let seed = 9;
    let cfg = HiFindConfig::small(seed);
    let mut ccfg = CollectorConfig::new(1);
    ccfg.straggler_deadline = Duration::from_millis(200);
    ccfg.linger = Duration::from_millis(200);
    let handle = Collector::bind("127.0.0.1:0", cfg, ccfg, None).expect("bind");
    let addr = handle.local_addr().to_string();

    // Steady benign traffic, identical every interval; the agent's
    // interval counter is driven past the outage by empty end_interval
    // calls *not* being sent — we ship intervals 0..3 and 6..9 by
    // encoding frames directly with explicit interval indices.
    let mut rec = SketchRecorder::new(&cfg).expect("small config");
    let mut steady = move || {
        for i in 0..40u32 {
            let c: Ip4 = [9, 9, (i % 3) as u8, (i % 100) as u8].into();
            let s: Ip4 = [129, 105, 0, (i % 5) as u8].into();
            rec.record(&Packet::syn(u64::from(i), c, 4000 + i as u16, s, 80));
            rec.record(&Packet::syn_ack(
                u64::from(i) + 1,
                c,
                4000 + i as u16,
                s,
                80,
            ));
        }
        rec.take_snapshot()
    };
    use std::io::Write as _;
    let mut stream = std::net::TcpStream::connect(&addr).expect("connect");
    for iv in [0u64, 1, 2, 6, 7, 8] {
        let frame = hifind_collect::wire::encode_frame(0, iv, &steady()).expect("frame encodes");
        stream.write_all(&frame).expect("ship");
    }
    drop(stream);
    let report = handle.wait().expect("collector run");

    assert_eq!(report.gap_intervals, 3, "{report:?}");
    assert_eq!(
        report.intervals_flushed, 9,
        "gaps advance the interval grid"
    );
    assert!(
        alert_identities(&report.log, Phase::Raw).is_empty(),
        "steady traffic across an outage must stay silent: {:?}",
        report.log
    );
}
