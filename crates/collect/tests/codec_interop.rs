//! Cross-version interoperability matrix for the wire codecs.
//!
//! The v2 rollout story only works if every pairing in the fleet keeps
//! collecting during the upgrade window: v1-pinned agents against a v2
//! collector, v2 agents against a collector that never learned the
//! hello, mixed fleets, and agents resumed from a checkpoint written by
//! the other codec generation. Each test here is one cell of that
//! matrix, over real loopback TCP.

use hifind::report::Phase;
use hifind::{HiFind, HiFindConfig};
use hifind_collect::wire::{CODEC_V1, CODEC_V2};
use hifind_collect::{AgentConfig, Collector, CollectorConfig, RouterAgent};
use hifind_flow::{Ip4, Packet, Trace};
use std::net::TcpListener;
use std::time::Duration;

/// A compact five-interval trace: two benign intervals establish the
/// forecast baseline, then a SYN flood loud enough to alert through a
/// three-way split.
fn flood_trace(cfg: &HiFindConfig) -> Trace {
    let mut t = Trace::new();
    let victim: Ip4 = [129, 105, 0, 1].into();
    for iv in 0..5u64 {
        let b = iv * cfg.interval_ms;
        for i in 0..30u32 {
            let c: Ip4 = [9, 9, 9, (i % 100) as u8].into();
            t.push(Packet::syn(b + u64::from(i) * 7, c, 4000, victim, 80));
            t.push(Packet::syn_ack(
                b + u64::from(i) * 7 + 1,
                c,
                4000,
                victim,
                80,
            ));
        }
        if iv >= 2 {
            for i in 0..400u32 {
                t.push(Packet::syn(
                    b + 300 + u64::from(i),
                    Ip4::new(0x5100_0000 + i),
                    2000,
                    victim,
                    80,
                ));
            }
        }
    }
    t.sort_by_time();
    t
}

/// Buckets a packet list into per-interval windows.
fn windows_of(packets: &[Packet], interval_ms: u64, n: usize) -> Vec<Vec<Packet>> {
    let mut windows = vec![Vec::new(); n];
    for p in packets {
        windows[(p.ts_ms / interval_ms) as usize].push(*p);
    }
    windows
}

type AlertIdentity = (
    hifind::report::AlertKind,
    Option<u32>,
    Option<u32>,
    Option<u16>,
);

fn alert_identities(log: &hifind::report::AlertLog, phase: Phase) -> Vec<AlertIdentity> {
    let mut ids: Vec<_> = log.alerts(phase).iter().map(|a| a.identity()).collect();
    ids.sort();
    ids
}

/// An address that refuses connections: bind, read the port, drop the
/// listener.
fn dead_addr() -> String {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr").to_string();
    drop(listener);
    addr
}

/// An agent config that fails fast against an unreachable collector.
fn impatient(router_id: u32, codecs: Vec<u8>) -> AgentConfig {
    let mut acfg = AgentConfig::new(router_id);
    acfg.max_attempts = 1;
    acfg.initial_backoff = Duration::from_millis(1);
    acfg.io_timeout = Duration::from_millis(200);
    acfg.codecs = codecs;
    acfg
}

/// A legacy agent that never heard of v2 ships plain v1 frames into a
/// v2-capable collector, which must count and decode them unchanged.
#[test]
fn v1_pinned_agent_interops_with_v2_collector() {
    let cfg = HiFindConfig::small(60);
    let trace = flood_trace(&cfg);
    let handle = Collector::bind("127.0.0.1:0", cfg, CollectorConfig::new(1), None).expect("bind");
    let addr = handle.local_addr().to_string();
    let mut acfg = AgentConfig::new(0);
    acfg.codecs = vec![CODEC_V1];
    let mut agent = RouterAgent::new(addr, &cfg, acfg).expect("config");
    for window in windows_of(
        &trace.iter().copied().collect::<Vec<_>>(),
        cfg.interval_ms,
        5,
    ) {
        for p in &window {
            agent.record(p);
        }
        agent.end_interval();
    }
    let stats = agent.finish();
    assert_eq!(stats.frames_shipped, 5);
    assert_eq!(
        stats.frames_v2_keyframes, 0,
        "a pinned agent never speaks v2"
    );
    assert_eq!(stats.frames_v2_deltas, 0);
    let report = handle.wait().expect("collector threads");
    assert_eq!(report.frames_received, 5);
    assert_eq!(report.frames_codec_v1, 5);
    assert_eq!(report.frames_v2_keyframes + report.frames_v2_deltas, 0);
    assert_eq!(report.frames_rejected, 0);
    assert!(
        report
            .log
            .count(Phase::Final, hifind::report::AlertKind::SynFlooding)
            >= 1,
        "legacy framing must still detect the flood"
    );
}

/// A v2 agent dialing a collector that only accepts v1 gets no answer to
/// its hello; the accept timeout must downgrade the session to v1 and
/// every interval must still arrive.
#[test]
fn v2_agent_falls_back_against_v1_only_collector() {
    let cfg = HiFindConfig::small(61);
    let trace = flood_trace(&cfg);
    let mut ccfg = CollectorConfig::new(1);
    ccfg.codecs = vec![CODEC_V1];
    let handle = Collector::bind("127.0.0.1:0", cfg, ccfg, None).expect("bind");
    let addr = handle.local_addr().to_string();
    // Short io_timeout bounds the one-time hello stall (the accept wait
    // is min(hello deadline, io_timeout)).
    let mut acfg = AgentConfig::new(0);
    acfg.io_timeout = Duration::from_millis(400);
    let mut agent = RouterAgent::new(addr, &cfg, acfg).expect("config");
    for window in windows_of(
        &trace.iter().copied().collect::<Vec<_>>(),
        cfg.interval_ms,
        5,
    ) {
        for p in &window {
            agent.record(p);
        }
        agent.end_interval();
    }
    let stats = agent.finish();
    assert_eq!(stats.frames_shipped, 5, "fallback must not lose intervals");
    assert_eq!(
        stats.frames_v2_deltas, 0,
        "no acks ever arrive on a v1 session"
    );
    let report = handle.wait().expect("collector threads");
    assert_eq!(report.frames_received, 5);
    assert_eq!(report.frames_codec_v1, 5, "everything downgraded to v1");
    assert_eq!(report.frames_rejected, 0);
    assert!(
        report
            .log
            .count(Phase::Final, hifind::report::AlertKind::SynFlooding)
            >= 1
    );
}

/// A v2 session on loopback actually reaches the delta steady state:
/// frames flow, acks flow back, and the encoder starts emitting deltas.
#[test]
fn v2_session_reaches_delta_steady_state() {
    let cfg = HiFindConfig::small(62);
    let mut ccfg = CollectorConfig::new(1);
    ccfg.straggler_deadline = Duration::from_secs(30);
    let handle = Collector::bind("127.0.0.1:0", cfg, ccfg, None).expect("bind");
    let addr = handle.local_addr().to_string();
    let mut agent = RouterAgent::new(addr, &cfg, AgentConfig::new(0)).expect("config");
    let victim: Ip4 = [129, 105, 0, 1].into();
    // A warm first interval populates the cumulative service Bloom — the
    // state whose unchanged bulk is exactly what deltas elide.
    for i in 0..200u32 {
        let server = Ip4::new(0x8169_0000 + i);
        let c: Ip4 = [9, 9, (i % 50) as u8, 1].into();
        agent.record(&Packet::syn(0, c, 4000, server, 80));
        agent.record(&Packet::syn_ack(1, c, 4000, server, 80));
    }
    agent.end_interval();
    let mut deltas_seen = false;
    for iv in 1..30u64 {
        for i in 0..20u32 {
            let c: Ip4 = [9, 9, 9, (i % 100) as u8].into();
            agent.record(&Packet::syn(iv * cfg.interval_ms, c, 4000, victim, 80));
        }
        agent.end_interval();
        if agent.stats().frames_v2_deltas > 0 {
            deltas_seen = true;
            break;
        }
        // Give the collector's ack a moment to cross the loopback.
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        deltas_seen,
        "acks never promoted the session to deltas: {:?}",
        agent.stats()
    );
    let stats = agent.finish();
    assert!(
        stats.frames_v2_keyframes >= 1,
        "the chain starts on a keyframe"
    );
    let report = handle.wait().expect("collector threads");
    assert_eq!(report.frames_rejected, 0);
    assert!(report.frames_v2_deltas >= 1, "{report:?}");
    assert_eq!(
        report.frames_v2_deltas + report.frames_v2_keyframes,
        report.frames_received
    );
}

/// A mixed fleet — one pinned-v1 agent, two v2 agents — against one v2
/// collector produces detection identical to a single router that saw
/// all traffic, while the collector counts each codec separately.
#[test]
fn mixed_codec_fleet_matches_single_router_detection() {
    let cfg = HiFindConfig::small(63);
    let trace = flood_trace(&cfg);

    let mut single = HiFind::new(cfg).expect("config");
    let single_log = single.run_trace(&trace);

    let mut ccfg = CollectorConfig::new(3);
    ccfg.straggler_deadline = Duration::from_secs(60);
    let handle = Collector::bind("127.0.0.1:0", cfg, ccfg, None).expect("bind");
    let addr = handle.local_addr().to_string();
    // Deterministic round-robin split; the codec an interval travels in
    // must never affect what it adds to the sum.
    let mut parts: [Vec<Packet>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for (i, p) in trace.iter().enumerate() {
        parts[i % 3].push(*p);
    }
    let tick = std::sync::Arc::new(std::sync::Barrier::new(3));
    let threads: Vec<_> = parts
        .into_iter()
        .enumerate()
        .map(|(id, part)| {
            let windows = windows_of(&part, cfg.interval_ms, 5);
            let addr = addr.clone();
            let tick = std::sync::Arc::clone(&tick);
            std::thread::spawn(move || {
                let mut acfg = AgentConfig::new(id as u32);
                if id == 0 {
                    acfg.codecs = vec![CODEC_V1];
                }
                let mut agent = RouterAgent::new(addr, &cfg, acfg).expect("config");
                for window in &windows {
                    tick.wait();
                    for p in window {
                        agent.record(p);
                    }
                    agent.end_interval();
                }
                agent.finish()
            })
        })
        .collect();
    for t in threads {
        let stats = t.join().expect("agent thread");
        assert_eq!(stats.frames_shipped, 5);
        assert_eq!(stats.frames_dropped, 0);
    }
    let report = handle.wait().expect("collector threads");
    assert_eq!(report.frames_received, 15);
    assert_eq!(report.frames_rejected, 0);
    assert_eq!(
        report.frames_codec_v1, 5,
        "exactly the pinned agent's share"
    );
    assert_eq!(
        report.frames_v2_keyframes + report.frames_v2_deltas,
        10,
        "the v2 agents' share"
    );
    for phase in [Phase::Raw, Phase::AfterClassification, Phase::Final] {
        assert_eq!(
            alert_identities(&single_log, phase),
            alert_identities(&report.log, phase),
            "phase {phase:?} diverged between single-router and mixed-codec runs"
        );
    }
    assert!(!alert_identities(&single_log, Phase::Raw).is_empty());
}

/// Checkpoints written on one side of the codec upgrade must replay on
/// the other: a v1 agent's backlog resumed by a v2-capable binary ships
/// into a v2 session untouched, and a v2 agent's backlog resumed by a
/// v1-pinned binary is transcoded down — no interval is lost either way.
#[test]
fn checkpoint_resume_crosses_codec_generations_both_ways() {
    let cfg = HiFindConfig::small(64);
    let victim: Ip4 = [129, 105, 0, 1].into();
    let record_three = |agent: &mut RouterAgent| {
        for iv in 0..3u64 {
            for i in 0..25u32 {
                agent.record(&Packet::syn(
                    iv,
                    Ip4::new(0x0909_0900 + i),
                    4000,
                    victim,
                    80,
                ));
            }
            agent.end_interval();
        }
    };

    // Upgrade: backlog written by a v1-pinned agent, resumed v2-capable.
    let mut old =
        RouterAgent::new(dead_addr(), &cfg, impatient(0, vec![CODEC_V1])).expect("config");
    record_three(&mut old);
    assert_eq!(old.backlog_len(), 3, "nothing shipped to a dead collector");
    let ckpt = old.checkpoint();
    assert!(ckpt.backlog.iter().all(|f| f.codec == CODEC_V1));
    let handle = Collector::bind("127.0.0.1:0", cfg, CollectorConfig::new(1), None).expect("bind");
    let mut resumed = RouterAgent::resume(
        handle.local_addr().to_string(),
        &cfg,
        AgentConfig::new(0),
        &ckpt,
    )
    .expect("resume");
    resumed.flush();
    let stats = resumed.finish();
    assert_eq!(stats.frames_shipped, 3);
    assert_eq!(stats.frames_transcoded, 0, "v1 frames ship verbatim");
    let report = handle.wait().expect("collector threads");
    assert_eq!(report.frames_received, 3, "{report:?}");
    assert_eq!(report.frames_codec_v1, 3);
    assert_eq!(report.frames_rejected, 0);

    // Downgrade: backlog written by a v2 agent, resumed v1-pinned against
    // a v1-only collector — every frame must be transcoded, not dropped.
    let mut newer = RouterAgent::new(dead_addr(), &cfg, impatient(1, vec![CODEC_V2, CODEC_V1]))
        .expect("config");
    record_three(&mut newer);
    assert_eq!(newer.backlog_len(), 3);
    let ckpt = newer.checkpoint();
    assert!(ckpt.backlog.iter().all(|f| f.codec == CODEC_V2));
    let mut ccfg = CollectorConfig::new(1);
    ccfg.codecs = vec![CODEC_V1];
    let handle = Collector::bind("127.0.0.1:0", cfg, ccfg, None).expect("bind");
    let mut acfg = AgentConfig::new(1);
    acfg.codecs = vec![CODEC_V1];
    let mut resumed =
        RouterAgent::resume(handle.local_addr().to_string(), &cfg, acfg, &ckpt).expect("resume");
    resumed.flush();
    let stats = resumed.finish();
    assert_eq!(stats.frames_shipped, 3);
    assert_eq!(stats.frames_transcoded, 3, "v2 backlog rewritten as v1");
    assert_eq!(stats.frames_dropped, 0);
    let report = handle.wait().expect("collector threads");
    assert_eq!(report.frames_received, 3);
    assert_eq!(report.frames_codec_v1, 3);
    assert_eq!(report.frames_rejected, 0);
}
