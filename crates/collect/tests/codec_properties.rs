//! Property-based tests of the snapshot codec and frame format.
//!
//! Two guarantees carry the distributed design: (1) a frame round trip is
//! lossless down to the counter level, so networked aggregation combines
//! exactly what the routers recorded; (2) arbitrary corruption of a frame
//! yields a *typed* error (or an intact payload when only unauthenticated
//! header metadata was hit) — never a panic and never a silently wrong
//! snapshot.

use hifind::{HiFindConfig, IntervalSnapshot, SketchRecorder};
use hifind_collect::{FrameHeader, WireError, HEADER_LEN, PROTOCOL_VERSION};
use hifind_flow::rng::SplitMix64;
use hifind_flow::{Ip4, Packet};
use proptest::prelude::*;

/// Builds a snapshot by recording a seed-derived packet mix (SYNs with a
/// sprinkle of SYN/ACKs and FIN/RSTs) under a fixed small config.
fn arb_snapshot(seed: u64, packets: u32) -> IntervalSnapshot {
    let cfg = HiFindConfig::small(42);
    let mut rng = SplitMix64::new(seed);
    let mut rec = SketchRecorder::new(&cfg).expect("small config");
    for _ in 0..packets {
        let src = Ip4::new(rng.next_u32());
        let dst = Ip4::new(0x8169_0000 | (rng.next_u32() & 0xFF));
        let sport = 1024 + (rng.next_u32() % 60000) as u16;
        let dport = [80u16, 443, 22, 445][(rng.next_u32() % 4) as usize];
        let ts = rng.next_u64() % 10_000;
        match rng.next_u32() % 8 {
            0 => rec.record(&Packet::syn_ack(ts, dst, dport, src, sport)),
            1 => rec.record(&Packet::fin(ts, src, sport, dst, dport)),
            _ => rec.record(&Packet::syn(ts, src, sport, dst, dport)),
        }
    }
    rec.take_snapshot()
}

fn read_one(bytes: &[u8]) -> Result<Option<(FrameHeader, IntervalSnapshot)>, WireError> {
    let mut cursor = bytes;
    hifind_collect::wire::read_frame(&mut cursor, hifind_collect::wire::DEFAULT_MAX_PAYLOAD)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Frame round trip is exact: header metadata survives verbatim and
    /// the decoded snapshot is bit-identical, so combining shipped
    /// snapshots equals combining the originals.
    #[test]
    fn frame_round_trip_is_lossless(
        seed in any::<u64>(),
        packets in 0u32..600,
        router_id in any::<u32>(),
        interval in any::<u64>(),
    ) {
        let snap = arb_snapshot(seed, packets);
        let frame = hifind_collect::wire::encode_frame(router_id, interval, &snap).expect("frame encodes");
        let (header, decoded) = read_one(&frame)
            .expect("well-formed frame")
            .expect("not EOF");
        prop_assert_eq!(header.version, PROTOCOL_VERSION);
        prop_assert_eq!(header.router_id, router_id);
        prop_assert_eq!(header.interval, interval);
        prop_assert_eq!(header.fingerprint, snap.fingerprint);
        prop_assert_eq!(&decoded, &snap);

        // Aggregation over the wire == aggregation in memory.
        let other = arb_snapshot(seed ^ 0xA5A5, packets / 2 + 1);
        let other_frame = hifind_collect::wire::encode_frame(router_id, interval, &other).expect("frame encodes");
        let (_, other_decoded) = read_one(&other_frame).unwrap().unwrap();
        let mut wire_sum = decoded;
        wire_sum.combine_into(&other_decoded).expect("same config");
        let mut mem_sum = snap;
        mem_sum.combine_into(&other).expect("same config");
        prop_assert_eq!(wire_sum, mem_sum);
    }

    /// Flipping any single byte of a frame either fails with a typed
    /// error or — only when the flip hit unauthenticated header metadata
    /// (reserved, router id, interval index) — still yields the exact
    /// original payload. Corruption can never panic, and can never forge
    /// counter values (the CRC covers the payload, the fingerprint field
    /// is cross-checked against the payload's own).
    #[test]
    fn single_byte_corruption_is_typed_or_harmless(
        seed in any::<u64>(),
        pos_pick in any::<u64>(),
        mask in 1u8..=255,
    ) {
        let snap = arb_snapshot(seed, 120);
        let mut frame = hifind_collect::wire::encode_frame(7, 3, &snap).expect("frame encodes");
        let pos = (pos_pick % frame.len() as u64) as usize;
        frame[pos] ^= mask;
        match read_one(&frame) {
            Ok(Some((_, decoded))) => {
                prop_assert!(
                    (8..20).contains(&pos),
                    "flip at {pos} outside unauthenticated header metadata was accepted"
                );
                prop_assert_eq!(decoded, snap);
            }
            Ok(None) => prop_assert!(false, "a corrupt frame is not a clean EOF"),
            Err(err) => match pos {
                0..=3 => prop_assert!(matches!(err, WireError::BadMagic(_)), "{err:?}"),
                // A version flip can also land on 2, where the zeroed
                // codec byte is then rejected as an unknown codec id.
                4..=5 => {
                    prop_assert!(
                        matches!(
                            err,
                            WireError::UnsupportedVersion(_) | WireError::UnknownCodec(_)
                        ),
                        "{err:?}"
                    )
                }
                6..=7 => {
                    prop_assert!(matches!(err, WireError::ReservedBytes(_)), "{err:?}")
                }
                20..=27 => prop_assert!(
                    matches!(err, WireError::FingerprintMismatch { .. }),
                    "{err:?}"
                ),
                32..=35 => prop_assert!(matches!(err, WireError::CrcMismatch { .. }), "{err:?}"),
                p if p >= HEADER_LEN => prop_assert!(
                    matches!(
                        err,
                        WireError::CrcMismatch { .. } | WireError::TruncatedFrame { .. }
                    ),
                    "{err:?}"
                ),
                // payload_len flips (28..=31) surface as whichever check
                // trips first; any typed error is acceptable.
                _ => {}
            },
        }
    }

    /// A frame cut anywhere mid-stream is a `TruncatedFrame`; a cut at a
    /// frame boundary is a clean end of stream.
    #[test]
    fn truncation_is_typed_and_eof_is_clean(seed in any::<u64>(), cut_pick in any::<u64>()) {
        let snap = arb_snapshot(seed, 60);
        let frame = hifind_collect::wire::encode_frame(1, 0, &snap).expect("frame encodes");
        let cut = (cut_pick % frame.len() as u64) as usize;
        if cut == 0 {
            prop_assert!(read_one(&[]).expect("clean EOF").is_none());
        } else {
            let err = read_one(&frame[..cut]).expect_err("mid-frame cut must fail");
            prop_assert!(matches!(err, WireError::TruncatedFrame { .. }), "{err:?}");
        }
    }
}
