//! Performance ablations over design choices (DESIGN.md §8): modular vs
//! plain hashing, mangling on/off, stage count, and combine cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hifind_flow::rng::SplitMix64;
use hifind_hashing::{BucketHasher, Mangler, ModularHash, PairwiseHasher};
use hifind_sketch::{ReversibleSketch, RsConfig};
use std::hint::black_box;

fn bench_hash_families(c: &mut Criterion) {
    // Is reversibility (modular hashing + mangling) expensive on the hot
    // path? Compare the three hash layers on the same key stream.
    let mut group = c.benchmark_group("hash");
    let keys: Vec<u64> = {
        let mut rng = SplitMix64::new(1);
        (0..4096)
            .map(|_| rng.next_u64() & ((1 << 48) - 1))
            .collect()
    };
    group.throughput(Throughput::Elements(keys.len() as u64));

    let pairwise = PairwiseHasher::from_seed(2, 1 << 12);
    group.bench_function("pairwise", |b| {
        b.iter(|| {
            keys.iter()
                .map(|&k| pairwise.bucket(black_box(k)))
                .sum::<usize>()
        })
    });

    let modular = ModularHash::new(&mut SplitMix64::new(3), 48, 1 << 12).unwrap();
    group.bench_function("modular_48bit", |b| {
        b.iter(|| {
            keys.iter()
                .map(|&k| modular.bucket(black_box(k)))
                .sum::<usize>()
        })
    });

    let mangler = Mangler::new(&mut SplitMix64::new(4), 48);
    group.bench_function("mangle_plus_modular", |b| {
        b.iter(|| {
            keys.iter()
                .map(|&k| modular.bucket(mangler.mangle(black_box(k))))
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_stage_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("stages");
    let keys: Vec<u64> = {
        let mut rng = SplitMix64::new(5);
        (0..4096)
            .map(|_| rng.next_u64() & ((1 << 48) - 1))
            .collect()
    };
    group.throughput(Throughput::Elements(keys.len() as u64));
    for stages in [4usize, 6, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(stages),
            &stages,
            |b, &stages| {
                let mut rs = ReversibleSketch::new(RsConfig {
                    key_bits: 48,
                    stages,
                    buckets: 1 << 12,
                    seed: 6,
                    mangle: true,
                    verifier_buckets: None,
                })
                .unwrap();
                b.iter(|| {
                    for &k in &keys {
                        rs.update(black_box(k), 1);
                    }
                })
            },
        );
    }
    group.finish();
}

fn bench_combine(c: &mut Criterion) {
    // Per-interval COMBINE cost at the aggregation site (3 routers).
    let mut group = c.benchmark_group("combine");
    let sketches: Vec<ReversibleSketch> = (0..3)
        .map(|i| {
            let mut rs = ReversibleSketch::new(RsConfig::paper_48bit(7)).unwrap();
            let mut rng = SplitMix64::new(8 + i);
            for _ in 0..50_000 {
                rs.update(rng.next_u64() & ((1 << 48) - 1), 1);
            }
            rs
        })
        .collect();
    group.bench_function("three_routers_48bit", |b| {
        b.iter(|| {
            let terms: Vec<(f64, &ReversibleSketch)> = sketches.iter().map(|s| (1.0, s)).collect();
            black_box(ReversibleSketch::combine(&terms).unwrap().total())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_hash_families,
    bench_stage_count,
    bench_combine
);
criterion_main!(benches);
