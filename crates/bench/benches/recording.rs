//! Recording-path benchmarks (§5.5.3): per-update cost of each sketch and
//! of the full recorder, plus multi-threaded recording with per-thread
//! sketches merged by linearity (the paper's "multi-processors recording
//! multiple sketches simultaneously").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hifind::{HiFindConfig, SketchRecorder};
use hifind_flow::rng::SplitMix64;
use hifind_flow::{Ip4, Packet};
use hifind_sketch::{KaryConfig, KarySketch, ReversibleSketch, RsConfig, TwoDConfig, TwoDSketch};
use std::hint::black_box;

fn keys(n: usize, bits: u32, seed: u64) -> Vec<u64> {
    let mut rng = SplitMix64::new(seed);
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1 << bits) - 1
    };
    (0..n).map(|_| rng.next_u64() & mask).collect()
}

fn packets(n: usize, seed: u64) -> Vec<Packet> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let client = Ip4::new(rng.next_u32());
            let server = Ip4::new(0x8169_0000 | (rng.next_u32() & 0xFFFF));
            if rng.chance(0.45) {
                Packet::syn_ack(i as u64, client, 4000, server, 80)
            } else {
                Packet::syn(i as u64, client, 4000, server, 80)
            }
        })
        .collect()
}

fn bench_sketch_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("update");
    let ks = keys(4096, 48, 1);
    group.throughput(Throughput::Elements(ks.len() as u64));

    let mut rs48 = ReversibleSketch::new(RsConfig::paper_48bit(1)).unwrap();
    group.bench_function("reversible_48bit", |b| {
        b.iter(|| {
            for &k in &ks {
                rs48.update(black_box(k), 1);
            }
        })
    });

    let ks64 = keys(4096, 64, 2);
    let mut rs64 = ReversibleSketch::new(RsConfig::paper_64bit(2)).unwrap();
    group.bench_function("reversible_64bit", |b| {
        b.iter(|| {
            for &k in &ks64 {
                rs64.update(black_box(k), 1);
            }
        })
    });

    let mut kary = KarySketch::new(KaryConfig::paper_os(3)).unwrap();
    group.bench_function("kary", |b| {
        b.iter(|| {
            for &k in &ks {
                kary.update(black_box(k), 1);
            }
        })
    });

    let mut twod = TwoDSketch::new(TwoDConfig::paper(4)).unwrap();
    group.bench_function("twod", |b| {
        b.iter(|| {
            for &k in &ks {
                twod.update(black_box(k), k & 0xFFFF, 1);
            }
        })
    });
    group.finish();
}

fn bench_recorder(c: &mut Criterion) {
    let mut group = c.benchmark_group("recorder");
    let pkts = packets(4096, 5);
    group.throughput(Throughput::Elements(pkts.len() as u64));
    let mut recorder = SketchRecorder::new(&HiFindConfig::paper(5)).unwrap();
    group.bench_function("record_packet", |b| {
        b.iter(|| {
            for p in &pkts {
                recorder.record(black_box(p));
            }
        })
    });
    group.finish();
}

fn bench_parallel_recording(c: &mut Criterion) {
    // Per-thread recorders over disjoint packet shards, merged afterwards
    // by sketch linearity — scaling shape for §5.5.3's multi-processor
    // claim.
    let mut group = c.benchmark_group("parallel_recording");
    let pkts = packets(262_144, 6);
    group.throughput(Throughput::Elements(pkts.len() as u64));
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                // Recorders are long-lived in a real deployment: build them
                // once outside the measurement and only time record+merge.
                let mut recorders: Vec<SketchRecorder> = (0..threads)
                    .map(|_| SketchRecorder::new(&HiFindConfig::paper(7)).unwrap())
                    .collect();
                b.iter(|| {
                    let shards: Vec<&[Packet]> =
                        pkts.chunks(pkts.len().div_ceil(threads)).collect();
                    let snaps = crossbeam::scope(|scope| {
                        let handles: Vec<_> = recorders
                            .iter_mut()
                            .zip(&shards)
                            .map(|(recorder, shard)| {
                                scope.spawn(move |_| {
                                    for p in *shard {
                                        recorder.record(p);
                                    }
                                    recorder.take_snapshot()
                                })
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|h| h.join().unwrap())
                            .collect::<Vec<_>>()
                    })
                    .unwrap();
                    let mut snaps = snaps;
                    let mut total = snaps.remove(0);
                    for s in &snaps {
                        total.combine_into(s).unwrap();
                    }
                    black_box(total.syn_count)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_sketch_updates,
    bench_recorder,
    bench_parallel_recording
);
criterion_main!(benches);
