//! Detection-path benchmarks (§5.5.3): EWMA forecasting over grids,
//! reversible-sketch inference at varying numbers of heavy keys, 2D
//! classification, and a full pipeline interval.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hifind::{HiFind, HiFindConfig};
use hifind_flow::rng::SplitMix64;
use hifind_flow::{Ip4, Packet};
use hifind_forecast::{GridEwma, GridForecaster};
use hifind_sketch::{InferOptions, ReversibleSketch, RsConfig, TwoDConfig, TwoDSketch};
use std::hint::black_box;

fn bench_forecast(c: &mut Criterion) {
    let mut group = c.benchmark_group("forecast");
    // The paper's 64-bit RS grid: 6 × 2^16 counters.
    let rs = {
        let mut rs = ReversibleSketch::new(RsConfig::paper_64bit(1)).unwrap();
        let mut rng = SplitMix64::new(2);
        for _ in 0..100_000 {
            rs.update(rng.next_u64(), 1);
        }
        rs
    };
    group.bench_function("grid_ewma_step_6x65536", |b| {
        let mut ewma = GridEwma::new(0.5);
        ewma.step(rs.grid());
        ewma.step(rs.grid());
        b.iter(|| black_box(ewma.step(rs.grid())))
    });
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let mut group = c.benchmark_group("inference");
    group.sample_size(20);
    for heavy in [1usize, 10, 100] {
        group.bench_with_input(
            BenchmarkId::new("heavy_keys", heavy),
            &heavy,
            |b, &heavy| {
                let mut rs = ReversibleSketch::new(RsConfig::paper_48bit(3)).unwrap();
                let mut rng = SplitMix64::new(4);
                for _ in 0..heavy {
                    rs.update(rng.next_u64() & ((1 << 48) - 1), 1000);
                }
                for _ in 0..100_000 {
                    rs.update(rng.next_u64() & ((1 << 48) - 1), 1);
                }
                let opts = InferOptions::default();
                b.iter(|| black_box(rs.infer(500, &opts)).keys.len())
            },
        );
    }
    group.finish();
}

fn bench_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("classification");
    let mut twod = TwoDSketch::new(TwoDConfig::paper(5)).unwrap();
    let mut rng = SplitMix64::new(6);
    for _ in 0..200_000 {
        twod.update(rng.next_u64(), rng.below(65536), 1);
    }
    for _ in 0..2000 {
        twod.update(0xF100D, 80, 1);
    }
    group.bench_function("twod_classify", |b| {
        b.iter(|| black_box(twod.classify(black_box(0xF100D), 5, 0.8)))
    });
    group.finish();
}

fn bench_full_interval(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline");
    group.sample_size(10);
    // One realistic interval: 50k packets with an ongoing flood and scan.
    let mut rng = SplitMix64::new(7);
    let packets: Vec<Packet> = (0..50_000usize)
        .map(|i| {
            let roll = rng.f64();
            if roll < 0.02 {
                Packet::syn(
                    i as u64,
                    Ip4::new(0x5000_0000 + i as u32),
                    2000,
                    [129, 105, 0, 1].into(),
                    80,
                )
            } else if roll < 0.03 {
                let dst = Ip4::new(0x8169_0000 + (i as u32 & 0xFFF));
                Packet::syn(i as u64, [66, 6, 6, 6].into(), 2100, dst, 445)
            } else {
                let client = Ip4::new(rng.next_u32());
                let server = Ip4::new(0x8169_0000 | (rng.next_u32() & 0x3FF));
                if rng.chance(0.5) {
                    Packet::syn(i as u64, client, 4000, server, 80)
                } else {
                    Packet::syn_ack(i as u64, client, 4000, server, 80)
                }
            }
        })
        .collect();
    group.bench_function("record_50k_and_detect", |b| {
        let mut ids = HiFind::new(HiFindConfig::paper(8)).unwrap();
        // Warm the forecaster so inference actually runs.
        for p in &packets {
            ids.record(p);
        }
        ids.end_interval();
        for p in &packets {
            ids.record(p);
        }
        ids.end_interval();
        b.iter(|| {
            for p in &packets {
                ids.record(p);
            }
            black_box(ids.end_interval().fin.len())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_forecast,
    bench_inference,
    bench_classification,
    bench_full_interval
);
criterion_main!(benches);
