//! Experiment harness reproducing every table and figure of the HiFIND
//! paper (see DESIGN.md §4 for the experiment index and EXPERIMENTS.md for
//! recorded results).
//!
//! Each `src/bin/table*.rs` / `src/bin/figure*.rs` binary regenerates one
//! table or figure; the Criterion benches under `benches/` cover the
//! performance results of §5.5. This library holds what they share:
//!
//! * [`exact::ExactHiFind`] — the paper's "non-sketch" method: the same
//!   three-step detection algorithm over exact per-key tables (§5.2,
//!   Table 9).
//! * [`harness`] — scenario scaling, alert/truth set algebra, and table
//!   printing helpers.
//! * [`overhead`] — instrumented-vs-uninstrumented recording throughput
//!   (the `telemetry` feature's < 5% record-path budget).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod exact;
pub mod harness;
pub mod overhead;

pub use exact::ExactHiFind;
