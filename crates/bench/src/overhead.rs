//! Telemetry-overhead measurement on the record path.
//!
//! The `telemetry` feature adds one branch plus a 1-in-64 sampled timer to
//! [`hifind::HiFind::record`]; the acceptance bar is that this costs less
//! than 5% of recording throughput. This module measures both sides so the
//! `telemetry_overhead` binary can record a baseline
//! (`results/BENCH_telemetry_overhead.json`) and a feature-gated test can
//! enforce the bar.
//!
//! Without the `telemetry` feature the instrumented side cannot be built,
//! so [`measure_overhead`] reports the baseline only.

use hifind::parallel::ParallelRecorder;
use hifind::{HiFind, HiFindConfig};
use hifind_flow::rng::SplitMix64;
use hifind_flow::{Ip4, Packet};
use hifind_obsv::{ApiState, EventLog, HistoryConfig, HistoryStore, HttpServer, ObsvHub};
use serde::Serialize;
use std::sync::Arc;
use std::time::Instant;

/// Shard workers used for the parallel-path overhead measurement. Two is
/// the smallest count that exercises real cross-thread dispatch.
const OVERHEAD_WORKERS: usize = 2;

/// The idle operator plane held alive across a measurement: an embedded
/// HTTP server bound to a loopback port nobody scrapes, an open event
/// log on a temp file, and an in-memory history ring. A production
/// deployment runs all three next to the recorder, so the overhead
/// numbers are only honest if the measurement does too — the plane's
/// threads must not perturb the record path just by existing.
struct IdlePlane {
    server: HttpServer,
    events_path: std::path::PathBuf,
}

impl IdlePlane {
    fn start(cfg: &HiFindConfig) -> Option<IdlePlane> {
        let events_path = std::env::temp_dir().join(format!(
            "hifind-overhead-events-{}.jsonl",
            std::process::id()
        ));
        let events = EventLog::open(&events_path, cfg.fingerprint()).ok()?;
        let history = Arc::new(
            HistoryStore::open(HistoryConfig::in_memory(4), cfg.fingerprint(), None).ok()?,
        );
        let hub = Arc::new(ObsvHub::new(*cfg, history, Some(events)));
        let server = HttpServer::bind(
            "127.0.0.1:0",
            ApiState {
                hub,
                registry: None,
            },
        )
        .ok()?;
        Some(IdlePlane {
            server,
            events_path,
        })
    }

    fn stop(self) {
        self.server.stop();
        std::fs::remove_file(&self.events_path).ok();
    }
}

/// A synthetic SYN/SYN-ACK mix sized for throughput measurement (the same
/// shape `benches/recording.rs` uses).
pub fn synthetic_packets(n: usize, seed: u64) -> Vec<Packet> {
    let mut rng = SplitMix64::new(seed);
    (0..n)
        .map(|i| {
            let client = Ip4::new(rng.next_u32());
            let server = Ip4::new(0x8169_0000 | (rng.next_u32() & 0xFFFF));
            if rng.chance(0.45) {
                Packet::syn_ack(i as u64, client, 4000, server, 80)
            } else {
                Packet::syn(i as u64, client, 4000, server, 80)
            }
        })
        .collect()
}

/// One timed pass over `pkts` through [`HiFind::record`]. Returns packets
/// per second.
fn timed_pass(ids: &mut HiFind, pkts: &[Packet]) -> f64 {
    let start = Instant::now();
    for p in pkts {
        ids.record(std::hint::black_box(p));
    }
    pkts.len() as f64 / start.elapsed().as_secs_f64()
}

/// Best-of-`runs` packets-per-second for the baseline and instrumented
/// sides.
///
/// Both sides run over the *same* long-lived pipeline, toggling telemetry
/// on and off between passes, so the sketch arrays sit on the same pages
/// for every measurement — only the record code path differs. (Separate
/// objects proved to differ by ±8% for a whole process lifetime purely on
/// page placement.) Passes alternate sides so machine-wide drift hits
/// both equally, and each side's *maximum* is kept: throughput noise is
/// one-sided (preemption only ever slows a run down), so best-of
/// estimates the noise-free capability better than mean or median.
/// Without the `telemetry` feature the instrumented side mirrors the
/// baseline.
pub fn paired_record_pps(pkts: &[Packet], runs: usize) -> (f64, f64) {
    let mut ids = HiFind::new(HiFindConfig::paper(9)).expect("paper config");
    #[cfg(feature = "telemetry")]
    let registry = hifind::telemetry::Registry::new();

    // One full untimed pass warms caches, branch predictors, and every
    // page of the sketch arrays.
    timed_pass(&mut ids, pkts);

    let mut baseline = 0.0f64;
    #[allow(unused_mut)]
    let mut instrumented = 0.0f64;
    for _i in 0..runs {
        baseline = baseline.max(timed_pass(&mut ids, pkts));
        #[cfg(feature = "telemetry")]
        {
            ids.attach_telemetry(registry.clone())
                .expect("fresh registry has no conflicting metrics");
            instrumented = instrumented.max(timed_pass(&mut ids, pkts));
            ids.detach_telemetry();
        }
    }
    if !cfg!(feature = "telemetry") {
        instrumented = baseline;
    }
    (baseline, instrumented)
}

/// One timed pass over `pkts` through [`ParallelRecorder::record`],
/// including the interval close that drains and merges the shards (the
/// cost a real deployment pays once per interval). Returns packets per
/// second.
fn timed_parallel_pass(rec: &mut ParallelRecorder, pkts: &[Packet]) -> f64 {
    let start = Instant::now();
    for p in pkts {
        rec.record(std::hint::black_box(p));
    }
    let _ = rec.end_interval();
    pkts.len() as f64 / start.elapsed().as_secs_f64()
}

/// Best-of-`runs` packets-per-second for the sharded record plane, with
/// the `hifind_record_*` telemetry detached and attached. Same protocol
/// as [`paired_record_pps`]: one long-lived recorder, interleaved sides,
/// best-of to shed one-sided scheduling noise.
pub fn paired_parallel_record_pps(pkts: &[Packet], runs: usize) -> (f64, f64) {
    let cfg = HiFindConfig::paper(9);
    let mut rec = ParallelRecorder::new(&cfg, OVERHEAD_WORKERS).expect("paper config");
    #[cfg(feature = "telemetry")]
    let registry = hifind::telemetry::Registry::new();

    timed_parallel_pass(&mut rec, pkts);

    let mut baseline = 0.0f64;
    #[allow(unused_mut)]
    let mut instrumented = 0.0f64;
    for _i in 0..runs {
        baseline = baseline.max(timed_parallel_pass(&mut rec, pkts));
        #[cfg(feature = "telemetry")]
        {
            rec.attach_telemetry(&registry)
                .expect("registry has no conflicting metrics");
            instrumented = instrumented.max(timed_parallel_pass(&mut rec, pkts));
            rec.detach_telemetry();
        }
    }
    let _ = rec.finish();
    if !cfg!(feature = "telemetry") {
        instrumented = baseline;
    }
    (baseline, instrumented)
}

/// The result blob written to `results/BENCH_telemetry_overhead.json`.
#[derive(Clone, Debug, Serialize)]
pub struct OverheadReport {
    /// Packets per timed pass.
    pub packets: usize,
    /// Timed passes per side (best-of taken, interleaved).
    pub runs: usize,
    /// Whether the instrumented side was compiled (`telemetry` feature).
    pub telemetry_compiled: bool,
    /// Whether the idle operator plane (embedded HTTP server + open event
    /// log + in-memory history) was up for the whole measurement.
    pub idle_operator_plane: bool,
    /// Best-of recording throughput with telemetry detached.
    pub baseline_pps: f64,
    /// Best-of recording throughput with a live registry attached
    /// (equals the baseline when the feature is off and nothing was
    /// measured).
    pub instrumented_pps: f64,
    /// `(baseline − instrumented) / baseline`, in percent. Negative means
    /// the instrumented side happened to run faster (noise).
    pub overhead_pct: f64,
    /// Shard workers used for the parallel-path measurement.
    pub parallel_workers: usize,
    /// Best-of sharded recording throughput (including the interval-close
    /// merge) with the `hifind_record_*` telemetry detached.
    pub parallel_baseline_pps: f64,
    /// Best-of sharded recording throughput with the telemetry attached.
    pub parallel_instrumented_pps: f64,
    /// Telemetry overhead on the parallel path, in percent (same 5%
    /// budget as the serial path; the shard counters batch locally and
    /// flush once per interval, so the true cost is near zero).
    pub parallel_overhead_pct: f64,
}

/// Measures baseline vs. instrumented recording throughput, with the
/// idle operator plane running alongside (as a real deployment would).
pub fn measure_overhead(packets: usize, runs: usize) -> OverheadReport {
    let pkts = synthetic_packets(packets, 6);
    let plane = IdlePlane::start(&HiFindConfig::paper(9));
    let idle_operator_plane = plane.is_some();
    let (baseline_pps, instrumented_pps) = paired_record_pps(&pkts, runs);
    let (parallel_baseline_pps, parallel_instrumented_pps) =
        paired_parallel_record_pps(&pkts, runs);
    if let Some(plane) = plane {
        plane.stop();
    }
    let telemetry_compiled = cfg!(feature = "telemetry");
    OverheadReport {
        packets,
        runs,
        telemetry_compiled,
        idle_operator_plane,
        baseline_pps,
        instrumented_pps,
        overhead_pct: (baseline_pps - instrumented_pps) / baseline_pps * 100.0,
        parallel_workers: OVERHEAD_WORKERS,
        parallel_baseline_pps,
        parallel_instrumented_pps,
        parallel_overhead_pct: (parallel_baseline_pps - parallel_instrumented_pps)
            / parallel_baseline_pps
            * 100.0,
    }
}

#[cfg(all(test, feature = "telemetry"))]
mod tests {
    use super::*;

    /// Acceptance bar: the telemetry feature costs < 5% on the record
    /// path. Batched packet counting plus sampled timing (1 packet in 64)
    /// keeps the true cost near 1%, so 5% leaves headroom for machine
    /// noise; interleaved best-of runs absorb the rest.
    #[test]
    fn telemetry_overhead_is_under_five_percent() {
        // Many short runs: best-of converges on each side's capability
        // even when single runs wobble by ±10% on a busy machine.
        let report = measure_overhead(100_000, 15);
        assert!(
            report.overhead_pct < 5.0,
            "telemetry overhead {:.2}% exceeds the 5% budget \
             (baseline {:.2}M pps, instrumented {:.2}M pps)",
            report.overhead_pct,
            report.baseline_pps / 1e6,
            report.instrumented_pps / 1e6,
        );
    }

    /// The same 5% budget holds on the sharded record plane, where the
    /// shard counters batch locally and flush once per interval.
    #[test]
    fn parallel_telemetry_overhead_is_under_five_percent() {
        let report = measure_overhead(100_000, 15);
        assert!(
            report.parallel_overhead_pct < 5.0,
            "parallel telemetry overhead {:.2}% exceeds the 5% budget \
             (baseline {:.2}M pps, instrumented {:.2}M pps, {} workers)",
            report.parallel_overhead_pct,
            report.parallel_baseline_pps / 1e6,
            report.parallel_instrumented_pps / 1e6,
            report.parallel_workers,
        );
    }
}
