//! The "non-sketch" reference pipeline (paper §5.2).
//!
//! Identical detection semantics to [`hifind::HiFind`] — the same three
//! steps, the same EWMA recurrence, the same 2D classification criterion
//! and the same phase-3 heuristics — but over *exact* per-key state:
//! [`hifind_flowtable::ExactChangeTable`] instead of reversible sketches,
//! [`hifind_flowtable::ExactDistribution`] instead of 2D sketches, and an
//! exact hash-set instead of the active-service Bloom filter. §5.2's claim
//! is that both configurations detect the same attacks; Table 9's claim is
//! that this one does so in gigabytes instead of megabytes.

use hifind::report::{Alert, AlertKind, AlertLog, Phase};
use hifind::HiFindConfig;
use hifind_flow::keys::{DipDport, SipDip, SipDport, SketchKey};
use hifind_flow::{Packet, SegmentKind, Trace};
use hifind_flowtable::{ExactChangeTable, ExactDistribution};
use std::collections::{HashMap, HashSet};

/// The exact-state HiFIND pipeline.
#[derive(Clone, Debug)]
pub struct ExactHiFind {
    cfg: HiFindConfig,
    sip_dport: ExactChangeTable,
    dip_dport: ExactChangeTable,
    sip_dip: ExactChangeTable,
    /// Current-interval #SYN per service (the OS equivalent).
    syn_counts: HashMap<u64, i64>,
    /// Current-interval #SYN/ACK per service (for the exact ratio check).
    syn_ack_counts: HashMap<u64, i64>,
    /// Current-interval distributions for phase 2.
    dist_sipdport_dip: ExactDistribution,
    dist_sipdip_dport: ExactDistribution,
    active_services: HashSet<u64>,
    streaks: HashMap<(u32, u16), (u64, u32)>,
    log: AlertLog,
    interval: u64,
    peak_memory: usize,
}

impl ExactHiFind {
    /// Builds the exact pipeline from the same configuration as the
    /// sketch-based system.
    pub fn new(cfg: HiFindConfig) -> Self {
        ExactHiFind {
            cfg,
            sip_dport: ExactChangeTable::new(cfg.ewma_alpha),
            dip_dport: ExactChangeTable::new(cfg.ewma_alpha),
            sip_dip: ExactChangeTable::new(cfg.ewma_alpha),
            syn_counts: HashMap::new(),
            syn_ack_counts: HashMap::new(),
            dist_sipdport_dip: ExactDistribution::new(),
            dist_sipdip_dport: ExactDistribution::new(),
            active_services: HashSet::new(),
            streaks: HashMap::new(),
            log: AlertLog::new(),
            interval: 0,
            peak_memory: 0,
        }
    }

    /// Records one packet.
    pub fn record(&mut self, packet: &Packet) {
        let Some(o) = packet.orient() else { return };
        let v = match o.kind {
            SegmentKind::Syn => 1,
            SegmentKind::SynAck => -1,
            _ => return,
        };
        let sip_dport = SipDport::new(o.client, o.server_port).to_u64();
        let dip_dport = DipDport::new(o.server, o.server_port).to_u64();
        let sip_dip = SipDip::new(o.client, o.server).to_u64();
        self.sip_dport.add(sip_dport, v);
        self.dip_dport.add(dip_dport, v);
        self.sip_dip.add(sip_dip, v);
        self.dist_sipdport_dip
            .add(sip_dport, o.server.raw() as u64, v);
        self.dist_sipdip_dport.add(sip_dip, o.server_port as u64, v);
        if o.kind == SegmentKind::Syn {
            *self.syn_counts.entry(dip_dport).or_insert(0) += 1;
        } else {
            *self.syn_ack_counts.entry(dip_dport).or_insert(0) += 1;
            self.active_services.insert(dip_dport);
        }
    }

    /// Ends the interval: runs the full three-phase pipeline on exact
    /// state.
    pub fn end_interval(&mut self) {
        self.track_memory();
        let interval = self.interval;
        self.interval += 1;
        let threshold = self.cfg.interval_threshold();

        // Phase 1: the three steps (identical logic to the sketch path).
        let flooding: Vec<(DipDport, i64)> = self
            .dip_dport
            .end_interval_threshold(threshold)
            .into_iter()
            .map(|(k, e)| (DipDport::from_u64(k), e))
            .collect();
        let flooding_dip_set: HashSet<u32> = flooding.iter().map(|(k, _)| k.dip().raw()).collect();

        let pairs: Vec<(SipDip, i64)> = self
            .sip_dip
            .end_interval_threshold(threshold)
            .into_iter()
            .map(|(k, e)| (SipDip::from_u64(k), e))
            .collect();
        let mut flooding_sip_set: HashSet<u32> = HashSet::new();
        let mut flooding_attacker: HashMap<u32, u32> = HashMap::new();
        let mut vscans = Vec::new();
        for (key, magnitude) in &pairs {
            if flooding_dip_set.contains(&key.dip().raw()) {
                flooding_sip_set.insert(key.sip().raw());
                flooding_attacker
                    .entry(key.dip().raw())
                    .or_insert(key.sip().raw());
            } else {
                vscans.push(Alert {
                    kind: AlertKind::VScan,
                    sip: Some(key.sip()),
                    dip: Some(key.dip()),
                    dport: None,
                    interval,
                    magnitude: *magnitude,
                    attacker_identified: true,
                });
            }
        }

        let mut hscans = Vec::new();
        for (k, magnitude) in self.sip_dport.end_interval_threshold(threshold) {
            let key = SipDport::from_u64(k);
            if flooding_sip_set.contains(&key.sip().raw()) {
                continue;
            }
            hscans.push(Alert {
                kind: AlertKind::HScan,
                sip: Some(key.sip()),
                dip: None,
                dport: Some(key.dport()),
                interval,
                magnitude,
                attacker_identified: true,
            });
        }

        let floodings: Vec<Alert> = flooding
            .iter()
            .map(|(key, magnitude)| {
                let attacker = flooding_attacker.get(&key.dip().raw()).copied();
                Alert {
                    kind: AlertKind::SynFlooding,
                    sip: attacker.map(hifind_flow::Ip4::new),
                    dip: Some(key.dip()),
                    dport: Some(key.dport()),
                    interval,
                    magnitude: *magnitude,
                    attacker_identified: attacker.is_some(),
                }
            })
            .collect();
        for a in floodings.iter().chain(&vscans).chain(&hscans) {
            self.log.record(Phase::Raw, *a);
        }

        // Phase 2: exact concentration test with the same (p, φ).
        let p = self.cfg.classify_top_p;
        let phi = self.cfg.classify_phi;
        let vscans: Vec<Alert> = vscans
            .into_iter()
            .filter(|a| {
                let x = SipDip::new(a.sip.expect("vscan sip"), a.dip.expect("vscan dip")).to_u64();
                match self.dist_sipdip_dport.concentration(x, p) {
                    Some(c) => c <= phi, // dispersed → genuine vertical scan
                    None => true,
                }
            })
            .collect();
        let hscans: Vec<Alert> = hscans
            .into_iter()
            .filter(|a| {
                let x =
                    SipDport::new(a.sip.expect("hscan sip"), a.dport.expect("hscan port")).to_u64();
                match self.dist_sipdport_dip.concentration(x, p) {
                    Some(c) => c <= phi,
                    None => true,
                }
            })
            .collect();
        for a in floodings.iter().chain(&vscans).chain(&hscans) {
            self.log.record(Phase::AfterClassification, *a);
        }

        // Phase 3: exact ratio + persistence + active-service heuristics.
        let mut fin: Vec<Alert> = Vec::new();
        for a in &floodings {
            let (dip, dport) = (a.dip.expect("flood dip"), a.dport.expect("flood port"));
            let key = DipDport::new(dip, dport).to_u64();
            if self.cfg.flood_require_active_service && !self.active_services.contains(&key) {
                self.streaks.remove(&(dip.raw(), dport));
                continue;
            }
            let syn = *self.syn_counts.get(&key).unwrap_or(&0);
            let syn_ack = *self.syn_ack_counts.get(&key).unwrap_or(&0);
            if (syn as f64) < self.cfg.flood_syn_ratio * syn_ack.max(1) as f64 {
                self.streaks.remove(&(dip.raw(), dport));
                continue;
            }
            let entry = self
                .streaks
                .entry((dip.raw(), dport))
                .or_insert((interval, 0));
            let (last, count) = *entry;
            let new_count = if interval == last || interval == last + 1 {
                count + 1
            } else {
                1
            };
            *entry = (interval, new_count);
            if new_count >= self.cfg.flood_persist_intervals {
                fin.push(*a);
            }
        }
        fin.extend(vscans);
        fin.extend(hscans);
        for a in &fin {
            self.log.record(Phase::Final, *a);
        }

        // Per-interval state resets.
        self.syn_counts.clear();
        self.syn_ack_counts.clear();
        self.dist_sipdport_dip.clear();
        self.dist_sipdip_dport.clear();
    }

    /// Replays a whole trace with the configured interval.
    pub fn run_trace(&mut self, trace: &Trace) -> AlertLog {
        for window in trace.intervals(self.cfg.interval_ms) {
            for p in window.packets {
                self.record(p);
            }
            self.end_interval();
        }
        self.log.clone()
    }

    /// The deduplicated alert log.
    pub fn log(&self) -> &AlertLog {
        &self.log
    }

    /// Peak bytes of exact state observed across intervals — the number
    /// that explodes in Table 9.
    pub fn peak_memory_bytes(&self) -> usize {
        self.peak_memory
    }

    fn track_memory(&mut self) {
        let dist_cells =
            self.dist_sipdport_dip.memory_bytes() + self.dist_sipdip_dport.memory_bytes();
        let m = self.sip_dport.memory_bytes()
            + self.dip_dport.memory_bytes()
            + self.sip_dip.memory_bytes()
            + self.syn_counts.len() * 32
            + self.active_services.len() * 16
            + dist_cells;
        self.peak_memory = self.peak_memory.max(m);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::Ip4;

    fn flood_and_scan_trace(interval_ms: u64) -> Trace {
        let victim: Ip4 = [129, 105, 0, 1].into();
        let scanner: Ip4 = [66, 6, 6, 6].into();
        let mut t = Trace::new();
        for iv in 0..5u64 {
            let base = iv * interval_ms;
            for i in 0..30u32 {
                let c: Ip4 = [9, 9, 9, (i % 100) as u8].into();
                t.push(Packet::syn(
                    base + i as u64 * 7,
                    c,
                    4000 + i as u16,
                    victim,
                    80,
                ));
                t.push(Packet::syn_ack(
                    base + i as u64 * 7 + 1,
                    c,
                    4000 + i as u16,
                    victim,
                    80,
                ));
            }
            if iv >= 1 {
                for i in 0..300u32 {
                    t.push(Packet::syn(
                        base + 100 + i as u64,
                        Ip4::new(0x5000_0000 + i),
                        2000,
                        victim,
                        80,
                    ));
                    let dst: Ip4 = [129, 105, (i >> 8) as u8, i as u8].into();
                    t.push(Packet::syn(base + 150 + i as u64, scanner, 2100, dst, 445));
                }
            }
        }
        t.sort_by_time();
        t
    }

    #[test]
    fn exact_pipeline_detects_flood_and_scan() {
        let cfg = HiFindConfig::small(60);
        let mut exact = ExactHiFind::new(cfg);
        let log = exact.run_trace(&flood_and_scan_trace(cfg.interval_ms));
        let finals = log.final_alerts();
        assert!(finals.iter().any(|a| a.kind == AlertKind::SynFlooding));
        assert!(finals.iter().any(|a| a.kind == AlertKind::HScan));
    }

    #[test]
    fn exact_matches_sketch_pipeline_on_same_trace() {
        // The §5.2 experiment in miniature.
        let cfg = HiFindConfig::small(61);
        let trace = flood_and_scan_trace(cfg.interval_ms);
        let mut exact = ExactHiFind::new(cfg);
        let exact_log = exact.run_trace(&trace);
        let mut sketch = hifind::HiFind::new(cfg).unwrap();
        let sketch_log = sketch.run_trace(&trace);
        let mut e: Vec<_> = exact_log
            .final_alerts()
            .iter()
            .map(|a| a.identity())
            .collect();
        let mut s: Vec<_> = sketch_log
            .final_alerts()
            .iter()
            .map(|a| a.identity())
            .collect();
        e.sort();
        s.sort();
        assert_eq!(e, s, "sketch and exact pipelines must agree");
    }

    #[test]
    fn peak_memory_grows_with_flows() {
        let cfg = HiFindConfig::small(62);
        let mut small = ExactHiFind::new(cfg);
        let mut t1 = Trace::new();
        for i in 0..100u32 {
            t1.push(Packet::syn(
                i as u64,
                Ip4::new(0x100 + i),
                1,
                [10, 0, 0, 1].into(),
                80,
            ));
        }
        small.run_trace(&t1);
        let mut big = ExactHiFind::new(cfg);
        let mut t2 = Trace::new();
        for i in 0..50_000u32 {
            t2.push(Packet::syn(
                i as u64 / 100,
                Ip4::new(0x100 + i),
                1,
                [10, 0, 0, 1].into(),
                80,
            ));
        }
        big.run_trace(&t2);
        assert!(
            big.peak_memory_bytes() > 50 * small.peak_memory_bytes(),
            "exact state must scale with flow count: {} vs {}",
            big.peak_memory_bytes(),
            small.peak_memory_bytes()
        );
    }
}
