//! **Table 9** — memory comparison: fixed sketches vs per-flow state under
//! worst-case traffic (100%-utilized link of 40-byte packets, one flow per
//! packet).
//!
//! The sketch row is an exact model of the paper's §5.1 configuration; the
//! per-flow rows use the analytical models of `hifind::metrics` plus a
//! *measured* bytes-per-flow calibration from the exact pipeline on a
//! small spoofed flood.
//!
//! Run: `cargo run --release -p hifind-bench --bin table9`

use hifind::metrics::{
    complete_info_bytes, trw_bytes, worst_case_flows, SketchMemoryModel, PAPER_COUNTER_BYTES,
};
use hifind::HiFindConfig;
use hifind_bench::harness::{row, section, write_json};
use hifind_bench::ExactHiFind;
use hifind_flow::{Ip4, Packet, Trace};
use serde::Serialize;

fn gb(bytes: f64) -> String {
    format!("{:.1}G", bytes / 1e9)
}

#[derive(Serialize)]
struct Table9 {
    sketch_mb: f64,
    rows: Vec<(String, String, String, String, String)>,
    measured_bytes_per_flow_exact: f64,
}

fn main() {
    // Calibrate measured per-flow bytes of the exact pipeline on a
    // 100k-flow spoofed flood.
    let mut exact = ExactHiFind::new(HiFindConfig::small(1));
    let mut t = Trace::new();
    let victim: Ip4 = [129, 105, 0, 1].into();
    const FLOWS: u32 = 100_000;
    for i in 0..FLOWS {
        t.push(Packet::syn(
            i as u64 / 50,
            Ip4::new(0x5000_0000 + i),
            2000,
            victim,
            80,
        ));
    }
    exact.run_trace(&t);
    let measured_per_flow = exact.peak_memory_bytes() as f64 / FLOWS as f64;

    let sketch = SketchMemoryModel::paper(PAPER_COUNTER_BYTES);
    let configs = [(2.5, 60.0), (2.5, 300.0), (10.0, 60.0), (10.0, 300.0)];

    section("Table 9: memory comparison (bytes), worst-case 40-byte-packet traffic");
    let widths = [26, 14, 14, 14, 14];
    row(
        &[
            "Method",
            "2.5Gbps 1min",
            "2.5Gbps 5min",
            "10Gbps 1min",
            "10Gbps 5min",
        ],
        &widths,
    );
    let sketch_cell = format!("{:.1}M", sketch.total_mb());
    row(
        &[
            "HiFIND w/ sketch",
            &sketch_cell,
            &sketch_cell,
            &sketch_cell,
            &sketch_cell,
        ],
        &widths,
    );
    let complete: Vec<String> = configs
        .iter()
        .map(|&(g, s)| gb(complete_info_bytes(g, s, 7.33)))
        .collect();
    row(
        &[
            "HiFIND w/ complete info",
            &complete[0],
            &complete[1],
            &complete[2],
            &complete[3],
        ],
        &widths,
    );
    let trw: Vec<String> = configs
        .iter()
        .map(|&(g, s)| gb(trw_bytes(g, s, 12.0)))
        .collect();
    row(&["TRW", &trw[0], &trw[1], &trw[2], &trw[3]], &widths);
    let measured: Vec<String> = configs
        .iter()
        .map(|&(g, s)| gb(3.0 * worst_case_flows(g, s) * measured_per_flow))
        .collect();
    row(
        &[
            "(measured exact pipeline)",
            &measured[0],
            &measured[1],
            &measured[2],
            &measured[3],
        ],
        &widths,
    );

    println!(
        "\nworst-case flow arrivals: {:.0}M/min at 2.5 Gbps, {:.0}M/min at 10 Gbps",
        worst_case_flows(2.5, 60.0) / 1e6,
        worst_case_flows(10.0, 60.0) / 1e6
    );
    println!(
        "measured exact-pipeline state: {measured_per_flow:.1} bytes/flow/table \
         (×3 tables in the row above)"
    );
    println!(
        "paper reference row: 13.2M sketches vs 10.3G/51.6G/41.25G/206G complete info\n\
         and 5.63G/28G/22.5G/112.5G TRW — the sketch row is flat, per-flow rows scale\n\
         linearly with speed × window."
    );

    write_json(
        "table9",
        &Table9 {
            sketch_mb: sketch.total_mb(),
            rows: configs
                .iter()
                .zip(complete.iter().zip(&trw))
                .map(|(&(g, s), (c, t))| {
                    (
                        format!("{g}Gbps {}min", s as u64 / 60),
                        sketch_cell.clone(),
                        c.clone(),
                        t.clone(),
                        gb(3.0 * worst_case_flows(g, s) * measured_per_flow),
                    )
                })
                .collect(),
            measured_bytes_per_flow_exact: measured_per_flow,
        },
    );
}
