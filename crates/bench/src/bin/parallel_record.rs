//! Sharded vs. serial record-plane throughput, written to
//! `results/BENCH_parallel_record.json`.
//!
//! Measures the serial [`SketchRecorder`] against [`ParallelRecorder`] at
//! 1, 2, 4 and 8 workers on the same synthetic SYN/SYN-ACK mix (best-of
//! interleaved passes, each including the interval-close drain/merge), and
//! cross-checks that a sharded interval's merged snapshot is bit-identical
//! to the serial one — exiting nonzero on any divergence, which is what
//! the CI smoke step keys on.
//!
//! Run: `cargo run --release -p hifind-bench --bin parallel_record`
//! (`-- --quick` shrinks the workload for CI smoke).
//!
//! Thread-parallel scaling only shows on multi-core hardware; the JSON
//! records `machine_parallelism` so a single-core result (where sharding
//! adds channel overhead and no concurrency) is not misread as a
//! regression.

use hifind::parallel::ParallelRecorder;
use hifind::{HiFindConfig, SketchRecorder};
use hifind_bench::harness::{section, write_json};
use hifind_bench::overhead::synthetic_packets;
use hifind_flow::Packet;
use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;

/// Serial recording throughput measured at the commit before the sharded
/// record plane and the single-pass hash plan landed (same machine, same
/// workload: 500k packets, seed 6, `HiFindConfig::paper(9)`, best of 5).
/// Kept in the JSON so `serial_speedup_vs_pre_pr` is meaningful without
/// checking out the old commit.
const PRE_PR_SERIAL_PPS: f64 = 1_188_384.86;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Clone, Debug, Serialize)]
struct ParallelPoint {
    workers: usize,
    /// Best-of recording throughput, interval close included.
    pps: f64,
    /// Interval-close drain-and-merge wall time at the last pass.
    merge_ms: f64,
    /// `pps / serial_pps` of this run.
    speedup_vs_serial: f64,
}

#[derive(Clone, Debug, Serialize)]
struct ParallelRecordReport {
    packets: usize,
    runs: usize,
    quick: bool,
    /// `std::thread::available_parallelism()` on the measuring machine —
    /// with 1, worker threads time-slice one core and sharding can only
    /// add overhead; the speedups below are machine-bound, not a property
    /// of the implementation.
    machine_parallelism: usize,
    /// Serial throughput measured before this change landed (see
    /// [`PRE_PR_SERIAL_PPS`]).
    baseline_pre_pr_serial_pps: f64,
    /// Serial [`SketchRecorder`] throughput, now (single-pass hash plan),
    /// interval close included — the figure `speedup_vs_serial` divides by.
    serial_pps: f64,
    /// Serial throughput of the record loop alone, measured the way the
    /// pre-change baseline was (no interval close).
    serial_record_only_pps: f64,
    /// `serial_record_only_pps / baseline_pre_pr_serial_pps`.
    serial_speedup_vs_pre_pr: f64,
    parallel: Vec<ParallelPoint>,
    /// Whether the sharded/serial snapshot cross-check ran and matched.
    divergence_checked: bool,
}

/// One timed serial pass; returns (pps with interval close, record-only
/// pps — the protocol the pre-change baseline used).
fn serial_pass(rec: &mut SketchRecorder, pkts: &[Packet]) -> (f64, f64) {
    let start = Instant::now();
    for p in pkts {
        rec.record(std::hint::black_box(p));
    }
    let record_done = Instant::now();
    let _ = rec.take_snapshot();
    let end = Instant::now();
    (
        pkts.len() as f64 / (end - start).as_secs_f64(),
        pkts.len() as f64 / (record_done - start).as_secs_f64(),
    )
}

/// One timed parallel pass; returns (pps, merge wall ms).
fn parallel_pass(rec: &mut ParallelRecorder, pkts: &[Packet]) -> (f64, f64) {
    let start = Instant::now();
    for p in pkts {
        rec.record(std::hint::black_box(p));
    }
    let record_done = Instant::now();
    rec.end_interval().expect("shard workers alive");
    let end = Instant::now();
    (
        pkts.len() as f64 / (end - start).as_secs_f64(),
        (end - record_done).as_secs_f64() * 1e3,
    )
}

/// Serial and sharded snapshots must be bit-identical for the same
/// packets; returns false (→ nonzero exit) on divergence.
fn divergence_check(cfg: &HiFindConfig, pkts: &[Packet]) -> bool {
    let mut serial = SketchRecorder::new(cfg).expect("paper config");
    let mut sharded = ParallelRecorder::new(cfg, 3).expect("paper config");
    for p in pkts {
        serial.record(p);
        sharded.record(p);
    }
    let merged = sharded.end_interval().expect("shard workers alive");
    let expected = serial.take_snapshot();
    let ok = merged == expected;
    let _ = sharded.finish();
    ok
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let (packets, runs) = if quick { (100_000, 2) } else { (500_000, 5) };
    let machine_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cfg = HiFindConfig::paper(9);
    let pkts = synthetic_packets(packets, 6);

    section("parallel record plane: serial vs sharded throughput");
    println!("machine parallelism: {machine_parallelism} core(s)");

    if !divergence_check(&cfg, &pkts[..packets.min(50_000)]) {
        eprintln!("FAIL: sharded snapshot diverges from serial");
        return ExitCode::FAILURE;
    }
    println!("divergence check: sharded == serial (bit-identical)");

    // Long-lived recorders, one warm-up pass each, then interleaved
    // best-of rounds so machine-wide drift hits every configuration.
    let mut serial = SketchRecorder::new(&cfg).expect("paper config");
    let mut sharded: Vec<ParallelRecorder> = WORKER_COUNTS
        .iter()
        .map(|&w| ParallelRecorder::new(&cfg, w).expect("paper config"))
        .collect();
    serial_pass(&mut serial, &pkts);
    for rec in &mut sharded {
        parallel_pass(rec, &pkts);
    }

    let mut serial_pps = 0.0f64;
    let mut serial_record_only_pps = 0.0f64;
    let mut best: Vec<(f64, f64)> = vec![(0.0, 0.0); WORKER_COUNTS.len()];
    for _ in 0..runs {
        let (with_close, record_only) = serial_pass(&mut serial, &pkts);
        serial_pps = serial_pps.max(with_close);
        serial_record_only_pps = serial_record_only_pps.max(record_only);
        for (i, rec) in sharded.iter_mut().enumerate() {
            let (pps, merge_ms) = parallel_pass(rec, &pkts);
            if pps > best[i].0 {
                best[i] = (pps, merge_ms);
            }
        }
    }
    for rec in sharded {
        let _ = rec.finish();
    }

    println!(
        "serial:      {:>7.2}M packets/s with interval close; record loop \
         alone {:.2}M ({:+.1}% vs pre-change {:.2}M)",
        serial_pps / 1e6,
        serial_record_only_pps / 1e6,
        (serial_record_only_pps / PRE_PR_SERIAL_PPS - 1.0) * 100.0,
        PRE_PR_SERIAL_PPS / 1e6
    );
    let parallel: Vec<ParallelPoint> = WORKER_COUNTS
        .iter()
        .zip(&best)
        .map(|(&workers, &(pps, merge_ms))| {
            println!(
                "{workers:>2} workers:  {:>7.2}M packets/s ({:.2}x serial, merge {merge_ms:.2} ms)",
                pps / 1e6,
                pps / serial_pps
            );
            ParallelPoint {
                workers,
                pps,
                merge_ms,
                speedup_vs_serial: pps / serial_pps,
            }
        })
        .collect();

    let report = ParallelRecordReport {
        packets,
        runs,
        quick,
        machine_parallelism,
        baseline_pre_pr_serial_pps: PRE_PR_SERIAL_PPS,
        serial_pps,
        serial_record_only_pps,
        serial_speedup_vs_pre_pr: serial_record_only_pps / PRE_PR_SERIAL_PPS,
        parallel,
        divergence_checked: true,
    };
    if !quick {
        write_json("BENCH_parallel_record", &report);
    }
    ExitCode::SUCCESS
}
