//! Sharded vs. serial record-plane throughput per sketch kernel, written
//! to `results/BENCH_parallel_record.json`.
//!
//! For every kernel this CPU can run (scalar always, AVX2 when CPUID says
//! so) the bench measures the serial [`SketchRecorder`] — batched
//! `record_all` path and the old per-packet protocol — against
//! [`ParallelRecorder`] at 1, 2, 4 and 8 workers on the same synthetic
//! SYN/SYN-ACK mix (best-of interleaved passes, each including the
//! interval-close drain/merge). Interval closes are taken through
//! [`ParallelRecorder::end_interval_with_stats`], so each row carries the
//! per-phase merge breakdown (per-shard drain wait, single cache-blocked
//! combine time, counter bytes touched) instead of one opaque merge blob.
//! Every kernel's run cross-checks that a sharded interval's merged
//! snapshot is bit-identical to the serial one — exiting nonzero on any
//! divergence, which is what the CI smoke step keys on.
//!
//! Run: `cargo run --release -p hifind-bench --bin parallel_record`
//! (`-- --quick` shrinks the workload for CI smoke).
//!
//! Thread-parallel scaling only shows on multi-core hardware; the JSON
//! records `machine_parallelism` so a single-core result (where sharding
//! adds channel overhead and no concurrency) is not misread as a
//! regression.

use hifind::parallel::ParallelRecorder;
use hifind::{HiFindConfig, SketchRecorder};
use hifind_bench::harness::{section, write_json};
use hifind_bench::overhead::synthetic_packets;
use hifind_flow::Packet;
use hifind_sketch::simd::{detect_isa, kernel_for, set_kernel, Isa};
use serde::Serialize;
use std::process::ExitCode;
use std::time::Instant;

/// Serial recording throughput measured at the commit before the sharded
/// record plane and the single-pass hash plan landed (same machine, same
/// workload: 500k packets, seed 6, `HiFindConfig::paper(9)`, best of 5).
/// Kept in the JSON so the speedup columns are meaningful without
/// checking out the old commit.
const PRE_PR_SERIAL_PPS: f64 = 1_188_384.86;

/// Serial record-only throughput and 8-worker merge wall time measured at
/// the PR 4 commit (scalar per-packet recording, pairwise merges) — the
/// baselines the SIMD acceptance criteria compare against.
const PR4_SERIAL_RECORD_ONLY_PPS: f64 = 1_670_725.35;
const PR4_MERGE_MS_8_WORKERS: f64 = 226.59;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[derive(Clone, Debug, Serialize)]
struct ParallelPoint {
    workers: usize,
    /// Best-of recording throughput, interval close included.
    pps: f64,
    /// `pps / serial_pps` of this kernel's serial row.
    speedup_vs_serial: f64,
    /// Per-shard drain wait in ms (time blocked receiving each shard's
    /// snapshot, shard order) at the best pass.
    recv_ms: Vec<f64>,
    /// The single cache-blocked combine of all shard snapshots, ms.
    combine_ms: f64,
    /// Counter bytes that combine touched (every source grid read once,
    /// destination read + written once).
    combine_bytes: u64,
    /// `combine_bytes / combine_ms` as GB/s — the merge's effective
    /// memory bandwidth.
    combine_gb_per_s: f64,
    /// Total interval-close wall (drain + combine): what the pre-SIMD
    /// bench reported as its single `merge_ms` blob.
    merge_ms: f64,
}

/// One kernel's complete row set.
#[derive(Clone, Debug, Serialize)]
struct KernelReport {
    /// Kernel these rows ran on (`scalar` / `avx2`).
    kernel: String,
    /// Serial throughput with interval close, batched `record_all` path.
    serial_pps: f64,
    /// Batched record loop alone (no interval close) — the headline
    /// record-path number.
    serial_record_only_pps: f64,
    /// Per-packet `record()` loop alone — the PR 4 measurement protocol,
    /// kept for like-for-like comparison with the old baseline.
    serial_per_packet_pps: f64,
    /// `serial_record_only_pps / baseline_pr4_serial_record_only_pps`.
    speedup_vs_pr4: f64,
    parallel: Vec<ParallelPoint>,
}

#[derive(Clone, Debug, Serialize)]
struct ParallelRecordReport {
    packets: usize,
    runs: usize,
    quick: bool,
    /// `std::thread::available_parallelism()` on the measuring machine —
    /// with 1, worker threads time-slice one core and sharding can only
    /// add overhead; the speedups below are machine-bound, not a property
    /// of the implementation.
    machine_parallelism: usize,
    /// ISA CPUID detection reported on this machine.
    detected_isa: String,
    /// Kernel the process would dispatch to by default (env override or
    /// CPUID); each `kernels` row says which kernel it actually ran.
    default_kernel: String,
    /// Serial throughput measured before the hash-plan change landed (see
    /// [`PRE_PR_SERIAL_PPS`]).
    baseline_pre_pr_serial_pps: f64,
    /// PR 4 scalar baselines the SIMD work is measured against.
    baseline_pr4_serial_record_only_pps: f64,
    baseline_pr4_merge_ms_8_workers: f64,
    /// One entry per kernel this machine can run.
    kernels: Vec<KernelReport>,
    /// Whether the sharded/serial snapshot cross-check ran and matched
    /// for every kernel.
    divergence_checked: bool,
}

/// One timed serial pass over the batched `record_all` path; returns
/// (pps with interval close, record-only pps).
fn serial_pass(rec: &mut SketchRecorder, pkts: &[Packet]) -> (f64, f64) {
    let start = Instant::now();
    rec.record_all(std::hint::black_box(pkts));
    let record_done = Instant::now();
    let _ = rec.take_snapshot();
    let end = Instant::now();
    (
        pkts.len() as f64 / (end - start).as_secs_f64(),
        pkts.len() as f64 / (record_done - start).as_secs_f64(),
    )
}

/// Record-only throughput of the per-packet `record()` loop — the PR 4
/// measurement protocol (snapshot taken afterwards, untimed, to reset).
fn serial_per_packet_pass(rec: &mut SketchRecorder, pkts: &[Packet]) -> f64 {
    let start = Instant::now();
    for p in pkts {
        rec.record(std::hint::black_box(p));
    }
    let pps = pkts.len() as f64 / start.elapsed().as_secs_f64();
    let _ = rec.take_snapshot();
    pps
}

/// One timed parallel pass; returns (pps, merge breakdown of the close).
fn parallel_pass(
    rec: &mut ParallelRecorder,
    pkts: &[Packet],
) -> (f64, hifind::parallel::MergeStats, f64) {
    let start = Instant::now();
    for p in pkts {
        rec.record(std::hint::black_box(p));
    }
    let record_done = Instant::now();
    let (_snap, stats) = rec.end_interval_with_stats().expect("shard workers alive");
    let end = Instant::now();
    (
        pkts.len() as f64 / (end - start).as_secs_f64(),
        stats,
        (end - record_done).as_secs_f64() * 1e3,
    )
}

/// Serial and sharded snapshots must be bit-identical for the same
/// packets; returns false (→ nonzero exit) on divergence.
fn divergence_check(cfg: &HiFindConfig, pkts: &[Packet]) -> bool {
    let mut serial = SketchRecorder::new(cfg).expect("paper config");
    let mut batched = SketchRecorder::new(cfg).expect("paper config");
    let mut sharded = ParallelRecorder::new(cfg, 3).expect("paper config");
    for p in pkts {
        serial.record(p);
        sharded.record(p);
    }
    batched.record_all(pkts);
    let merged = sharded.end_interval().expect("shard workers alive");
    let expected = serial.take_snapshot();
    let ok = merged == expected && batched.take_snapshot() == expected;
    let _ = sharded.finish();
    ok
}

/// Measures every row for the currently-selected kernel.
fn bench_kernel(
    name: &str,
    cfg: &HiFindConfig,
    pkts: &[Packet],
    runs: usize,
) -> Option<KernelReport> {
    section(&format!("record plane on the {name} kernel"));
    if !divergence_check(cfg, &pkts[..pkts.len().min(50_000)]) {
        eprintln!("FAIL: sharded/batched snapshot diverges from serial on {name}");
        return None;
    }
    println!("divergence check: batched == sharded == serial (bit-identical)");

    // Long-lived recorders, one warm-up pass each, then interleaved
    // best-of rounds so machine-wide drift hits every configuration.
    let mut serial = SketchRecorder::new(cfg).expect("paper config");
    let mut sharded: Vec<ParallelRecorder> = WORKER_COUNTS
        .iter()
        .map(|&w| ParallelRecorder::new(cfg, w).expect("paper config"))
        .collect();
    serial_pass(&mut serial, pkts);
    for rec in &mut sharded {
        parallel_pass(rec, pkts);
    }

    let mut serial_pps = 0.0f64;
    let mut serial_record_only_pps = 0.0f64;
    let mut serial_per_packet_pps = 0.0f64;
    struct Best {
        pps: f64,
        stats: hifind::parallel::MergeStats,
        merge_ms: f64,
    }
    let mut best: Vec<Best> = WORKER_COUNTS
        .iter()
        .map(|_| Best {
            pps: 0.0,
            stats: hifind::parallel::MergeStats::default(),
            merge_ms: 0.0,
        })
        .collect();
    for _ in 0..runs {
        let (with_close, record_only) = serial_pass(&mut serial, pkts);
        serial_pps = serial_pps.max(with_close);
        serial_record_only_pps = serial_record_only_pps.max(record_only);
        serial_per_packet_pps =
            serial_per_packet_pps.max(serial_per_packet_pass(&mut serial, pkts));
        for (i, rec) in sharded.iter_mut().enumerate() {
            let (pps, stats, merge_ms) = parallel_pass(rec, pkts);
            if pps > best[i].pps {
                best[i] = Best {
                    pps,
                    stats,
                    merge_ms,
                };
            }
        }
    }
    for rec in sharded {
        let _ = rec.finish();
    }

    println!(
        "serial:      {:>7.2}M packets/s with interval close; batched record \
         loop alone {:.2}M ({:.2}x PR 4 scalar {:.2}M; per-packet loop {:.2}M)",
        serial_pps / 1e6,
        serial_record_only_pps / 1e6,
        serial_record_only_pps / PR4_SERIAL_RECORD_ONLY_PPS,
        PR4_SERIAL_RECORD_ONLY_PPS / 1e6,
        serial_per_packet_pps / 1e6,
    );
    let parallel: Vec<ParallelPoint> = WORKER_COUNTS
        .iter()
        .zip(&best)
        .map(|(&workers, b)| {
            let recv_ms: Vec<f64> = b.stats.recv_ns.iter().map(|&ns| ns as f64 / 1e6).collect();
            let combine_ms = b.stats.combine_ns as f64 / 1e6;
            let combine_gb_per_s = if b.stats.combine_ns > 0 {
                b.stats.combine_bytes as f64 / (b.stats.combine_ns as f64 / 1e9) / 1e9
            } else {
                0.0
            };
            println!(
                "{workers:>2} workers:  {:>7.2}M packets/s ({:.2}x serial); close: drain \
                 {:.2} ms + combine {:.2} ms ({:.2} GB touched at {combine_gb_per_s:.1} GB/s)",
                b.pps / 1e6,
                b.pps / serial_pps,
                recv_ms.iter().sum::<f64>(),
                combine_ms,
                b.stats.combine_bytes as f64 / 1e9,
            );
            ParallelPoint {
                workers,
                pps: b.pps,
                speedup_vs_serial: b.pps / serial_pps,
                recv_ms,
                combine_ms,
                combine_bytes: b.stats.combine_bytes,
                combine_gb_per_s,
                merge_ms: b.merge_ms,
            }
        })
        .collect();

    Some(KernelReport {
        kernel: name.to_string(),
        serial_pps,
        serial_record_only_pps,
        serial_per_packet_pps,
        speedup_vs_pr4: serial_record_only_pps / PR4_SERIAL_RECORD_ONLY_PPS,
        parallel,
    })
}

fn main() -> ExitCode {
    let quick = std::env::args().any(|a| a == "--quick");
    let (packets, runs) = if quick { (100_000, 2) } else { (500_000, 5) };
    let machine_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let cfg = HiFindConfig::paper(9);
    let pkts = synthetic_packets(packets, 6);

    section("parallel record plane: serial vs sharded throughput, per kernel");
    println!("machine parallelism: {machine_parallelism} core(s)");
    let default_kernel = hifind_sketch::simd::kernel().isa();
    println!(
        "kernels: detected_isa={} default={}",
        detect_isa().name(),
        default_kernel.name()
    );

    // Scalar first (always runnable), then AVX2 when the CPU has it. In
    // quick mode only the default kernel runs, keeping the CI smoke short.
    let mut candidates = vec![Isa::Scalar, Isa::Avx2];
    if quick {
        candidates = vec![default_kernel];
    }
    let mut kernels = Vec::new();
    for isa in candidates {
        if kernel_for(isa).is_none() {
            println!("skipping {}: not supported by this CPU", isa.name());
            continue;
        }
        assert!(set_kernel(isa), "kernel_for said {isa} was runnable");
        match bench_kernel(isa.name(), &cfg, &pkts, runs) {
            Some(report) => kernels.push(report),
            None => return ExitCode::FAILURE,
        }
    }
    // Leave the process-wide selection back at the default.
    set_kernel(default_kernel);

    let report = ParallelRecordReport {
        packets,
        runs,
        quick,
        machine_parallelism,
        detected_isa: detect_isa().name().to_string(),
        default_kernel: default_kernel.name().to_string(),
        baseline_pre_pr_serial_pps: PRE_PR_SERIAL_PPS,
        baseline_pr4_serial_record_only_pps: PR4_SERIAL_RECORD_ONLY_PPS,
        baseline_pr4_merge_ms_8_workers: PR4_MERGE_MS_8_WORKERS,
        kernels,
        divergence_checked: true,
    };
    if !quick {
        write_json("BENCH_parallel_record", &report);
    }
    ExitCode::SUCCESS
}
