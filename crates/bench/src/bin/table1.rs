//! **Table 1** — functionality comparison: which detector catches which
//! attack class, demonstrated empirically on four single-attack scenarios
//! (spoofed DoS, non-spoofed DoS, horizontal scan, vertical scan).
//!
//! Paper shape: HiFIND = Yes on all four; TRW only on scans; CPM only on
//! DoS (with FPs on scans, shown in Table 6); Backscatter only on spoofed
//! DoS; Superspreader on none of them *as such* (it reports fan-out, not
//! attack type).
//!
//! Run: `cargo run --release -p hifind-bench --bin table1`

use hifind::{AlertKind, HiFind, HiFindConfig};
use hifind_baselines::{
    backscatter_validate, Cpm, CpmConfig, Superspreader, SuperspreaderConfig, Trw, TrwConfig,
};
use hifind_bench::harness::{row, section, seed, write_json};
use hifind_flow::Trace;
use hifind_trafficgen::{BackgroundProfile, EventClass};
use hifind_trafficgen::{EventSpec, NetworkModel, Scenario};
use serde::Serialize;

fn scenario_with(net: &NetworkModel, event: EventSpec) -> Scenario {
    Scenario {
        name: "table1".into(),
        network: net.clone(),
        background: BackgroundProfile {
            connections_per_sec: 100.0,
            ..BackgroundProfile::default()
        },
        events: vec![event],
        duration_ms: 8 * 60 * 1000,
        seed: seed(),
    }
}

struct Verdicts {
    hifind: bool,
    trw: bool,
    cpm: bool,
    backscatter: bool,
    superspreader: bool,
}

fn evaluate_all(trace: &Trace, truth: &hifind_trafficgen::GroundTruth) -> Verdicts {
    let entry = truth.attacks().next().expect("one injected attack");
    let cfg = HiFindConfig::paper(seed());

    let mut ids = HiFind::new(cfg).expect("paper config");
    let log = ids.run_trace(trace);
    let hifind = log.final_alerts().iter().any(|a| {
        let kind_ok = match entry.class {
            c if c.is_flooding() => a.kind == AlertKind::SynFlooding,
            EventClass::HScan => a.kind == AlertKind::HScan,
            EventClass::VScan => a.kind == AlertKind::VScan,
            _ => false,
        };
        kind_ok && entry.matches(a.sip, a.dip, a.dport)
    });

    let (trw_alerts, _) = Trw::detect(trace, TrwConfig::default());
    let trw = trw_alerts.iter().any(|a| Some(a.source) == entry.sip);

    let cpm = !Cpm::detect_intervals(trace, cfg.interval_ms, CpmConfig::default()).is_empty();

    let backscatter = entry
        .dip
        .map(|victim| backscatter_validate(trace, victim).spoofed_flood_confirmed)
        .unwrap_or(false);

    let ss = Superspreader::detect(trace, SuperspreaderConfig::default());
    let superspreader = ss.iter().any(|&(s, _)| Some(s) == entry.sip);

    Verdicts {
        hifind,
        trw,
        cpm,
        backscatter,
        superspreader,
    }
}

fn yn(b: bool) -> &'static str {
    if b {
        "Yes"
    } else {
        "No"
    }
}

#[derive(Serialize)]
struct Table1Row {
    attack: String,
    hifind: bool,
    trw: bool,
    cpm: bool,
    backscatter: bool,
    superspreader: bool,
}

fn main() {
    let net = NetworkModel::campus();
    // Victim services must be active: give them background traffic by
    // using low-index servers (popular under the Zipf profile).
    let attacks: Vec<(&str, EventSpec)> = vec![
        (
            "Spoofed DoS",
            EventSpec::SynFlood {
                attacker: None,
                victim: net.server(0),
                port: 80,
                pps: 150.0,
                start_ms: 120_000,
                duration_ms: 300_000,
                respond_prob: 0.05,
                label: "spoofed flood".into(),
            },
        ),
        (
            "Non-spoofed DoS",
            EventSpec::SynFlood {
                attacker: Some([61, 1, 2, 3].into()),
                victim: net.server(1),
                port: 80,
                pps: 150.0,
                start_ms: 120_000,
                duration_ms: 300_000,
                respond_prob: 0.05,
                label: "direct flood".into(),
            },
        ),
        (
            "Hscan",
            EventSpec::HScan {
                attacker: [62, 1, 2, 3].into(),
                dport: 445,
                victims: 2000,
                pps: 6.0,
                start_ms: 120_000,
                duration_ms: 300_000,
                hit_prob: 0.01,
                rst_prob: 0.1,
                label: "worm scan".into(),
            },
        ),
        (
            "Vscan",
            EventSpec::VScan {
                attacker: [63, 1, 2, 3].into(),
                victim: net.server(2),
                port_lo: 1,
                port_hi: 2500,
                pps: 8.0,
                start_ms: 120_000,
                open_ports: vec![22, 80],
                label: "vertical scan".into(),
            },
        ),
    ];

    section("Table 1: functionality comparison (empirical)");
    let widths = [16, 10, 8, 8, 13, 14];
    row(
        &[
            "Attack",
            "HiFIND",
            "TRW",
            "CPM",
            "Backscatter",
            "Superspreader",
        ],
        &widths,
    );
    let mut rows = Vec::new();
    for (label, event) in attacks {
        eprintln!("[table1] running scenario: {label}...");
        let (trace, truth) = scenario_with(&net, event).generate();
        let v = evaluate_all(&trace, &truth);
        row(
            &[
                label,
                yn(v.hifind),
                yn(v.trw),
                yn(v.cpm),
                yn(v.backscatter),
                yn(v.superspreader),
            ],
            &widths,
        );
        rows.push(Table1Row {
            attack: label.to_string(),
            hifind: v.hifind,
            trw: v.trw,
            cpm: v.cpm,
            backscatter: v.backscatter,
            superspreader: v.superspreader,
        });
    }
    println!(
        "\npaper shape: HiFIND row of Yes; TRW detects scans only (spoofed sources\n\
         never re-contact → no walk crosses); CPM fires on aggregate imbalance (both\n\
         DoS rows, and — its weakness — also on scans, see Table 6); Backscatter\n\
         confirms only the spoofed flood; Superspreader flags high fan-out sources\n\
         (scans) but cannot tell attack types apart."
    );
    write_json("table1", &rows);
}
