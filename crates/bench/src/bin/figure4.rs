//! **Figure 4** — the bi-modal distribution of the number of unique
//! destination ports visited by {SIP, DIP} pairs with more than 50
//! un-responded SYNs in a one-minute interval.
//!
//! Paper shape: two separated modes — SYN floodings concentrate on one or
//! two ports (left mode), vertical scans spread over many (right mode),
//! with a near-empty valley in between. This bi-modality is what makes the
//! 2D sketch's concentration test work.
//!
//! Run: `cargo run --release -p hifind-bench --bin figure4`

use hifind_bench::harness::{pair_port_profile, port_histogram, scale, section, seed, write_json};
use hifind_trafficgen::presets;
use serde::Serialize;

#[derive(Serialize)]
struct Figure4 {
    bins: Vec<(String, usize)>,
    pairs: usize,
    left_mode: usize,
    valley: usize,
    right_mode: usize,
}

fn main() {
    // The NU-like mix contains both floodings (non-spoofed → heavy
    // {SIP,DIP} pairs on one port) and vertical scans (heavy pairs over
    // many ports).
    let scenario = presets::nu_like(seed()).scaled(scale());
    eprintln!("[figure4] generating NU-like...");
    let (trace, _) = scenario.generate();

    let profile = pair_port_profile(&trace, 60_000, 50);
    let counts: Vec<usize> = profile.iter().map(|&(_, _, c)| c).collect();
    let bins = port_histogram(&counts);

    section("Figure 4: #unique Dports for {SIP,DIP} pairs with >50 un-responded SYNs/min");
    let max = bins.iter().map(|&(_, c)| c).max().unwrap_or(1).max(1);
    for (label, count) in &bins {
        let bar = "#".repeat((count * 50 / max).max(usize::from(*count > 0)));
        println!("{label:>8} | {bar} {count}");
    }

    // Quantify bi-modality: mass at ≤2 ports (flooding mode), mass at >32
    // ports (scan mode), and the valley between.
    let left: usize = counts.iter().filter(|&&c| c <= 2).count();
    let valley: usize = counts.iter().filter(|&&c| c > 2 && c <= 32).count();
    let right: usize = counts.iter().filter(|&&c| c > 32).count();
    println!(
        "\nmodes: {left} pairs at ≤2 ports (flooding), {valley} in the valley (3–32), \
         {right} at >32 ports (vertical scans)"
    );
    println!(
        "bi-modal: {}",
        if left > valley && right > valley {
            "YES — both modes exceed the valley"
        } else {
            "NO"
        }
    );
    write_json(
        "figure4",
        &Figure4 {
            bins,
            pairs: counts.len(),
            left_mode: left,
            valley,
            right_mode: right,
        },
    );
}
