//! **§5.5.3** — high-speed traffic monitoring: recording throughput and
//! per-interval detection time, including the paper's ×60 time-compression
//! stress test.
//!
//! Paper software reference points: 11M insertions/s for one reversible
//! sketch (≈3.7 Gbps at worst-case 40-byte packets); detection takes 0.34 s
//! per one-minute interval on average; compressing the trace ×60 keeps the
//! maximum detection time under the interval length.
//!
//! Run: `cargo run --release -p hifind-bench --bin throughput`

use hifind::{HiFind, HiFindConfig, SketchRecorder};
use hifind_bench::harness::{scale, section, seed, write_json};
use hifind_flow::rng::SplitMix64;
use hifind_sketch::{ReversibleSketch, RsConfig};
use hifind_trafficgen::{presets, Scenario};
use serde::Serialize;
use std::time::Instant;

#[derive(Serialize)]
struct Throughput {
    rs_insertions_per_sec: f64,
    rs_gbps_worst_case: f64,
    recorder_packets_per_sec: f64,
    recorder_gbps_worst_case: f64,
    detection_avg_s: f64,
    detection_max_s: f64,
    compressed_detection_avg_s: f64,
    compressed_detection_max_s: f64,
}

fn main() {
    // --- Single reversible-sketch insertion throughput -----------------
    let mut rs = ReversibleSketch::new(RsConfig::paper_48bit(seed())).expect("paper config");
    let mut rng = SplitMix64::new(1);
    let keys: Vec<u64> = (0..1_000_000)
        .map(|_| rng.next_u64() & ((1 << 48) - 1))
        .collect();
    // Warm up, then measure.
    for &k in keys.iter().take(100_000) {
        rs.update(k, 1);
    }
    let start = Instant::now();
    let mut reps = 0u64;
    while start.elapsed().as_secs_f64() < 2.0 {
        for &k in &keys {
            rs.update(k, 1);
        }
        reps += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    let ins_per_sec = (reps * keys.len() as u64) as f64 / elapsed;
    let gbps = ins_per_sec * 40.0 * 8.0 / 1e9;

    section("§5.5.3: recording throughput");
    println!(
        "one 48-bit reversible sketch: {:.1}M insertions/s (≈{gbps:.1} Gbps at \
         worst-case 40-byte packets)",
        ins_per_sec / 1e6
    );
    println!("paper software reference: 11M insertions/s ≈ 3.7 Gbps (different hardware)");

    // --- Full recorder throughput ---------------------------------------
    let cfg = HiFindConfig::paper(seed());
    let mut recorder = SketchRecorder::new(&cfg).expect("paper config");
    let scenario = presets::nu_like(seed()).scaled(scale());
    eprintln!("[throughput] generating NU-like...");
    let (trace, _) = scenario.generate();
    let start = Instant::now();
    for p in trace.iter() {
        recorder.record(p);
    }
    let rec_elapsed = start.elapsed().as_secs_f64();
    let pkts_per_sec = trace.len() as f64 / rec_elapsed;
    let rec_gbps = pkts_per_sec * 40.0 * 8.0 / 1e9;
    println!(
        "full recorder (6 sketches): {:.1}M packets/s (≈{rec_gbps:.1} Gbps worst case)",
        pkts_per_sec / 1e6
    );

    // --- Detection time per interval ------------------------------------
    // RunReport times each pipeline phase internally, so the harness reads
    // the numbers off the report instead of stopwatching end_interval().
    let mut ids = HiFind::new(cfg).expect("paper config");
    let (_, report) = ids.run_trace_with_report(&trace);
    let total = &report.phase_latency.total;
    let avg = total.mean_ns() as f64 / 1e9;
    let max = total.max_ns as f64 / 1e9;
    println!(
        "\ndetection per one-minute interval: avg {avg:.3} s, max {max:.3} s over {} intervals",
        report.intervals.len()
    );
    println!(
        "phase means: forecast {:.1} ms, detect {:.1} ms, classify {:.1} ms, \
         flood-filter {:.1} ms",
        report.phase_latency.forecast.mean_ns() as f64 / 1e6,
        report.phase_latency.detect.mean_ns() as f64 / 1e6,
        report.phase_latency.classify.mean_ns() as f64 / 1e6,
        report.phase_latency.flood_filter.mean_ns() as f64 / 1e6,
    );
    println!("paper reference: avg 0.34 s, max 12.91 s — well under the interval");

    // --- Stress: time compression -----------------------------------------
    // The paper compresses its full day ×60 (24 minutes of wall time); our
    // preset is 30 minutes long, so ×10 gives the equivalent effect —
    // every remaining interval carries 10× the traffic and 10× the
    // concurrent anomalies.
    let compressed = Scenario::time_compressed(&trace, 10);
    let mut ids = HiFind::new(cfg).expect("paper config");
    let (_, creport) = ids.run_trace_with_report(&compressed);
    let cavg = creport.phase_latency.total.mean_ns() as f64 / 1e9;
    let cmax = creport.phase_latency.total.max_ns as f64 / 1e9;
    println!("stress (trace time-compressed ×10): avg {cavg:.3} s, max {cmax:.3} s per interval");
    println!("paper reference: avg 35.61 s, max 46.90 s — still under one minute");

    // The full per-interval report (phase latencies, alert counts, sketch
    // health) in the same machine-readable shape `hifind detect
    // --metrics-json` emits.
    write_json("throughput_run_report", &report);
    write_json(
        "throughput",
        &Throughput {
            rs_insertions_per_sec: ins_per_sec,
            rs_gbps_worst_case: gbps,
            recorder_packets_per_sec: pkts_per_sec,
            recorder_gbps_worst_case: rec_gbps,
            detection_avg_s: avg,
            detection_max_s: max,
            compressed_detection_avg_s: cavg,
            compressed_detection_max_s: cmax,
        },
    );
}
