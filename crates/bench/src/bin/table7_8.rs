//! **Tables 7 & 8** — the top-5 and bottom-5 detected horizontal scans by
//! change difference, with their destination fan-out and cause label.
//!
//! Paper shape: the top of the list is dominated by large worm/botnet
//! sweeps (SQLSnake on 1433, SSH scans, MySQL bots, Rahack) with tens of
//! thousands of targets; the bottom consists of minimal worm probes
//! (MSBlast/Nachi on 135, Sasser on 445/5554, NetBIOS on 139) that barely
//! cross the threshold.
//!
//! Run: `cargo run --release -p hifind-bench --bin table7_8`

use hifind::{AlertKind, HiFind, HiFindConfig};
use hifind_bench::harness::{distinct_dips_per_scanner, row, scale, section, seed, write_json};
use hifind_trafficgen::presets;
use serde::Serialize;

#[derive(Serialize)]
struct ScanRow {
    sip: String,
    dport: u16,
    dips: usize,
    change: i64,
    cause: String,
}

fn main() {
    let scenario = presets::nu_like(seed()).scaled(scale());
    eprintln!("[table7_8] generating NU-like...");
    let (trace, truth) = scenario.generate();
    let mut ids = HiFind::new(HiFindConfig::paper(seed())).expect("paper config");
    let log = ids.run_trace(&trace);

    let fanout = distinct_dips_per_scanner(&trace);
    let mut scans: Vec<ScanRow> = log
        .final_alerts()
        .iter()
        .filter(|a| a.kind == AlertKind::HScan)
        .map(|a| {
            let sip = a.sip.expect("hscan sip");
            let dport = a.dport.expect("hscan dport");
            let cause = truth
                .find_match(Some(sip), None, Some(dport))
                .map(|e| e.label.clone())
                .unwrap_or_else(|| "unknown".into());
            ScanRow {
                sip: sip.to_string(),
                dport,
                dips: fanout.get(&(sip.raw(), dport)).copied().unwrap_or(0),
                change: a.magnitude,
                cause,
            }
        })
        .collect();
    scans.sort_by_key(|s| std::cmp::Reverse(s.change));

    let widths = [18, 8, 8, 8, 30];
    section("Table 7: top-5 Hscans by change difference");
    row(&["SIP", "Dport", "#DIP", "Δ", "Cause"], &widths);
    for r in scans.iter().take(5) {
        row(
            &[
                &r.sip,
                &r.dport.to_string(),
                &r.dips.to_string(),
                &r.change.to_string(),
                &r.cause,
            ],
            &widths,
        );
    }

    section("Table 8: bottom-5 Hscans by change difference");
    row(&["SIP", "Dport", "#DIP", "Δ", "Cause"], &widths);
    for r in scans.iter().rev().take(5).collect::<Vec<_>>().iter().rev() {
        row(
            &[
                &r.sip,
                &r.dport.to_string(),
                &r.dips.to_string(),
                &r.change.to_string(),
                &r.cause,
            ],
            &widths,
        );
    }
    println!(
        "\n({} Hscans detected in total; paper's NU experiment reports 936 at full\n\
         trace scale — counts scale with HIFIND_SCALE, the ordering shape is the claim)",
        scans.len()
    );
    write_json("table7_8", &scans);
}
