//! **Table 4** — detection results under the three pipeline phases on the
//! NU-like and LBL-like workloads.
//!
//! Paper shape to reproduce: phase 2 (2D sketches) trims port-scan false
//! positives, phase 3 (heuristics) trims SYN-flooding false positives; on
//! the LBL-like trace *all* raw flooding alerts are benign noise and die
//! in phase 3.
//!
//! Run: `cargo run --release -p hifind-bench --bin table4`
//! (`HIFIND_SCALE` scales the workload, default 0.2).

use hifind::evaluate::evaluate;
use hifind::{AlertKind, HiFind, HiFindConfig, Phase};
use hifind_bench::harness::{row, scale, section, seed, write_json};
use hifind_trafficgen::presets;
use serde::Serialize;

#[derive(Serialize)]
struct TraceResult {
    trace: String,
    rows: Vec<(String, usize, usize, usize)>,
    recall_flooding: f64,
    recall_hscan: f64,
    recall_vscan: f64,
    false_positives_final: usize,
}

fn run(name: &str, scenario: hifind_trafficgen::Scenario) -> TraceResult {
    eprintln!("[table4] generating {name}...");
    let (trace, truth) = scenario.generate();
    eprintln!("[table4]   {}", trace.stats());
    let mut ids = HiFind::new(HiFindConfig::paper(seed())).expect("paper config");
    let log = ids.run_trace(&trace);
    let summary = evaluate(log.final_alerts(), &truth);
    let rows = [
        ("SYN flooding", AlertKind::SynFlooding),
        ("Hscan", AlertKind::HScan),
        ("Vscan", AlertKind::VScan),
    ]
    .iter()
    .map(|(label, kind)| {
        (
            label.to_string(),
            log.count(Phase::Raw, *kind),
            log.count(Phase::AfterClassification, *kind),
            log.count(Phase::Final, *kind),
        )
    })
    .collect();
    TraceResult {
        trace: name.to_string(),
        rows,
        recall_flooding: summary.flooding.recall(),
        recall_hscan: summary.hscan.recall(),
        recall_vscan: summary.vscan.recall(),
        false_positives_final: summary.flooding.false_positives()
            + summary.hscan.false_positives()
            + summary.vscan.false_positives(),
    }
}

fn main() {
    let s = scale();
    let results = vec![
        run("NU-like", presets::nu_like(seed()).scaled(s)),
        run("LBL-like", presets::lbl_like(seed()).scaled(s)),
    ];

    section("Table 4: detection results under three phases");
    let widths = [10, 14, 14, 18, 16];
    row(
        &[
            "Trace",
            "Attack type",
            "Phase1: raw",
            "Phase2: port scan",
            "Phase3: flooding",
        ],
        &widths,
    );
    for r in &results {
        for (i, (label, raw, p2, p3)) in r.rows.iter().enumerate() {
            let trace = if i == 0 { r.trace.as_str() } else { "" };
            row(
                &[
                    trace,
                    label,
                    &raw.to_string(),
                    &p2.to_string(),
                    &p3.to_string(),
                ],
                &widths,
            );
        }
    }
    println!();
    for r in &results {
        println!(
            "{}: final-phase recall — flooding {:.2}, hscan {:.2}, vscan {:.2}; residual FP: {}",
            r.trace, r.recall_flooding, r.recall_hscan, r.recall_vscan, r.false_positives_final
        );
    }
    println!(
        "\npaper shape: Hscan/Vscan counts drop raw→phase2; flooding drops phase2→phase3;\n\
         LBL flooding goes to (near) zero because the trace has no true flooding."
    );
    write_json("table4", &results);
}
