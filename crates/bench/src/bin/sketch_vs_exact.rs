//! **§5.2** — sketches are highly accurate in recording traffic for
//! detection: the same three-phase algorithm run over (a) sketches and
//! (b) exact per-flow tables must find the same attacks, at wildly
//! different memory costs.
//!
//! Run: `cargo run --release -p hifind-bench --bin sketch_vs_exact`

use hifind::{HiFind, HiFindConfig};
use hifind_bench::harness::{scale, section, seed, write_json};
use hifind_bench::ExactHiFind;
use hifind_trafficgen::presets;
use serde::Serialize;
use std::collections::BTreeSet;

#[derive(Serialize)]
struct Comparison {
    trace: String,
    sketch_final: usize,
    exact_final: usize,
    identical: bool,
    only_sketch: usize,
    only_exact: usize,
    sketch_memory_mb: f64,
    exact_peak_memory_mb: f64,
}

fn run(name: &str, scenario: hifind_trafficgen::Scenario) -> Comparison {
    eprintln!("[sketch_vs_exact] generating {name}...");
    let (trace, _) = scenario.generate();
    let cfg = HiFindConfig::paper(seed());

    let mut sketch = HiFind::new(cfg).expect("paper config");
    let sketch_log = sketch.run_trace(&trace);
    let mut exact = ExactHiFind::new(cfg);
    let exact_log = exact.run_trace(&trace);

    let s: BTreeSet<_> = sketch_log
        .final_alerts()
        .iter()
        .map(|a| a.identity())
        .collect();
    let e: BTreeSet<_> = exact_log
        .final_alerts()
        .iter()
        .map(|a| a.identity())
        .collect();

    Comparison {
        trace: name.to_string(),
        sketch_final: s.len(),
        exact_final: e.len(),
        identical: s == e,
        only_sketch: s.difference(&e).count(),
        only_exact: e.difference(&s).count(),
        sketch_memory_mb: sketch.recorder().memory_bytes() as f64 / 1e6,
        exact_peak_memory_mb: exact.peak_memory_bytes() as f64 / 1e6,
    }
}

fn main() {
    let s = scale();
    let results = vec![
        run("NU-like", presets::nu_like(seed()).scaled(s)),
        run("LBL-like", presets::lbl_like(seed()).scaled(s)),
    ];

    section("§5.2: sketch vs exact flow-table detection (same algorithm)");
    for r in &results {
        println!(
            "{}: sketch found {}, exact found {} → identical: {} \
             ({} only-sketch, {} only-exact)",
            r.trace, r.sketch_final, r.exact_final, r.identical, r.only_sketch, r.only_exact
        );
        println!(
            "    memory: sketches {:.1} MB (fixed) vs exact tables {:.1} MB (peak, grows with flows)",
            r.sketch_memory_mb, r.exact_peak_memory_mb
        );
    }
    println!(
        "\npaper claim: identical attack sets from both recordings; small divergence\n\
         (a few keys at the threshold boundary) is the expected estimation noise."
    );
    write_json("sketch_vs_exact", &results);
}
