//! **§5.5.2** — counter memory accesses per packet.
//!
//! Paper: 15 accesses per packet for the 48-bit reversible sketches, 16
//! for the 64-bit one (hardware layout with folded verification), and 5
//! per 2D sketch — small and constant, which is what makes the recorder
//! hardware-implementable. This binary prints the paper's hardware model
//! next to this implementation's software counts (separate verifier
//! sketches: stages + verifier stages).
//!
//! Run: `cargo run --release -p hifind-bench --bin mem_accesses`

use hifind::metrics::AccessModel;
use hifind::{HiFindConfig, SketchRecorder};
use hifind_bench::harness::{row, section, write_json};
use serde::Serialize;

#[derive(Serialize)]
struct Accesses {
    paper_rs48: usize,
    paper_rs64: usize,
    paper_twod: usize,
    ours_rs48: usize,
    ours_rs64: usize,
    ours_twod: usize,
    recorder_total: usize,
}

fn main() {
    let hw = AccessModel::paper_hardware();
    let sw = AccessModel::this_implementation();
    let recorder = SketchRecorder::new(&HiFindConfig::paper(0)).expect("paper config");

    section("§5.5.2: counter memory accesses per packet");
    let widths = [30, 18, 22];
    row(
        &["Structure", "Paper (hardware)", "This impl (software)"],
        &widths,
    );
    row(
        &[
            "48-bit reversible sketch",
            &hw.rs48.to_string(),
            &sw.rs48.to_string(),
        ],
        &widths,
    );
    row(
        &[
            "64-bit reversible sketch",
            &hw.rs64.to_string(),
            &sw.rs64.to_string(),
        ],
        &widths,
    );
    row(
        &[
            "2D sketch (per matrix bank)",
            &hw.twod.to_string(),
            &sw.twod.to_string(),
        ],
        &widths,
    );
    row(
        &[
            "full recorder (all sketches)",
            &hw.recorder_total().to_string(),
            &recorder.accesses_per_packet().to_string(),
        ],
        &widths,
    );
    println!(
        "\nboth are O(1) per packet — independent of flow count — which is the\n\
         property that matters; the hardware figure folds verification updates\n\
         into the same memory words, the software one issues them separately."
    );
    write_json(
        "mem_accesses",
        &Accesses {
            paper_rs48: hw.rs48,
            paper_rs64: hw.rs64,
            paper_twod: hw.twod,
            ours_rs48: sw.rs48,
            ours_rs64: sw.rs64,
            ours_twod: sw.twod,
            recorder_total: recorder.accesses_per_packet(),
        },
    );
}
