//! Hierarchical aggregation tier: fan-in throughput and per-tier merge
//! latency for flat vs 2-tier vs 3-tier trees at several fan-out
//! settings.
//!
//! The same 64-agent per-packet split of one trace is replayed over real
//! loopback TCP through three topologies:
//!
//! - **flat**: 64 agents → root collector
//! - **2-tier**: 64 agents → ⌈64/f⌉ aggregators → root
//! - **3-tier**: 64 agents → ⌈64/f⌉ → ⌈⌈64/f⌉/f⌉ aggregators → root
//!
//! at fan-out f ∈ {4, 8, 16}. Sketch linearity makes every topology's
//! detection identical to the single-router reference; each run asserts
//! that, then reports leaf-frame throughput and the mean COMBINE latency
//! per tier (from each node's `hifind_collect_combine_seconds`).
//!
//! Run: `cargo run --release -p hifind-bench --bin hierarchy [-- --quick]`

use hifind::{HiFind, HiFindConfig};
use hifind_bench::harness::{section, seed, write_json};
use hifind_collect::{
    AgentConfig, Aggregator, AggregatorConfig, AggregatorHandle, Collector, CollectorConfig,
    RouterAgent,
};
use hifind_flow::{Packet, Trace};
use hifind_telemetry::registry::MetricValue;
use hifind_telemetry::Registry;
use hifind_trafficgen::{presets, split_per_packet};
use serde::Serialize;
use std::collections::BTreeSet;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const AGENTS: usize = 64;
const FAN_OUTS: [usize; 3] = [4, 8, 16];

type AlertIdentity = (
    hifind::report::AlertKind,
    Option<u32>,
    Option<u32>,
    Option<u16>,
);

/// Mean COMBINE latency across one tier's nodes, read from their
/// `hifind_collect_combine_seconds` histograms.
#[derive(Serialize)]
struct TierLatency {
    tier: String,
    nodes: usize,
    combines: u64,
    mean_combine_us: f64,
}

#[derive(Serialize)]
struct TopologyResult {
    topology: String,
    tiers: usize,
    fan_out: usize,
    agents: usize,
    intervals: usize,
    elapsed_ms: u64,
    /// Frames the leaf agents pushed into the tree.
    leaf_frames: u64,
    leaf_frames_per_sec: f64,
    /// Frames the root actually assembled (its direct children's).
    root_frames_received: u64,
    final_alerts: usize,
    identical_to_single: bool,
    /// Root first, then each aggregation tier top-down.
    tier_latencies: Vec<TierLatency>,
}

#[derive(Serialize)]
struct HierarchyBench {
    quick: bool,
    /// Sketch kernel every COMBINE in this process dispatched to
    /// (`hifind_sketch::simd::kernel()`), so the tier latencies are
    /// attributable to a code path.
    kernel: String,
    /// ISA CPUID detection reported, independent of any
    /// `HIFIND_FORCE_KERNEL` override.
    detected_isa: String,
    agents: usize,
    fan_outs: Vec<usize>,
    results: Vec<TopologyResult>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = std::env::var("HIFIND_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 0.01 } else { 0.05 });
    // `small` sketches are the realistic per-frame payload (~1.4 MB on
    // the wire); the stretched interval keeps the run to 6 intervals so
    // all seven topologies finish in a couple of minutes.
    let mut cfg = HiFindConfig::small(seed());
    cfg.interval_ms = 600_000;
    cfg.threshold_per_sec = 0.25;

    eprintln!("[hierarchy] generating NU-like at scale {scale}...");
    let (trace, _) = presets::nu_like(seed()).scaled(scale).generate();
    let base = trace.iter().next().expect("non-empty trace").ts_ms / cfg.interval_ms;
    let last = trace.iter().last().expect("non-empty trace").ts_ms / cfg.interval_ms;
    let intervals = (last - base + 1) as usize;

    let mut single = HiFind::new(cfg).expect("config");
    let reference: BTreeSet<AlertIdentity> = single
        .run_trace(&trace)
        .final_alerts()
        .iter()
        .map(|a| a.identity())
        .collect();

    let windows: Vec<Vec<Vec<Packet>>> = split_per_packet(&trace, AGENTS, seed() ^ 0x60D)
        .iter()
        .map(|part| global_windows(part, cfg.interval_ms, base, intervals))
        .collect();

    let mut results = Vec::new();
    section("hierarchical aggregation: flat vs 2-tier vs 3-tier");
    let flat = run_topology(cfg, &windows, intervals, 1, AGENTS, &reference);
    print_result(&flat);
    results.push(flat);
    for fan_out in FAN_OUTS {
        for tiers in [2usize, 3] {
            let r = run_topology(cfg, &windows, intervals, tiers, fan_out, &reference);
            print_result(&r);
            results.push(r);
        }
    }

    write_json(
        "BENCH_hierarchy",
        &HierarchyBench {
            quick,
            kernel: hifind_sketch::simd::kernel().isa().name().to_string(),
            detected_isa: hifind_sketch::simd::detect_isa().name().to_string(),
            agents: AGENTS,
            fan_outs: FAN_OUTS.to_vec(),
            results,
        },
    );
}

/// Buckets `part`'s packets into the merged trace's interval grid so all
/// agents end the same number of intervals in lockstep.
fn global_windows(part: &Trace, interval_ms: u64, base: u64, n: usize) -> Vec<Vec<Packet>> {
    let mut windows = vec![Vec::new(); n];
    for p in part.iter() {
        windows[(p.ts_ms / interval_ms - base) as usize].push(*p);
    }
    windows
}

/// Runs one topology end to end and reads each tier's combine histogram.
fn run_topology(
    cfg: HiFindConfig,
    windows: &[Vec<Vec<Packet>>],
    intervals: usize,
    tiers: usize,
    fan_out: usize,
    reference: &BTreeSet<AlertIdentity>,
) -> TopologyResult {
    // Every node gets generous alignment headroom: this bench measures
    // merge cost and throughput, not degradation policy.
    let deadline = Duration::from_secs(600);
    let window = intervals as u64 + 1;

    // Aggregation-tier widths, leaf-most first (the root is not listed).
    // Children connect to parent `child_id / fan_out` in contiguous
    // chunks, so each tier is ⌈below / fan_out⌉ wide.
    let mut widths = Vec::new();
    let mut below = AGENTS;
    for _ in 1..tiers {
        below = below.div_ceil(fan_out);
        widths.push(below);
    }
    let root_children = *widths.last().unwrap_or(&AGENTS);

    let root_registry = Registry::new();
    let mut ccfg = CollectorConfig::new(root_children);
    ccfg.straggler_deadline = deadline;
    ccfg.reorder_window = window;
    let root = Collector::bind("127.0.0.1:0", cfg, ccfg, Some(root_registry.clone()))
        .expect("bind root collector");

    // Build aggregation tiers top-down so every node knows its upstream
    // address at bind time. `tier_handles[0]` sits just below the root;
    // the agents dial the last tier built.
    let mut tier_handles: Vec<Vec<AggregatorHandle>> = Vec::new();
    let mut tier_registries: Vec<Vec<Registry>> = Vec::new();
    let mut upstreams = vec![root.local_addr().to_string()];
    for (depth, &width) in widths.iter().rev().enumerate() {
        // Width of the tier feeding this one: the next entry down in
        // `widths`, or the agents for the leaf-most tier.
        let below_total = if depth + 1 < widths.len() {
            widths[widths.len() - depth - 2]
        } else {
            AGENTS
        };
        let mut handles = Vec::new();
        let mut registries = Vec::new();
        for node in 0..width {
            let lo = node * fan_out;
            let hi = ((node + 1) * fan_out).min(below_total);
            let registry = Registry::new();
            let mut acfg = AggregatorConfig::new(node as u32, hi - lo);
            acfg.straggler_deadline = deadline;
            acfg.reorder_window = window;
            let up = if upstreams.len() == 1 {
                0
            } else {
                node / fan_out
            };
            let agg = Aggregator::bind(
                "127.0.0.1:0",
                upstreams[up].clone(),
                cfg,
                acfg,
                Some(registry.clone()),
            )
            .expect("bind aggregator");
            handles.push(agg);
            registries.push(registry);
        }
        upstreams = handles.iter().map(|a| a.local_addr().to_string()).collect();
        tier_handles.push(handles);
        tier_registries.push(registries);
    }

    // Drive the agents concurrently, one thread each, interval-locked.
    let start = Instant::now();
    let tick = Arc::new(Barrier::new(AGENTS));
    let agent_threads: Vec<_> = windows
        .iter()
        .cloned()
        .enumerate()
        .map(|(id, wins)| {
            let addr = if tiers == 1 {
                upstreams[0].clone()
            } else {
                upstreams[id / fan_out].clone()
            };
            let tick = Arc::clone(&tick);
            std::thread::spawn(move || {
                let mut agent =
                    RouterAgent::new(addr, &cfg, AgentConfig::new(id as u32)).expect("config");
                for window in &wins {
                    tick.wait();
                    for p in window {
                        agent.record(p);
                    }
                    agent.end_interval();
                }
                agent.finish()
            })
        })
        .collect();
    let mut leaf_frames = 0u64;
    for t in agent_threads {
        let stats = t.join().expect("agent thread");
        assert_eq!(stats.frames_dropped, 0, "agents must not drop frames");
        leaf_frames += stats.frames_shipped;
    }

    // Tear down bottom-up: each tier finishes naturally once its children
    // disconnect, then ships its tail upstream.
    let mut tier_latencies = Vec::new();
    for (depth, handles) in tier_handles.into_iter().enumerate().rev() {
        for agg in handles {
            let report = agg.wait().expect("aggregator threads");
            assert_eq!(report.frames_rejected, 0, "clean run rejects nothing");
            assert_eq!(report.frames_unshipped, 0, "clean run ships everything");
        }
        tier_latencies.push(tier_latency(
            format!("tier{}", depth + 1),
            &tier_registries[depth],
        ));
    }
    let report = root.wait().expect("collector threads");
    let elapsed = start.elapsed();
    tier_latencies.push(tier_latency("root".to_string(), &[root_registry]));
    tier_latencies.reverse(); // root first, then top-down

    let networked: BTreeSet<AlertIdentity> = report
        .log
        .final_alerts()
        .iter()
        .map(|a| a.identity())
        .collect();
    assert_eq!(
        &networked, reference,
        "{tiers}-tier fan-out {fan_out} diverged from the single-router reference"
    );

    TopologyResult {
        topology: match tiers {
            1 => "flat".to_string(),
            n => format!("{n}-tier"),
        },
        tiers,
        fan_out,
        agents: AGENTS,
        intervals,
        elapsed_ms: elapsed.as_millis() as u64,
        leaf_frames,
        leaf_frames_per_sec: leaf_frames as f64 / elapsed.as_secs_f64(),
        root_frames_received: report.frames_received,
        final_alerts: networked.len(),
        identical_to_single: &networked == reference,
        tier_latencies,
    }
}

/// Sums one tier's combine histograms into a mean latency.
fn tier_latency(tier: String, registries: &[Registry]) -> TierLatency {
    let mut combines = 0u64;
    let mut total = 0.0f64;
    for registry in registries {
        if let Some(MetricValue::Histogram(h)) =
            registry.snapshot().get("hifind_collect_combine_seconds")
        {
            combines += h.count;
            total += h.sum;
        }
    }
    TierLatency {
        tier,
        nodes: registries.len(),
        combines,
        mean_combine_us: if combines == 0 {
            0.0
        } else {
            total / combines as f64 * 1e6
        },
    }
}

fn print_result(r: &TopologyResult) {
    println!(
        "{:<7} fan-out {:>2}: {:>5} leaf frames in {:>5} ms ({:>8.1} frames/s), identical: {}",
        r.topology,
        r.fan_out,
        r.leaf_frames,
        r.elapsed_ms,
        r.leaf_frames_per_sec,
        r.identical_to_single
    );
    for t in &r.tier_latencies {
        println!(
            "        {:<6} ({:>2} nodes): {:>4} combines, mean {:>8.1} µs",
            t.tier, t.nodes, t.combines, t.mean_combine_us
        );
    }
}
