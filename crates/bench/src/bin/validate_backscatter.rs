//! **§5.4** — validating detected SYN floodings with backscatter analysis
//! (Moore et al.): a spoofed-flood victim's responses spray uniformly over
//! the address space.
//!
//! Paper shape: a majority of detected floodings are confirmed by
//! backscatter; the unconfirmed remainder are dominated by non-spoofed
//! attacks (no spray — responses go to the single real attacker) and
//! threshold-boundary cases.
//!
//! Run: `cargo run --release -p hifind-bench --bin validate_backscatter`

use hifind::{AlertKind, HiFind, HiFindConfig};
use hifind_baselines::backscatter_validate;
use hifind_bench::harness::{scale, section, seed, write_json};
use hifind_trafficgen::{presets, EventClass};
use serde::Serialize;

#[derive(Serialize)]
struct Validation {
    detected_floodings: usize,
    confirmed_by_backscatter: usize,
    unconfirmed_nonspoofed: usize,
    unconfirmed_other: usize,
}

fn main() {
    // Boost victim responsiveness slightly: backscatter validation needs
    // the victim to answer *some* of the spoofed SYNs.
    let scenario = presets::nu_like(seed()).scaled(scale());
    eprintln!("[validate_backscatter] generating NU-like...");
    let (trace, truth) = scenario.generate();
    let mut ids = HiFind::new(HiFindConfig::paper(seed())).expect("paper config");
    let log = ids.run_trace(&trace);

    let floodings: Vec<_> = log
        .final_alerts()
        .iter()
        .filter(|a| a.kind == AlertKind::SynFlooding)
        .collect();

    section("§5.4: backscatter validation of detected SYN floodings");
    let mut confirmed = 0usize;
    let mut unconfirmed_nonspoofed = 0usize;
    let mut unconfirmed_other = 0usize;
    for alert in &floodings {
        let victim = alert.dip.expect("flooding alerts carry the victim");
        let verdict = backscatter_validate(&trace, victim);
        let truth_entry = truth.find_match(alert.sip, alert.dip, alert.dport);
        let spoofed_truth = matches!(
            truth_entry.map(|e| e.class),
            Some(EventClass::SynFloodSpoofed)
        );
        let status = if verdict.spoofed_flood_confirmed {
            confirmed += 1;
            "confirmed (uniform backscatter)"
        } else if !spoofed_truth {
            unconfirmed_nonspoofed += 1;
            "unconfirmed — non-spoofed (responses go to one attacker)"
        } else {
            unconfirmed_other += 1;
            "unconfirmed — low/clustered response volume"
        };
        println!(
            "  victim {victim}:{} — {} responses to {} destinations, χ²={:.1} → {status}",
            alert.dport.expect("flooding port"),
            verdict.responses,
            verdict.distinct_destinations,
            verdict.chi_square
        );
    }
    println!(
        "\n{} floodings detected: {confirmed} confirmed by backscatter, \
         {unconfirmed_nonspoofed} non-spoofed, {unconfirmed_other} other \
         (paper: 21 of 32 matched; the rest were non-spoofed or boundary cases)",
        floodings.len()
    );
    write_json(
        "validate_backscatter",
        &Validation {
            detected_floodings: floodings.len(),
            confirmed_by_backscatter: confirmed,
            unconfirmed_nonspoofed,
            unconfirmed_other,
        },
    );
}
