//! **Table 6** — TCP SYN flooding detection: HiFIND vs CPM, counted in
//! flagged one-minute intervals, with the overlap.
//!
//! Paper shape: on the NU-like trace the two mostly agree (floodings
//! dominate the aggregate); on the LBL-like trace CPM flags a large number
//! of intervals although there is **no** flooding at all — its aggregate
//! SYN/FIN balance cannot tell the heavy scanning apart — while HiFIND
//! reports (near) zero.
//!
//! Run: `cargo run --release -p hifind-bench --bin table6`

use hifind::{AlertKind, HiFind, HiFindConfig};
use hifind_baselines::{Cpm, CpmConfig};
use hifind_bench::harness::{row, scale, section, seed, write_json};
use hifind_trafficgen::presets;
use serde::Serialize;
use std::collections::BTreeSet;

#[derive(Serialize)]
struct Row {
    data: String,
    cpm_intervals: usize,
    hifind_intervals: usize,
    overlap: usize,
}

fn run(name: &str, scenario: hifind_trafficgen::Scenario) -> Row {
    eprintln!("[table6] generating {name}...");
    let (trace, _) = scenario.generate();
    let cfg = HiFindConfig::paper(seed());

    // HiFIND: intervals in which at least one (final) flooding alert fired.
    // Final alerts are deduplicated per attack; we recover per-interval
    // flagging by re-running detection per interval and recording alert
    // intervals from the raw log restricted to confirmed attacks.
    let mut ids = HiFind::new(cfg).expect("paper config");
    let mut hifind_intervals: BTreeSet<u64> = BTreeSet::new();
    for window in trace.intervals(cfg.interval_ms) {
        for p in window.packets {
            ids.record(p);
        }
        let outcome = ids.end_interval();
        if outcome.fin.iter().any(|a| a.kind == AlertKind::SynFlooding) {
            hifind_intervals.insert(outcome.interval);
        }
    }

    eprintln!("[table6]   running CPM...");
    let cpm_intervals: BTreeSet<u64> =
        Cpm::detect_intervals(&trace, cfg.interval_ms, CpmConfig::default())
            .into_iter()
            .collect();

    Row {
        data: name.to_string(),
        cpm_intervals: cpm_intervals.len(),
        hifind_intervals: hifind_intervals.len(),
        overlap: cpm_intervals.intersection(&hifind_intervals).count(),
    }
}

fn main() {
    let s = scale();
    let results = vec![
        run("NU-like", presets::nu_like(seed()).scaled(s)),
        run("LBL-like", presets::lbl_like(seed()).scaled(s)),
    ];

    section("Table 6: SYN flooding detection comparison (flagged intervals)");
    let widths = [10, 8, 8, 16];
    row(&["Data", "CPM", "HiFIND", "Overlap number"], &widths);
    for r in &results {
        row(
            &[
                &r.data,
                &r.cpm_intervals.to_string(),
                &r.hifind_intervals.to_string(),
                &r.overlap.to_string(),
            ],
            &widths,
        );
    }
    println!(
        "\npaper shape: LBL row — CPM flags many intervals (scans inflate the aggregate\n\
         SYN/FIN imbalance) while HiFIND, which detects at the flow level and filters\n\
         false positives, reports (near) zero."
    );
    write_json("table6", &results);
}
