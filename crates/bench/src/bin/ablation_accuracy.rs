//! Accuracy ablations over the design choices DESIGN.md §8 calls out:
//!
//! * IP mangling on/off — inference false positives on structured
//!   (sequential) key spaces;
//! * stages `H` and buckets `m` — estimate error vs memory;
//! * 2D classifier parameters `(p, φ)` — flooding/scan separation;
//! * EWMA vs Holt forecasting on ramping traffic;
//! * verifier sketch on/off — inference output false positives.
//!
//! Run: `cargo run --release -p hifind-bench --bin ablation_accuracy`

use hifind_bench::harness::{row, section, seed, write_json};
use hifind_flow::rng::SplitMix64;
use hifind_forecast::{GridEwma, GridForecaster, GridHolt};
use hifind_sketch::{
    ColumnShape, CounterGrid, InferOptions, ReversibleSketch, RsConfig, TwoDConfig, TwoDSketch,
};
use serde::Serialize;

#[derive(Serialize, Default)]
struct Ablations {
    mangling: Vec<(String, usize, usize)>,
    geometry: Vec<(String, f64, usize)>,
    classifier: Vec<(String, f64, f64)>,
    forecasting: Vec<(String, f64)>,
    verifier: Vec<(String, usize)>,
}

/// Inserts grid-structured heavy attack keys (worst case for modular
/// hashing) plus noise; returns (true keys found, phantom candidates that
/// reached the final verification stage).
fn inference_fp(mangle: bool, use_verifier: bool, seed: u64) -> (usize, usize) {
    let mut cfg = RsConfig::paper_48bit(seed);
    cfg.mangle = mangle;
    if !use_verifier {
        cfg.verifier_buckets = None;
    }
    let mut rs = ReversibleSketch::new(cfg).expect("valid config");
    // Structured keys: a worm sweeping a 2D grid of campus addresses, so
    // the heavy keys differ only in two byte positions. Without mangling,
    // modular hashing cannot tell a real (row, column) pair from the
    // cross-product phantom (row_i, column_j) — the classic reversible-
    // sketch false-positive mode that IP mangling exists to break.
    let mut heavy = Vec::new();
    for i in 0..5u64 {
        for j in 0..4u64 {
            if (i + j) % 2 == 0 {
                // An irregular subset of the 5×4 grid: the full grid's
                // cross-product closure would hide the phantoms.
                heavy.push(0x8169_0000_0050 | (i + 1) << 16 | (j + 1) << 8);
            }
        }
    }
    for &k in &heavy {
        rs.update(k, 500);
    }
    let mut rng = SplitMix64::new(seed ^ 0xF00);
    for _ in 0..50_000 {
        // Noise shares the structured prefix too.
        rs.update(0x8169_0000_0000 | (rng.next_u64() & 0xFFFF_FFFF), 1);
    }
    // Inference without the estimate/verifier backstops would report the
    // raw candidate set; to expose the hash-level effect we count raw
    // candidates that are not true keys via a low bar, then also report
    // what survives the standard filters.
    let result = rs.infer(250, &InferOptions::default());
    let found = heavy
        .iter()
        .filter(|&&k| result.keys.iter().any(|hk| hk.key == k))
        .count();
    let fps = result.stats.candidates_explored as usize; // search effort proxy
    let _ = fps;
    let survivors_fp = result
        .keys
        .iter()
        .filter(|hk| !heavy.contains(&hk.key))
        .count();
    (
        found,
        survivors_fp + result.stats.rejected_by_estimate + result.stats.rejected_by_verifier,
    )
}

fn main() {
    let mut out = Ablations::default();
    let s = seed();

    // --- 1. IP mangling ---------------------------------------------------
    section("Ablation: IP mangling (grid-structured keys, 10 true heavy keys)");
    let widths = [18, 12, 18];
    row(&["mangling", "found/10", "phantom candidates"], &widths);
    for (label, mangle) in [("on (paper)", true), ("off", false)] {
        let (found, fps) = inference_fp(mangle, true, s);
        row(&[label, &found.to_string(), &fps.to_string()], &widths);
        out.mangling.push((label.into(), found, fps));
    }

    // --- 2. Verifier sketch -----------------------------------------------
    section("Ablation: verification sketch");
    row(&["verifier", "false positives", ""], &[18, 18, 2]);
    for (label, verif) in [("on (paper)", true), ("off", false)] {
        let (_, fps) = inference_fp(true, verif, s ^ 1);
        row(&[label, &fps.to_string(), ""], &[18, 18, 2]);
        out.verifier.push((label.into(), fps));
    }

    // --- 3. Sketch geometry: H and m ---------------------------------------
    section("Ablation: stages H × buckets m (mean |estimate error| on 50 keys)");
    let widths = [22, 22, 14];
    row(&["config", "mean abs est. error", "memory KB"], &widths);
    for (stages, buckets) in [
        (4usize, 1 << 12),
        (6, 1 << 12),
        (8, 1 << 12),
        (6, 1 << 6),
        (6, 1 << 18),
    ] {
        let cfg = RsConfig {
            key_bits: 48,
            stages,
            buckets,
            seed: s ^ 2,
            mangle: true,
            verifier_buckets: None,
        };
        let Ok(mut rs) = ReversibleSketch::new(cfg) else {
            continue;
        };
        let mut rng = SplitMix64::new(s ^ 3);
        let truth: Vec<(u64, i64)> = (0..50)
            .map(|_| {
                (
                    rng.next_u64() & ((1 << 48) - 1),
                    100 + rng.below(900) as i64,
                )
            })
            .collect();
        for &(k, v) in &truth {
            rs.update(k, v);
        }
        for _ in 0..100_000 {
            rs.update(rng.next_u64() & ((1 << 48) - 1), 1);
        }
        let err: f64 = truth
            .iter()
            .map(|&(k, v)| (rs.estimate(k) - v).abs() as f64)
            .sum::<f64>()
            / truth.len() as f64;
        let label = format!("H={stages}, m=2^{}", buckets.trailing_zeros());
        row(
            &[
                &label,
                &format!("{err:.1}"),
                &format!("{}", rs.memory_bytes() / 1024),
            ],
            &widths,
        );
        out.geometry.push((label, err, rs.memory_bytes() / 1024));
    }

    // --- 4. 2D classifier (p, φ) -------------------------------------------
    section("Ablation: 2D classifier (p, φ) — accuracy on 100 floods + 100 vscans");
    let widths = [18, 20, 20];
    row(&["(p, φ)", "flood accuracy", "vscan accuracy"], &widths);
    for (p, phi) in [(1usize, 0.5), (5, 0.8), (5, 0.5), (10, 0.9), (32, 0.8)] {
        let mut twod = TwoDSketch::new(TwoDConfig::paper(s ^ 4)).expect("paper config");
        let mut rng = SplitMix64::new(s ^ 5);
        let floods: Vec<u64> = (0..100).map(|_| rng.next_u64()).collect();
        let scans: Vec<u64> = (0..100).map(|_| rng.next_u64()).collect();
        for &x in &floods {
            for _ in 0..200 {
                twod.update(x, 80, 1);
            }
        }
        for &x in &scans {
            for port in 0..200u64 {
                twod.update(x, port, 1);
            }
        }
        for _ in 0..100_000 {
            twod.update(rng.next_u64(), rng.below(65536), 1);
        }
        let flood_acc = floods
            .iter()
            .filter(|&&x| twod.classify(x, p, phi) == ColumnShape::Concentrated)
            .count() as f64
            / 100.0;
        let scan_acc = scans
            .iter()
            .filter(|&&x| twod.classify(x, p, phi) == ColumnShape::Dispersed)
            .count() as f64
            / 100.0;
        let label = format!("(p={p}, φ={phi})");
        row(
            &[
                &label,
                &format!("{flood_acc:.2}"),
                &format!("{scan_acc:.2}"),
            ],
            &widths,
        );
        out.classifier.push((label, flood_acc, scan_acc));
    }

    // --- 5. EWMA vs Holt on ramping traffic ---------------------------------
    section("Ablation: forecasting model on linearly ramping traffic (mean |error|)");
    let make_grid = |v: i64| {
        let mut g = CounterGrid::new(1, 64);
        g.add(0, 7, v);
        g
    };
    for (label, mut model) in [
        (
            "EWMA α=0.5 (paper)",
            Box::new(GridEwma::new(0.5)) as Box<dyn GridForecaster>,
        ),
        (
            "Holt α=0.5 β=0.5",
            Box::new(GridHolt::new(0.5, 0.5)) as Box<dyn GridForecaster>,
        ),
    ] {
        let mut total = 0.0;
        let mut n = 0;
        for t in 0..50i64 {
            if let Some(err) = model.step(&make_grid(20 * t)) {
                total += err.get(0, 7).abs() as f64;
                n += 1;
            }
        }
        let mean = total / n.max(1) as f64;
        println!("{label:<24} {mean:.1}");
        out.forecasting.push((label.into(), mean));
    }
    println!(
        "\n(Holt halves ramp error — at the cost of over-shooting when an attack\n\
         stops; the paper's EWMA is the default, Holt is the extension.)"
    );
    write_json("ablation_accuracy", &out);
}
