//! **Table 5** — horizontal-scan detection: HiFIND vs TRW, aggregated by
//! source IP, with the overlap between the two detectors.
//!
//! Paper shape: large overlap; a few scans only HiFIND finds (scans with
//! interleaved successful connections stall TRW's walk) and a few only TRW
//! finds (slow scans below HiFIND's per-interval threshold whose evidence
//! TRW accumulates across the whole trace).
//!
//! Run: `cargo run --release -p hifind-bench --bin table5`

use hifind::{HiFind, HiFindConfig};
use hifind_baselines::{Trw, TrwConfig};
use hifind_bench::harness::{hscan_overlap_by_source, row, scale, section, seed, write_json};
use hifind_trafficgen::presets;
use serde::Serialize;

#[derive(Serialize)]
struct OverlapRow {
    data: String,
    trw: usize,
    hifind: usize,
    overlap: usize,
}

fn run(name: &str, scenario: hifind_trafficgen::Scenario) -> OverlapRow {
    eprintln!("[table5] generating {name}...");
    let (trace, _) = scenario.generate();
    eprintln!("[table5]   {}", trace.stats());

    let mut ids = HiFind::new(HiFindConfig::paper(seed())).expect("paper config");
    let log = ids.run_trace(&trace);

    eprintln!("[table5]   running TRW...");
    let (trw_alerts, _) = Trw::detect(&trace, TrwConfig::default());
    let trw_sources: Vec<_> = trw_alerts.iter().map(|a| a.source).collect();

    let o = hscan_overlap_by_source(log.final_alerts(), &trw_sources);
    OverlapRow {
        data: name.to_string(),
        trw: o.a,
        hifind: o.b,
        overlap: o.overlap,
    }
}

fn main() {
    let s = scale();
    let results = vec![
        run("NU-like", presets::nu_like(seed()).scaled(s)),
        run("LBL-like", presets::lbl_like(seed()).scaled(s)),
    ];

    section("Table 5: Hscan detection comparison (by source IP)");
    let widths = [10, 8, 8, 16];
    row(&["Data", "TRW", "HiFIND", "Overlap number"], &widths);
    for r in &results {
        row(
            &[
                &r.data,
                &r.trw.to_string(),
                &r.hifind.to_string(),
                &r.overlap.to_string(),
            ],
            &widths,
        );
    }
    for r in &results {
        let only_hifind = r.hifind - r.overlap;
        let only_trw = r.trw - r.overlap;
        println!(
            "{}: {} scanners found only by HiFIND (TRW stalled by successes), \
             {} only by TRW (too slow/stealthy for the interval threshold)",
            r.data, only_hifind, only_trw
        );
    }
    write_json("table5", &results);
}
