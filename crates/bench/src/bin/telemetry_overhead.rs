//! Telemetry record-path overhead: instrumented vs. uninstrumented
//! recording throughput, written to `results/BENCH_telemetry_overhead.json`.
//!
//! The `telemetry` feature adds a branch and a 1-in-64 sampled latency
//! observation to [`hifind::HiFind::record`]; the budget is < 5% of
//! recording throughput (enforced by a test in `src/overhead.rs`). This
//! binary records the measured numbers so regressions show up as a diff.
//!
//! The whole measurement runs with the idle operator plane alive — an
//! embedded HTTP server nobody scrapes, an open structured event log,
//! and an in-memory history ring — so the recorded numbers reflect a
//! real `--http`/`--event-log` deployment, not a stripped-down process.
//!
//! Run: `cargo run --release -p hifind-bench --features telemetry --bin telemetry_overhead`
//!
//! Without `--features telemetry` only the baseline side is measured.

use hifind_bench::harness::{section, write_json};
use hifind_bench::overhead::measure_overhead;

fn main() {
    section("telemetry overhead on the record path");
    let report = measure_overhead(500_000, 5);
    println!(
        "idle operator plane (HTTP server + event log): {}",
        if report.idle_operator_plane {
            "up"
        } else {
            "unavailable"
        }
    );
    println!(
        "baseline:     {:>7.2}M packets/s (best of {} runs, {} packets each)",
        report.baseline_pps / 1e6,
        report.runs,
        report.packets
    );
    if report.telemetry_compiled {
        println!(
            "instrumented: {:>7.2}M packets/s",
            report.instrumented_pps / 1e6
        );
        println!("overhead:     {:>7.2}% (budget: 5%)", report.overhead_pct);
        println!(
            "parallel ({} workers): {:>7.2}M → {:>7.2}M packets/s, {:.2}% overhead",
            report.parallel_workers,
            report.parallel_baseline_pps / 1e6,
            report.parallel_instrumented_pps / 1e6,
            report.parallel_overhead_pct
        );
    } else {
        println!("instrumented: not compiled (re-run with --features telemetry)");
    }
    write_json("BENCH_telemetry_overhead", &report);
}
