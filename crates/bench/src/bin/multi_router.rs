//! **§5.3.2** — aggregated detection over multiple routers under
//! per-packet load balancing (paper Figure 3).
//!
//! The trace is split per packet across three routers, so each connection's
//! SYN and SYN/ACK traverse different routers with probability 2/3. HiFIND
//! combines the routers' sketches (linearity) and detects on the aggregate
//! — identical results to the single-router run. TRW applied per router
//! with summed results degrades: successes and failures of the same source
//! are scattered, producing both false positives and false negatives.
//!
//! Run: `cargo run --release -p hifind-bench --bin multi_router`

use hifind::{HiFind, HiFindAggregator, HiFindConfig, SketchRecorder};
use hifind_baselines::{Trw, TrwConfig};
use hifind_bench::harness::{scale, section, seed, write_json};
use hifind_collect::codec_v2::SnapshotEncoder;
use hifind_collect::{wire, AgentConfig, Collector, CollectorConfig, RouterAgent};
use hifind_flow::{Ip4, Packet, Trace};
use hifind_trafficgen::{presets, split_per_packet};
use serde::Serialize;
use std::collections::BTreeSet;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

/// Snapshot shipping cost: raw in-memory counter size vs the varint-framed
/// bytes that actually cross the wire, per codec.
#[derive(Serialize)]
struct WireStats {
    snapshots: u64,
    raw_bytes_total: u64,
    framed_bytes_total: u64,
    raw_bytes_per_interval: u64,
    framed_bytes_per_interval: u64,
    compression_ratio: f64,
    v2: WireV2Stats,
}

/// Codec v2 (sparse grids + acked-baseline deltas) over the same
/// snapshots, with every prior interval assumed acked — the steady state
/// a healthy session converges to.
#[derive(Serialize)]
struct WireV2Stats {
    framed_bytes_total: u64,
    framed_bytes_per_interval: u64,
    keyframes: u64,
    deltas: u64,
    /// Median framed bytes of one router's interval, first interval
    /// (cold keyframe) excluded.
    steady_state_router_bytes_median: u64,
    /// Same median for v1 frames, for an apples-to-apples ratio.
    v1_steady_state_router_bytes_median: u64,
    /// v1 ÷ v2 steady-state medians: how much smaller a steady-state v2
    /// interval is than the v1 frame carrying identical information.
    v1_over_v2_steady_state: f64,
    /// The same comparison over benign background traffic only — the
    /// no-attack steady state a deployed agent spends most of its life in.
    no_attack: CodecCost,
    /// No-attack again but on a near-idle edge link (1 conn/s): the
    /// quiet-hours regime where sparse grids and bloom-eliding deltas
    /// pay off hardest.
    no_attack_idle: CodecCost,
}

/// v1-vs-v2 wire cost for one trace split per packet across 3 routers,
/// every prior interval assumed acked.
#[derive(Serialize)]
struct CodecCost {
    intervals: u64,
    keyframes: u64,
    deltas: u64,
    v1_router_bytes_median: u64,
    v2_router_bytes_median: u64,
    v1_over_v2: f64,
}

/// End-to-end loopback collection: 3 TCP agents → collector → detection.
#[derive(Serialize)]
struct LoopbackStats {
    elapsed_ms: u64,
    frames: u64,
    bytes: u64,
    frames_v2_keyframes: u64,
    frames_v2_deltas: u64,
    frames_per_sec: f64,
    mbytes_per_sec: f64,
    identical_to_single: bool,
}

#[derive(Serialize)]
struct MultiRouter {
    single_final: usize,
    aggregated_final: usize,
    identical: bool,
    trw_single: usize,
    trw_split_union: usize,
    trw_missed_vs_single: usize,
    trw_extra_vs_single: usize,
    wire: WireStats,
    loopback: LoopbackStats,
}

fn main() {
    let scenario = presets::nu_like(seed()).scaled(scale());
    eprintln!("[multi_router] generating NU-like...");
    let (trace, _) = scenario.generate();
    let cfg = HiFindConfig::paper(seed());
    let parts = split_per_packet(&trace, 3, seed() ^ 0x60D);

    // HiFIND single-router reference.
    let mut single = HiFind::new(cfg).expect("paper config");
    let single_log = single.run_trace(&trace);

    // HiFIND distributed: per-router recorders + central aggregation.
    let mut routers: Vec<SketchRecorder> = (0..3)
        .map(|_| SketchRecorder::new(&cfg).expect("paper config"))
        .collect();
    let mut site = HiFindAggregator::new(cfg).expect("paper config");
    let windows: Vec<Vec<_>> = parts
        .iter()
        .map(|t| t.intervals(cfg.interval_ms).collect())
        .collect();
    let intervals = windows.iter().map(Vec::len).max().unwrap_or(0);
    let mut raw_bytes_total = 0u64;
    let mut framed_bytes_total = 0u64;
    let mut snapshots = 0u64;
    // Codec v2 runs alongside v1 over the identical snapshots. Every
    // prior interval is assumed acked, which is the steady state a
    // healthy session converges to and the best case for deltas.
    let mut v2_encoders: Vec<SnapshotEncoder> = (0..routers.len())
        .map(|_| SnapshotEncoder::default())
        .collect();
    let mut v2_framed_bytes_total = 0u64;
    let mut v2_keyframes = 0u64;
    let mut v2_deltas = 0u64;
    let mut v1_steady_sizes: Vec<u64> = Vec::new();
    let mut v2_steady_sizes: Vec<u64> = Vec::new();
    for iv in 0..intervals {
        let mut snaps = Vec::new();
        for (router, wins) in routers.iter_mut().zip(&windows) {
            if let Some(w) = wins.get(iv) {
                for p in w.packets {
                    router.record(p);
                }
            }
            snaps.push(router.take_snapshot());
        }
        for (router_id, snap) in snaps.iter().enumerate() {
            raw_bytes_total += snap.wire_size_bytes() as u64;
            let v1_len = wire::encode_frame(router_id as u32, iv as u64, snap)
                .expect("snapshot fits a frame")
                .len() as u64;
            framed_bytes_total += v1_len;
            let acked = (iv > 0).then(|| iv as u64 - 1);
            let enc = v2_encoders[router_id].encode(iv as u64, snap, acked);
            let v2_len =
                wire::encode_frame_v2(router_id as u32, iv as u64, snap.fingerprint, &enc.payload)
                    .expect("payload fits a frame")
                    .len() as u64;
            v2_framed_bytes_total += v2_len;
            if enc.is_delta {
                v2_deltas += 1;
            } else {
                v2_keyframes += 1;
            }
            if iv > 0 {
                v1_steady_sizes.push(v1_len);
                v2_steady_sizes.push(v2_len);
            }
            snapshots += 1;
        }
        site.process_interval(&snaps).expect("same configuration");
    }

    let s: BTreeSet<_> = single_log
        .final_alerts()
        .iter()
        .map(|a| a.identity())
        .collect();
    let a: BTreeSet<_> = site
        .log()
        .final_alerts()
        .iter()
        .map(|a| a.identity())
        .collect();

    // TRW: whole-trace reference vs per-router detection summed up.
    eprintln!("[multi_router] running TRW (single + per-router)...");
    let (trw_single, _) = Trw::detect(&trace, TrwConfig::default());
    let trw_single: BTreeSet<Ip4> = trw_single.into_iter().map(|al| al.source).collect();
    let mut trw_union: BTreeSet<Ip4> = BTreeSet::new();
    for part in &parts {
        let (alerts, _) = Trw::detect(part, TrwConfig::default());
        trw_union.extend(alerts.into_iter().map(|al| al.source));
    }

    section("§5.3.2: aggregated detection over 3 routers (per-packet load balancing)");
    println!("HiFIND single router:      {} final alerts", s.len());
    println!(
        "HiFIND aggregated sketches: {} final alerts → identical: {}",
        a.len(),
        s == a
    );
    println!();
    println!("TRW on the undivided trace: {} scanners", trw_single.len());
    println!(
        "TRW per-router, summed:     {} scanners ({} missed vs single, {} extra)",
        trw_union.len(),
        trw_single.difference(&trw_union).count(),
        trw_union.difference(&trw_single).count()
    );
    println!(
        "\npaper claim: HiFIND aggregate ≡ single router; TRW per-router has high\n\
         false positives/negatives because SYN and SYN/ACK of one connection are\n\
         seen by different routers (a SYN without its SYN/ACK looks like a failure)."
    );

    // No-attack steady state: same background profile, zero attack
    // events. This is the regime the ≥50× shipping-cost reduction is
    // claimed for — quiet grids stay sparse and deltas elide the bloom.
    eprintln!("[multi_router] measuring no-attack codec cost...");
    let mut quiet = presets::nu_like(seed()).scaled(scale());
    quiet.events.clear();
    quiet.name = "nu-like-background".into();
    let (quiet_trace, _) = quiet.generate();
    let no_attack = codec_cost(&cfg, &quiet_trace);
    let mut idle = presets::nu_like(seed()).scaled(scale());
    idle.events.clear();
    idle.background.connections_per_sec = 1.0;
    idle.name = "idle-background".into();
    let (idle_trace, _) = idle.generate();
    let no_attack_idle = codec_cost(&cfg, &idle_trace);

    let per_iv = intervals.max(1) as u64;
    let v1_median = median(&mut v1_steady_sizes);
    let v2_median = median(&mut v2_steady_sizes);
    let wire_stats = WireStats {
        snapshots,
        raw_bytes_total,
        framed_bytes_total,
        raw_bytes_per_interval: raw_bytes_total / per_iv,
        framed_bytes_per_interval: framed_bytes_total / per_iv,
        compression_ratio: raw_bytes_total as f64 / framed_bytes_total.max(1) as f64,
        v2: WireV2Stats {
            framed_bytes_total: v2_framed_bytes_total,
            framed_bytes_per_interval: v2_framed_bytes_total / per_iv,
            keyframes: v2_keyframes,
            deltas: v2_deltas,
            steady_state_router_bytes_median: v2_median,
            v1_steady_state_router_bytes_median: v1_median,
            v1_over_v2_steady_state: v1_median as f64 / v2_median.max(1) as f64,
            no_attack,
            no_attack_idle,
        },
    };
    section("wire cost: raw snapshot vs varint-framed bytes, per codec");
    println!(
        "{} snapshots over {} intervals: {} raw bytes → {} framed v1 ({}x smaller)",
        wire_stats.snapshots,
        intervals,
        wire_stats.raw_bytes_total,
        wire_stats.framed_bytes_total,
        wire_stats.compression_ratio.round()
    );
    println!(
        "per interval (all 3 routers): {} raw → {} framed v1 → {} framed v2",
        wire_stats.raw_bytes_per_interval,
        wire_stats.framed_bytes_per_interval,
        wire_stats.v2.framed_bytes_per_interval
    );
    println!(
        "codec v2 (acked steady state): {} keyframes + {} deltas, \
         per-router interval median {} bytes vs {} for v1 → {:.0}x smaller",
        wire_stats.v2.keyframes,
        wire_stats.v2.deltas,
        wire_stats.v2.steady_state_router_bytes_median,
        wire_stats.v2.v1_steady_state_router_bytes_median,
        wire_stats.v2.v1_over_v2_steady_state
    );
    println!(
        "codec v2, no-attack steady state: {} keyframes + {} deltas over {} intervals, \
         per-router interval median {} bytes vs {} for v1 → {:.0}x smaller",
        wire_stats.v2.no_attack.keyframes,
        wire_stats.v2.no_attack.deltas,
        wire_stats.v2.no_attack.intervals,
        wire_stats.v2.no_attack.v2_router_bytes_median,
        wire_stats.v2.no_attack.v1_router_bytes_median,
        wire_stats.v2.no_attack.v1_over_v2
    );
    println!(
        "codec v2, idle link (1 conn/s):   {} keyframes + {} deltas over {} intervals, \
         per-router interval median {} bytes vs {} for v1 → {:.0}x smaller",
        wire_stats.v2.no_attack_idle.keyframes,
        wire_stats.v2.no_attack_idle.deltas,
        wire_stats.v2.no_attack_idle.intervals,
        wire_stats.v2.no_attack_idle.v2_router_bytes_median,
        wire_stats.v2.no_attack_idle.v1_router_bytes_median,
        wire_stats.v2.no_attack_idle.v1_over_v2
    );

    eprintln!("[multi_router] running loopback TCP collection...");
    let loopback = run_loopback(cfg, &windows_owned(&windows), intervals, &s);
    section("end-to-end loopback collection (3 TCP agents → collector → detection)");
    println!(
        "{} frames ({} v2 keyframes, {} v2 deltas) / {} bytes in {} ms → \
         {:.1} frames/s, {:.1} MB/s, identical: {}",
        loopback.frames,
        loopback.frames_v2_keyframes,
        loopback.frames_v2_deltas,
        loopback.bytes,
        loopback.elapsed_ms,
        loopback.frames_per_sec,
        loopback.mbytes_per_sec,
        loopback.identical_to_single
    );

    write_json(
        "BENCH_multi_router",
        &MultiRouter {
            single_final: s.len(),
            aggregated_final: a.len(),
            identical: s == a,
            trw_single: trw_single.len(),
            trw_split_union: trw_union.len(),
            trw_missed_vs_single: trw_single.difference(&trw_union).count(),
            trw_extra_vs_single: trw_union.difference(&trw_single).count(),
            wire: wire_stats,
            loopback,
        },
    );
}

/// Measures both codecs over one trace split per packet across three
/// routers, with every prior interval assumed acked (healthy session).
/// The first interval — the unavoidable cold keyframe — is excluded
/// from the medians.
fn codec_cost(cfg: &HiFindConfig, trace: &Trace) -> CodecCost {
    let parts = split_per_packet(trace, 3, seed() ^ 0xC0DEC);
    let mut routers: Vec<SketchRecorder> = (0..3)
        .map(|_| SketchRecorder::new(cfg).expect("paper config"))
        .collect();
    let windows: Vec<Vec<_>> = parts
        .iter()
        .map(|t| t.intervals(cfg.interval_ms).collect())
        .collect();
    let intervals = windows.iter().map(Vec::len).max().unwrap_or(0);
    let mut encoders: Vec<SnapshotEncoder> = (0..routers.len())
        .map(|_| SnapshotEncoder::default())
        .collect();
    let (mut keyframes, mut deltas) = (0u64, 0u64);
    let mut v1_sizes: Vec<u64> = Vec::new();
    let mut v2_sizes: Vec<u64> = Vec::new();
    for iv in 0..intervals {
        for (router_id, (router, wins)) in routers.iter_mut().zip(&windows).enumerate() {
            if let Some(w) = wins.get(iv) {
                for p in w.packets {
                    router.record(p);
                }
            }
            let snap = router.take_snapshot();
            let v1_len = wire::encode_frame(router_id as u32, iv as u64, &snap)
                .expect("snapshot fits a frame")
                .len() as u64;
            let acked = (iv > 0).then(|| iv as u64 - 1);
            let enc = encoders[router_id].encode(iv as u64, &snap, acked);
            let v2_len =
                wire::encode_frame_v2(router_id as u32, iv as u64, snap.fingerprint, &enc.payload)
                    .expect("payload fits a frame")
                    .len() as u64;
            if enc.is_delta {
                deltas += 1;
            } else {
                keyframes += 1;
            }
            if iv > 0 {
                v1_sizes.push(v1_len);
                v2_sizes.push(v2_len);
            }
        }
    }
    let v1_median = median(&mut v1_sizes);
    let v2_median = median(&mut v2_sizes);
    CodecCost {
        intervals: intervals as u64,
        keyframes,
        deltas,
        v1_router_bytes_median: v1_median,
        v2_router_bytes_median: v2_median,
        v1_over_v2: v1_median as f64 / v2_median.max(1) as f64,
    }
}

/// Median of the sample set (sorts in place); 0 for an empty set.
fn median(samples: &mut [u64]) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    samples[samples.len() / 2]
}

type AlertIdentity = (
    hifind::report::AlertKind,
    Option<u32>,
    Option<u32>,
    Option<u16>,
);

/// Copies the borrowed per-router interval windows into owned packet
/// vectors the agent threads can take with them.
fn windows_owned(windows: &[Vec<hifind_flow::IntervalIter<'_>>]) -> Vec<Vec<Vec<Packet>>> {
    windows
        .iter()
        .map(|wins| wins.iter().map(|w| w.packets.to_vec()).collect())
        .collect()
}

/// Replays the same per-router windows over real loopback TCP and times
/// the whole collection path: encode → ship → align → combine → detect.
fn run_loopback(
    cfg: HiFindConfig,
    windows: &[Vec<Vec<Packet>>],
    intervals: usize,
    single_identities: &BTreeSet<AlertIdentity>,
) -> LoopbackStats {
    let mut ccfg = CollectorConfig::new(windows.len());
    // The bench measures throughput, not degradation policy: no deadline
    // or window pressure should ever force a partial flush here.
    ccfg.straggler_deadline = Duration::from_secs(600);
    ccfg.reorder_window = intervals as u64 + 1;
    let handle = Collector::bind("127.0.0.1:0", cfg, ccfg, None).expect("bind loopback collector");
    let addr = handle.local_addr().to_string();
    let start = Instant::now();
    let tick = Arc::new(Barrier::new(windows.len()));
    let agents: Vec<_> = windows
        .iter()
        .cloned()
        .enumerate()
        .map(|(id, wins)| {
            let addr = addr.clone();
            let tick = Arc::clone(&tick);
            std::thread::spawn(move || {
                let mut agent =
                    RouterAgent::new(addr, &cfg, AgentConfig::new(id as u32)).expect("config");
                for iv in 0..intervals {
                    tick.wait();
                    if let Some(w) = wins.get(iv) {
                        for p in w {
                            agent.record(p);
                        }
                    }
                    agent.end_interval();
                }
                agent.finish()
            })
        })
        .collect();
    for agent in agents {
        agent.join().expect("agent thread");
    }
    let report = handle.wait().expect("collector threads");
    let elapsed = start.elapsed();
    let networked: BTreeSet<AlertIdentity> = report
        .log
        .final_alerts()
        .iter()
        .map(|al| al.identity())
        .collect();
    LoopbackStats {
        elapsed_ms: elapsed.as_millis() as u64,
        frames: report.frames_received,
        bytes: report.bytes_received,
        frames_v2_keyframes: report.frames_v2_keyframes,
        frames_v2_deltas: report.frames_v2_deltas,
        frames_per_sec: report.frames_received as f64 / elapsed.as_secs_f64(),
        mbytes_per_sec: report.bytes_received as f64 / elapsed.as_secs_f64() / 1e6,
        identical_to_single: &networked == single_identities,
    }
}
