//! **§5.3.2** — aggregated detection over multiple routers under
//! per-packet load balancing (paper Figure 3).
//!
//! The trace is split per packet across three routers, so each connection's
//! SYN and SYN/ACK traverse different routers with probability 2/3. HiFIND
//! combines the routers' sketches (linearity) and detects on the aggregate
//! — identical results to the single-router run. TRW applied per router
//! with summed results degrades: successes and failures of the same source
//! are scattered, producing both false positives and false negatives.
//!
//! Run: `cargo run --release -p hifind-bench --bin multi_router`

use hifind::{HiFind, HiFindAggregator, HiFindConfig, SketchRecorder};
use hifind_baselines::{Trw, TrwConfig};
use hifind_bench::harness::{scale, section, seed, write_json};
use hifind_flow::Ip4;
use hifind_trafficgen::{presets, split_per_packet};
use serde::Serialize;
use std::collections::BTreeSet;

#[derive(Serialize)]
struct MultiRouter {
    single_final: usize,
    aggregated_final: usize,
    identical: bool,
    trw_single: usize,
    trw_split_union: usize,
    trw_missed_vs_single: usize,
    trw_extra_vs_single: usize,
}

fn main() {
    let scenario = presets::nu_like(seed()).scaled(scale());
    eprintln!("[multi_router] generating NU-like...");
    let (trace, _) = scenario.generate();
    let cfg = HiFindConfig::paper(seed());
    let parts = split_per_packet(&trace, 3, seed() ^ 0x60D);

    // HiFIND single-router reference.
    let mut single = HiFind::new(cfg).expect("paper config");
    let single_log = single.run_trace(&trace);

    // HiFIND distributed: per-router recorders + central aggregation.
    let mut routers: Vec<SketchRecorder> = (0..3)
        .map(|_| SketchRecorder::new(&cfg).expect("paper config"))
        .collect();
    let mut site = HiFindAggregator::new(cfg).expect("paper config");
    let windows: Vec<Vec<_>> = parts
        .iter()
        .map(|t| t.intervals(cfg.interval_ms).collect())
        .collect();
    let intervals = windows.iter().map(Vec::len).max().unwrap_or(0);
    for iv in 0..intervals {
        let mut snaps = Vec::new();
        for (router, wins) in routers.iter_mut().zip(&windows) {
            if let Some(w) = wins.get(iv) {
                for p in w.packets {
                    router.record(p);
                }
            }
            snaps.push(router.take_snapshot());
        }
        site.process_interval(&snaps).expect("same configuration");
    }

    let s: BTreeSet<_> = single_log
        .final_alerts()
        .iter()
        .map(|a| a.identity())
        .collect();
    let a: BTreeSet<_> = site
        .log()
        .final_alerts()
        .iter()
        .map(|a| a.identity())
        .collect();

    // TRW: whole-trace reference vs per-router detection summed up.
    eprintln!("[multi_router] running TRW (single + per-router)...");
    let (trw_single, _) = Trw::detect(&trace, TrwConfig::default());
    let trw_single: BTreeSet<Ip4> = trw_single.into_iter().map(|al| al.source).collect();
    let mut trw_union: BTreeSet<Ip4> = BTreeSet::new();
    for part in &parts {
        let (alerts, _) = Trw::detect(part, TrwConfig::default());
        trw_union.extend(alerts.into_iter().map(|al| al.source));
    }

    section("§5.3.2: aggregated detection over 3 routers (per-packet load balancing)");
    println!("HiFIND single router:      {} final alerts", s.len());
    println!(
        "HiFIND aggregated sketches: {} final alerts → identical: {}",
        a.len(),
        s == a
    );
    println!();
    println!("TRW on the undivided trace: {} scanners", trw_single.len());
    println!(
        "TRW per-router, summed:     {} scanners ({} missed vs single, {} extra)",
        trw_union.len(),
        trw_single.difference(&trw_union).count(),
        trw_union.difference(&trw_single).count()
    );
    println!(
        "\npaper claim: HiFIND aggregate ≡ single router; TRW per-router has high\n\
         false positives/negatives because SYN and SYN/ACK of one connection are\n\
         seen by different routers (a SYN without its SYN/ACK looks like a failure)."
    );

    write_json(
        "multi_router",
        &MultiRouter {
            single_final: s.len(),
            aggregated_final: a.len(),
            identical: s == a,
            trw_single: trw_single.len(),
            trw_split_union: trw_union.len(),
            trw_missed_vs_single: trw_single.difference(&trw_union).count(),
            trw_extra_vs_single: trw_union.difference(&trw_single).count(),
        },
    );
}
