//! Shared utilities for the table/figure binaries.

use hifind::report::{Alert, AlertKind};
use hifind_flow::{Ip4, SegmentKind, Trace};
use serde::Serialize;
use std::collections::{HashMap, HashSet};

/// The workload scale the binaries run at by default. Override with the
/// `HIFIND_SCALE` environment variable (1.0 ≈ the full preset, which is
/// itself a documented scale-down of the paper's day-long traces).
pub fn scale() -> f64 {
    std::env::var("HIFIND_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.2)
}

/// Seed used by all binaries (override with `HIFIND_SEED`).
pub fn seed() -> u64 {
    std::env::var("HIFIND_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2026)
}

/// Prints a section header for a table/figure.
pub fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Prints one aligned table row.
pub fn row(cells: &[&str], widths: &[usize]) {
    let mut line = String::new();
    for (cell, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{cell:<w$}", w = w + 2));
    }
    println!("{}", line.trim_end());
}

/// Writes a JSON result blob next to the printed table so EXPERIMENTS.md
/// regeneration is scriptable (`results/<name>.json`).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return; // benches may run in a read-only checkout; printing suffices
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_vec_pretty(value) {
        Ok(bytes) => {
            if let Err(e) = std::fs::write(&path, bytes) {
                eprintln!("warning: could not write {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// The identity sets of two alert lists plus their overlap — the shape of
/// the paper's Tables 5 and 6.
#[derive(Clone, Debug, Serialize)]
pub struct OverlapCounts {
    /// |A|.
    pub a: usize,
    /// |B|.
    pub b: usize,
    /// |A ∩ B|.
    pub overlap: usize,
}

/// Compares HiFIND horizontal-scan alerts against TRW-flagged sources,
/// aggregating both by source IP (as Table 5 does).
pub fn hscan_overlap_by_source(hifind_alerts: &[Alert], trw_sources: &[Ip4]) -> OverlapCounts {
    let hifind: HashSet<u32> = hifind_alerts
        .iter()
        .filter(|a| a.kind == AlertKind::HScan)
        .filter_map(|a| a.sip.map(Ip4::raw))
        .collect();
    let trw: HashSet<u32> = trw_sources.iter().map(|s| s.raw()).collect();
    OverlapCounts {
        a: trw.len(),
        b: hifind.len(),
        overlap: hifind.intersection(&trw).count(),
    }
}

/// Per-(SIP, Dport) distinct-destination counts — used by Tables 7/8 to
/// report the `#DIP` column for detected horizontal scans.
pub fn distinct_dips_per_scanner(trace: &Trace) -> HashMap<(u32, u16), usize> {
    let mut sets: HashMap<(u32, u16), HashSet<u32>> = HashMap::new();
    for p in trace.iter() {
        if p.kind == SegmentKind::Syn {
            sets.entry((p.src.raw(), p.dport))
                .or_default()
                .insert(p.dst.raw());
        }
    }
    sets.into_iter().map(|(k, v)| (k, v.len())).collect()
}

/// Exact per-{SIP,DIP} unresponded-SYN and distinct-port counts per
/// interval — the underlying quantity of Figure 4.
pub fn pair_port_profile(
    trace: &Trace,
    interval_ms: u64,
    min_unresponded: i64,
) -> Vec<(Ip4, Ip4, usize)> {
    let mut out = Vec::new();
    for window in trace.intervals(interval_ms) {
        let mut unresp: HashMap<(u32, u32), i64> = HashMap::new();
        let mut ports: HashMap<(u32, u32), HashSet<u16>> = HashMap::new();
        for p in window.packets {
            let o = p.orient().expect("TCP segments orient");
            let key = (o.client.raw(), o.server.raw());
            match o.kind {
                SegmentKind::Syn => {
                    *unresp.entry(key).or_insert(0) += 1;
                    ports.entry(key).or_default().insert(o.server_port);
                }
                SegmentKind::SynAck => {
                    *unresp.entry(key).or_insert(0) -= 1;
                }
                _ => {}
            }
        }
        for (key, count) in unresp {
            if count > min_unresponded {
                let distinct = ports.get(&key).map(HashSet::len).unwrap_or(0);
                out.push((Ip4::new(key.0), Ip4::new(key.1), distinct));
            }
        }
    }
    out
}

/// Buckets a list of distinct-port counts into a histogram with
/// exponential bin edges (1, 2, 3–4, 5–8, ..., >512) for Figure 4.
pub fn port_histogram(counts: &[usize]) -> Vec<(String, usize)> {
    let edges: [(usize, usize, &str); 8] = [
        (1, 1, "1"),
        (2, 2, "2"),
        (3, 4, "3-4"),
        (5, 8, "5-8"),
        (9, 32, "9-32"),
        (33, 128, "33-128"),
        (129, 512, "129-512"),
        (513, usize::MAX, ">512"),
    ];
    edges
        .iter()
        .map(|&(lo, hi, label)| {
            (
                label.to_string(),
                counts.iter().filter(|&&c| c >= lo && c <= hi).count(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::Packet;

    #[test]
    fn overlap_counting() {
        let alerts = vec![
            Alert {
                kind: AlertKind::HScan,
                sip: Some([1, 1, 1, 1].into()),
                dip: None,
                dport: Some(80),
                interval: 0,
                magnitude: 100,
                attacker_identified: true,
            },
            Alert {
                kind: AlertKind::HScan,
                sip: Some([2, 2, 2, 2].into()),
                dip: None,
                dport: Some(22),
                interval: 0,
                magnitude: 100,
                attacker_identified: true,
            },
        ];
        let trw = vec![Ip4::from([1, 1, 1, 1]), Ip4::from([3, 3, 3, 3])];
        let o = hscan_overlap_by_source(&alerts, &trw);
        assert_eq!((o.a, o.b, o.overlap), (2, 2, 1));
    }

    #[test]
    fn distinct_dips() {
        let mut t = Trace::new();
        let s: Ip4 = [6, 6, 6, 6].into();
        for i in 0..10u32 {
            t.push(Packet::syn(i as u64, s, 1, [10, 0, 0, i as u8].into(), 445));
        }
        t.push(Packet::syn(99, s, 1, [10, 0, 0, 0].into(), 445)); // repeat
        let m = distinct_dips_per_scanner(&t);
        assert_eq!(m[&(s.raw(), 445)], 10);
    }

    #[test]
    fn pair_profile_flags_heavy_pairs_with_port_count() {
        let mut t = Trace::new();
        let a: Ip4 = [6, 6, 6, 6].into();
        let v: Ip4 = [10, 0, 0, 1].into();
        for port in 0..80u16 {
            t.push(Packet::syn(port as u64, a, 1, v, port));
        }
        let profile = pair_port_profile(&t, 60_000, 50);
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].2, 80);
    }

    #[test]
    fn histogram_bins() {
        let h = port_histogram(&[1, 1, 2, 6, 600]);
        let total: usize = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 5);
        assert_eq!(h[0], ("1".into(), 2));
        assert_eq!(h[3], ("5-8".into(), 1));
        assert_eq!(h[7], (">512".into(), 1));
    }
}
