//! Bit-identity proptests: the dispatched AVX2 kernel against the scalar
//! reference, on raw rows and through the sketch-level UPDATE / ESTIMATE /
//! COMBINE entry points.
//!
//! This suite is the enforcement arm of the contract in
//! `hifind_sketch::simd`: every kernel method must agree with
//! [`hifind_sketch::simd::ScalarKernel`] to the last bit — including
//! non-lane-multiple row lengths (the vector loop's scalar tail), empty
//! rows, saturating boundaries (`i64::MIN` / `i64::MAX`), and the fixed
//! 4-lane f64 association of `row_moments`. On hardware without AVX2 the
//! raw-kernel tests degrade to scalar-vs-scalar (still exercising the
//! harness) rather than failing.

use hifind_sketch::simd::{kernel_for, set_kernel, Isa, SketchKernel, UPDATE_CHUNK};
use hifind_sketch::{
    CounterGrid, KaryConfig, KarySketch, ReversibleSketch, RsConfig, TwoDConfig, TwoDSketch,
};
use proptest::prelude::*;

/// The scalar reference and the best vector kernel this CPU can run (the
/// scalar kernel again when AVX2 is unavailable, keeping the suite green
/// on any host).
fn kernel_pair() -> (&'static dyn SketchKernel, &'static dyn SketchKernel) {
    let scalar = kernel_for(Isa::Scalar).expect("scalar kernel is always available");
    let vector = kernel_for(Isa::Avx2).unwrap_or(scalar);
    (scalar, vector)
}

/// Counter values biased toward the saturating boundaries where the AVX2
/// overflow emulation earns its keep.
fn counter() -> impl Strategy<Value = i64> {
    prop_oneof![
        any::<i64>(),
        any::<i64>(),
        any::<i64>(),
        -1000i64..1000,
        -1000i64..1000,
        Just(i64::MIN),
        Just(i64::MAX),
        Just(0i64),
    ]
}

/// Row lengths straddling the 4-lane vector width: empty, sub-lane, exact
/// multiples, and ragged tails (the `UPDATE_CHUNK` span and beyond).
fn row() -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(counter(), 0..(UPDATE_CHUNK + 9))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_saturating_matches_scalar(dst in row(), src in row()) {
        let (scalar, vector) = kernel_pair();
        let n = dst.len().min(src.len());
        let (mut a, mut b) = (dst.clone(), dst);
        scalar.add_saturating(&mut a[..n], &src[..n]);
        vector.add_saturating(&mut b[..n], &src[..n]);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sub_saturating_matches_scalar(dst in row(), src in row()) {
        let (scalar, vector) = kernel_pair();
        let n = dst.len().min(src.len());
        let (mut a, mut b) = (dst.clone(), dst);
        scalar.sub_saturating(&mut a[..n], &src[..n]);
        vector.sub_saturating(&mut b[..n], &src[..n]);
        prop_assert_eq!(a, b);
    }

    #[test]
    fn sum_wrapping_matches_scalar(values in row()) {
        let (scalar, vector) = kernel_pair();
        prop_assert_eq!(scalar.sum_wrapping(&values), vector.sum_wrapping(&values));
    }

    #[test]
    fn heavy_buckets_matches_scalar(values in row(), threshold in counter()) {
        let (scalar, vector) = kernel_pair();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        scalar.heavy_buckets(&values, threshold, &mut a);
        vector.heavy_buckets(&values, threshold, &mut b);
        prop_assert_eq!(a, b);
    }

    /// `row_moments` must agree on every field, including the f64 sums —
    /// the fixed 4-lane association makes float equality exact, not
    /// approximate, so compare bit patterns.
    #[test]
    fn row_moments_matches_scalar_bit_for_bit(values in row()) {
        let (scalar, vector) = kernel_pair();
        let a = scalar.row_moments(&values);
        let b = vector.row_moments(&values);
        prop_assert_eq!(a.nonzero, b.nonzero);
        prop_assert_eq!(a.max_abs, b.max_abs);
        prop_assert_eq!(a.abs_sum.to_bits(), b.abs_sum.to_bits());
        prop_assert_eq!(a.sq_sum.to_bits(), b.sq_sum.to_bits());
        prop_assert_eq!(a.bias_sum.to_bits(), b.bias_sum.to_bits());
    }

    #[test]
    fn buckets_premixed_matches_scalar(
        premixed in prop::collection::vec(any::<u64>(), 0..(UPDATE_CHUNK + 9)),
        a in any::<u64>(),
        b in any::<u64>(),
        // Past 64 the shift is degenerate (bucket 0); cover both sides.
        shift in 0u32..70,
    ) {
        let (scalar, vector) = kernel_pair();
        let mut out_a = vec![0u64; premixed.len()];
        let mut out_b = vec![0u64; premixed.len()];
        scalar.buckets_premixed(&premixed, a, b, shift, &mut out_a);
        vector.buckets_premixed(&premixed, a, b, shift, &mut out_b);
        prop_assert_eq!(out_a, out_b);
    }

    /// Prefetching is a pure hint: any index set — in range, out of range,
    /// or against an empty row — must leave every counter untouched.
    #[test]
    fn prefetch_buckets_never_observably_acts(
        values in row(),
        idx in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let (scalar, vector) = kernel_pair();
        let before = values.clone();
        scalar.prefetch_buckets(&values, &idx);
        vector.prefetch_buckets(&values, &idx);
        vector.prefetch_buckets(&[], &idx);
        prop_assert_eq!(values, before);
    }
}

/// Forces `isa`, runs `f`, and restores the process-default kernel even if
/// `f` panics (other tests in this binary dispatch through the global).
fn with_kernel<T>(isa: Isa, f: impl FnOnce() -> T) -> T {
    struct Restore;
    impl Drop for Restore {
        fn drop(&mut self) {
            set_kernel(hifind_sketch::simd::best_isa());
        }
    }
    let _restore = Restore;
    assert!(set_kernel(isa), "kernel for {isa} must be runnable here");
    f()
}

/// Sketch-level UPDATE / ESTIMATE / COMBINE under one forced kernel: the
/// full record-and-merge cycle the data plane runs, returning everything
/// bit-comparable it produces.
fn record_estimate_combine(
    updates: &[(u64, u64, i64)],
) -> (Vec<CounterGrid>, Vec<i64>, CounterGrid) {
    let mut rs = ReversibleSketch::new(RsConfig {
        key_bits: 48,
        stages: 5,
        buckets: 1 << 12,
        seed: 9,
        mangle: true,
        verifier_buckets: Some(1 << 10),
    })
    .unwrap();
    let mut kary = KarySketch::new(KaryConfig {
        stages: 5,
        buckets: 1 << 10,
        seed: 11,
    })
    .unwrap();
    let mut twod = TwoDSketch::new(TwoDConfig {
        stages: 3,
        x_buckets: 1 << 6,
        y_buckets: 1 << 5,
        seed: 13,
    })
    .unwrap();
    // UPDATE through the batched (kernel-dispatched) entry points, with a
    // ragged non-chunk-multiple tail.
    let keys: Vec<u64> = updates
        .iter()
        .map(|&(k, _, _)| k & ((1 << 48) - 1))
        .collect();
    let premixed: Vec<u64> = keys
        .iter()
        .map(|&k| hifind_hashing::PairwiseHasher::premix(k))
        .collect();
    let y_premixed: Vec<u64> = updates
        .iter()
        .map(|&(_, y, _)| hifind_hashing::PairwiseHasher::premix(y))
        .collect();
    let deltas: Vec<i64> = updates.iter().map(|&(_, _, d)| d).collect();
    rs.update_batch(&keys, &premixed, &deltas);
    kary.update_batch_premixed(&premixed, &deltas);
    twod.update_batch_premixed(&premixed, &y_premixed, &deltas);
    // ESTIMATE for a spread of present and absent keys.
    let estimates: Vec<i64> = keys
        .iter()
        .take(8)
        .chain([0u64, 1 << 20, (1 << 48) - 1].iter())
        .map(|&k| rs.estimate(k).wrapping_add(kary.estimate(k)))
        .collect();
    // COMBINE: fold shifted copies of the k-ary grid into the reversible
    // grid's shape-mate via the cache-blocked kernel path, plus an
    // empty-grid merge (all-zero sources must be a bit-exact no-op).
    let mut combined = kary.grid().clone();
    let other = kary.grid().clone();
    let empty = CounterGrid::new(combined.stages(), combined.buckets());
    combined.add_assign_many(&[&other, &empty, &other]).unwrap();
    (
        vec![rs.grid().clone(), kary.grid().clone(), twod.grid().clone()],
        estimates,
        combined,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// End-to-end: the same update stream recorded, estimated, and combined
    /// under the scalar kernel and under the dispatched vector kernel must
    /// produce bit-identical grids, estimates, and merged counters.
    #[test]
    fn sketch_cycle_is_kernel_invariant(
        updates in prop::collection::vec(
            (any::<u64>(), any::<u64>(), counter()),
            1..(2 * UPDATE_CHUNK + 11),
        ),
    ) {
        let scalar = with_kernel(Isa::Scalar, || record_estimate_combine(&updates));
        if kernel_for(Isa::Avx2).is_some() {
            let vector = with_kernel(Isa::Avx2, || record_estimate_combine(&updates));
            prop_assert_eq!(scalar, vector);
        }
    }
}
