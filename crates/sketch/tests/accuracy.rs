//! Statistical accuracy characterization (the paper's "sketches are highly
//! accurate" claim, §5.2, quantified).
//!
//! These tests pin the *scaling behaviour* the k-ary/reversible sketch
//! analysis promises: estimate error grows with load factor and shrinks
//! with bucket count; inference recall stays near one and precision near
//! one at the paper's operating point.

use hifind_flow::rng::SplitMix64;
use hifind_sketch::{InferOptions, KaryConfig, KarySketch, ReversibleSketch, RsConfig};

/// Mean absolute estimate error over `probes` known keys under `noise`
/// uniform single-count updates.
fn mean_abs_error(buckets: usize, noise: usize, seed: u64) -> f64 {
    let mut s = KarySketch::new(KaryConfig {
        stages: 6,
        buckets,
        seed,
    })
    .unwrap();
    let mut rng = SplitMix64::new(seed ^ 0xACC);
    let truth: Vec<(u64, i64)> = (0..100)
        .map(|_| (rng.next_u64(), 50 + rng.below(450) as i64))
        .collect();
    for &(k, v) in &truth {
        s.update(k, v);
    }
    for _ in 0..noise {
        s.update(rng.next_u64(), 1);
    }
    truth
        .iter()
        .map(|&(k, v)| (s.estimate(k) - v).abs() as f64)
        .sum::<f64>()
        / truth.len() as f64
}

#[test]
fn estimate_error_shrinks_with_buckets() {
    let small = mean_abs_error(1 << 8, 100_000, 1);
    let large = mean_abs_error(1 << 14, 100_000, 1);
    assert!(
        large < small / 4.0,
        "64x buckets should cut error ≥4x: {small:.1} → {large:.1}"
    );
}

#[test]
fn estimate_error_grows_with_load() {
    let light = mean_abs_error(1 << 12, 10_000, 2);
    let heavy = mean_abs_error(1 << 12, 1_000_000, 2);
    assert!(
        heavy > light,
        "100x load should not shrink error: {light:.1} vs {heavy:.1}"
    );
    // At the paper's operating point the error stays small in absolute
    // terms (the unbiased estimator subtracts the mean load).
    assert!(heavy < 120.0, "error {heavy:.1} too large at paper scale");
}

#[test]
fn unbiased_estimator_centers_on_truth() {
    // Over many keys the signed error should average out near zero —
    // that is what "unbiased" buys over raw count-min style counters.
    let mut s = KarySketch::new(KaryConfig {
        stages: 6,
        buckets: 1 << 12,
        seed: 3,
    })
    .unwrap();
    let mut rng = SplitMix64::new(4);
    let truth: Vec<(u64, i64)> = (0..200).map(|_| (rng.next_u64(), 100)).collect();
    for &(k, v) in &truth {
        s.update(k, v);
    }
    for _ in 0..500_000 {
        s.update(rng.next_u64(), 1);
    }
    let signed_mean = truth
        .iter()
        .map(|&(k, v)| (s.estimate(k) - v) as f64)
        .sum::<f64>()
        / truth.len() as f64;
    assert!(
        signed_mean.abs() < 15.0,
        "estimator bias {signed_mean:.1} too large"
    );
}

/// Inference recall/precision at the paper's 48-bit operating point.
/// (Key count sized for a debug-mode unit test; the candidate search's
/// cost inflation at many simultaneous heavy keys is the same effect the
/// paper's top-100 stress test reports in §5.5.3 and is measured in the
/// `throughput` binary in release mode.)
#[test]
fn inference_recall_and_precision_at_paper_config() {
    let mut rs = ReversibleSketch::new(RsConfig::paper_48bit(5)).unwrap();
    let mut rng = SplitMix64::new(6);
    let heavy: Vec<u64> = (0..25).map(|_| rng.next_u64() & ((1 << 48) - 1)).collect();
    for &k in &heavy {
        rs.update(k, 500);
    }
    for _ in 0..200_000 {
        rs.update(rng.next_u64() & ((1 << 48) - 1), 1);
    }
    let result = rs.infer(250, &InferOptions::default());
    let found = heavy
        .iter()
        .filter(|&&k| result.keys.iter().any(|hk| hk.key == k))
        .count();
    let recall = found as f64 / heavy.len() as f64;
    let precision = if result.keys.is_empty() {
        0.0
    } else {
        result
            .keys
            .iter()
            .filter(|hk| heavy.contains(&hk.key))
            .count() as f64
            / result.keys.len() as f64
    };
    assert!(recall >= 0.95, "recall {recall:.2} below spec");
    assert!(precision >= 0.95, "precision {precision:.2} below spec");
    assert!(!result.stats.truncated);
}

/// Inference recall degrades gracefully (not catastrophically) as the
/// number of simultaneous heavy keys grows. (The paper's "top 100
/// anomalies" stress inflates detection time the same way — §5.5.3
/// reports 35–47 s per interval there; the release-mode equivalent lives
/// in the `throughput` bench binary. Thirty keys keeps this a unit test.)
#[test]
fn inference_handles_many_heavy_keys() {
    let mut rs = ReversibleSketch::new(RsConfig::paper_48bit(7)).unwrap();
    let mut rng = SplitMix64::new(8);
    let heavy: Vec<u64> = (0..30).map(|_| rng.next_u64() & ((1 << 48) - 1)).collect();
    for &k in &heavy {
        rs.update(k, 1000);
    }
    for _ in 0..200_000 {
        rs.update(rng.next_u64() & ((1 << 48) - 1), 1);
    }
    let result = rs.infer(500, &InferOptions::default());
    let found = heavy
        .iter()
        .filter(|&&k| result.keys.iter().any(|hk| hk.key == k))
        .count();
    assert!(
        found >= 28,
        "only {found}/30 heavy keys recovered under stress"
    );
}

/// The verifier sketch measurably cuts inference false positives when the
/// main sketch is overloaded (ablation pinned as a regression test).
#[test]
fn verifier_reduces_false_positives_under_overload() {
    let run = |verifier: bool, seed: u64| -> usize {
        let mut cfg = RsConfig {
            key_bits: 48,
            stages: 6,
            buckets: 1 << 6, // deliberately tiny: heavy collisions
            seed,
            mangle: true,
            verifier_buckets: if verifier { Some(1 << 14) } else { None },
        };
        cfg.buckets = 1 << 6;
        let mut rs = ReversibleSketch::new(cfg).unwrap();
        let mut rng = SplitMix64::new(seed ^ 0xF);
        let heavy: Vec<u64> = (0..5).map(|_| rng.next_u64() & ((1 << 48) - 1)).collect();
        for &k in &heavy {
            rs.update(k, 2000);
        }
        for _ in 0..50_000 {
            rs.update(rng.next_u64() & ((1 << 48) - 1), 1);
        }
        let opts = InferOptions {
            max_candidates: 1 << 13,
            ..InferOptions::default()
        };
        rs.infer(1000, &opts)
            .keys
            .iter()
            .filter(|hk| !heavy.contains(&hk.key))
            .count()
    };
    let mut with_v = 0;
    let mut without_v = 0;
    for seed in 0..3 {
        with_v += run(true, seed);
        without_v += run(false, seed);
    }
    assert!(
        with_v <= without_v,
        "verifier should not increase FPs: {with_v} vs {without_v}"
    );
}
