//! Adversarial tests for the 2D sketch classifier (paper §4): can an
//! attacker manipulate the column-concentration test?

use hifind_flow::rng::SplitMix64;
use hifind_sketch::{ColumnShape, TwoDConfig, TwoDSketch};

/// A flooder padding its attack with a few low-rate decoy ports cannot
/// flip the verdict to "vertical scan": the top-p mass still dominates.
#[test]
fn decoy_ports_do_not_disguise_flooding() {
    let mut s = TwoDSketch::new(TwoDConfig::paper(1)).unwrap();
    let x = 0xF100D;
    for _ in 0..2000 {
        s.update(x, 80, 1); // the real flood port
    }
    // Decoys: 20 extra ports with 1% of the mass each would require the
    // attacker to *reduce* the attack's own concentration below top-5/φ —
    // at which point the flood rate per port drops below the step-1
    // threshold instead.
    for port in 0..20u64 {
        s.update(x, 1000 + port, 20);
    }
    assert_eq!(s.classify(x, 5, 0.8), ColumnShape::Concentrated);
}

/// Conversely, a vertical scanner concentrating 30% of probes on one port
/// still classifies as a scan: the remaining mass spreads over the column.
#[test]
fn skewed_vertical_scan_still_dispersed() {
    let mut s = TwoDSketch::new(TwoDConfig::paper(2)).unwrap();
    let x = 0x5CA9;
    for _ in 0..600 {
        s.update(x, 22, 1); // favourite port
    }
    for port in 0..1400u64 {
        s.update(x, port, 1);
    }
    assert_eq!(s.classify(x, 5, 0.8), ColumnShape::Dispersed);
}

/// An attacker flooding *other* x-keys that collide into the same columns
/// cannot flip a scan verdict to flooding: they would need to hit the same
/// (x-bucket, y-bucket) cells in a majority of the independently-hashed
/// matrices.
#[test]
fn column_pollution_does_not_transfer_across_matrices() {
    let cfg = TwoDConfig::paper(3);
    let mut s = TwoDSketch::new(cfg).unwrap();
    let scan_key = 0x5CA9_0001u64;
    for port in 0..500u64 {
        s.update(scan_key, port, 1);
    }
    assert_eq!(s.classify(scan_key, 5, 0.8), ColumnShape::Dispersed);
    // Adversarial pollution: a million updates from random x-keys on one
    // port. Some land in scan_key's column in *one* matrix, but the
    // majority vote over 5 independent matrices holds.
    let mut rng = SplitMix64::new(4);
    for _ in 0..1_000_000 {
        s.update(rng.next_u64(), 80, 1);
    }
    assert_eq!(
        s.classify(scan_key, 5, 0.8),
        ColumnShape::Dispersed,
        "random-key pollution must not flip the majority vote"
    );
}

/// Negative mass (completed handshakes) aimed at a flooding victim's
/// column cannot hide the flood: concentration ignores non-positive cells.
#[test]
fn negative_mass_cannot_hide_flooding() {
    let mut s = TwoDSketch::new(TwoDConfig::paper(5)).unwrap();
    let x = 0xF100D;
    for _ in 0..1000 {
        s.update(x, 80, 1);
    }
    // Attacker-completed handshakes on other ports drive those cells
    // negative.
    for port in 0..63u64 {
        s.update(x, 200 + port, -50);
    }
    assert_eq!(s.classify(x, 5, 0.8), ColumnShape::Concentrated);
}
