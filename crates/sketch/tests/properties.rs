//! Property-based tests for the sketch invariants the paper relies on.

use hifind_sketch::{
    CounterGrid, InferOptions, KaryConfig, KarySketch, ReversibleSketch, RsConfig, TwoDConfig,
    TwoDSketch,
};
use proptest::prelude::*;

fn small_rs(seed: u64) -> ReversibleSketch {
    ReversibleSketch::new(RsConfig {
        key_bits: 48,
        stages: 6,
        buckets: 1 << 12,
        seed,
        mangle: true,
        verifier_buckets: Some(1 << 12),
    })
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// COMBINE linearity: sketch(A) + sketch(B) == sketch(A ∪ B).
    #[test]
    fn reversible_combine_is_linear(
        seed in any::<u64>(),
        updates in prop::collection::vec((any::<u64>(), -50i64..50), 1..300),
    ) {
        let mut a = small_rs(seed);
        let mut b = small_rs(seed);
        let mut merged = small_rs(seed);
        for (i, &(k, v)) in updates.iter().enumerate() {
            let k = k & ((1 << 48) - 1);
            if i % 2 == 0 { a.update(k, v) } else { b.update(k, v) }
            merged.update(k, v);
        }
        let combined = ReversibleSketch::combine(&[(1.0, &a), (1.0, &b)]).unwrap();
        prop_assert_eq!(combined.grid(), merged.grid());
        prop_assert_eq!(combined.total(), merged.total());
    }

    /// The raw per-stage bucket value always upper-bounds a key's true
    /// value when all updates are non-negative.
    #[test]
    fn kary_never_underestimates_with_positive_updates(
        seed in any::<u64>(),
        key in any::<u64>(),
        true_value in 1i64..1000,
        noise in prop::collection::vec(any::<u64>(), 0..500),
    ) {
        let mut s = KarySketch::new(KaryConfig { stages: 5, buckets: 1 << 10, seed }).unwrap();
        s.update(key, true_value);
        for &n in &noise {
            if n != key {
                s.update(n, 1);
            }
        }
        prop_assert!(s.raw_estimate(key) >= true_value);
    }

    /// A single recorded key is recovered exactly by inference and its
    /// estimate matches the recorded value.
    #[test]
    fn inference_recovers_isolated_key(seed in any::<u64>(), key in any::<u64>(), value in 100i64..10_000) {
        let key = key & ((1 << 48) - 1);
        let mut rs = small_rs(seed);
        rs.update(key, value);
        let result = rs.infer(value / 2, &InferOptions::default());
        prop_assert_eq!(result.keys.len(), 1);
        prop_assert_eq!(result.keys[0].key, key);
        prop_assert!((result.keys[0].estimate - value).abs() <= 2);
    }

    /// Inference output is sound: every reported key's estimate clears the
    /// threshold (no arbitrary keys appear).
    #[test]
    fn inference_reports_only_above_threshold(
        seed in any::<u64>(),
        updates in prop::collection::vec((any::<u64>(), 1i64..400), 0..60),
        threshold in 100i64..500,
    ) {
        let mut rs = small_rs(seed);
        for &(k, v) in &updates {
            rs.update(k & ((1 << 48) - 1), v);
        }
        let result = rs.infer(threshold, &InferOptions::default());
        for hk in &result.keys {
            prop_assert!(hk.estimate >= threshold);
        }
    }

    /// UPDATE followed by the inverse update leaves the sketch zero.
    #[test]
    fn updates_are_invertible(
        seed in any::<u64>(),
        updates in prop::collection::vec((any::<u64>(), -100i64..100), 0..200),
    ) {
        let mut rs = small_rs(seed);
        for &(k, v) in &updates {
            rs.update(k & ((1 << 48) - 1), v);
        }
        for &(k, v) in &updates {
            rs.update(k & ((1 << 48) - 1), -v);
        }
        prop_assert!(rs.grid().is_zero());
        prop_assert_eq!(rs.total(), 0);
    }

    /// Grid linear algebra: (a + b) − b == a.
    #[test]
    fn grid_add_sub_inverse(
        cells_a in prop::collection::vec(-1000i64..1000, 8),
        cells_b in prop::collection::vec(-1000i64..1000, 8),
    ) {
        let mut a = CounterGrid::new(2, 4);
        let mut b = CounterGrid::new(2, 4);
        for (i, (&va, &vb)) in cells_a.iter().zip(&cells_b).enumerate() {
            a.add(i / 4, i % 4, va);
            b.add(i / 4, i % 4, vb);
        }
        let mut sum = a.clone();
        sum.add_assign(&b).unwrap();
        sum.sub_assign(&b).unwrap();
        prop_assert_eq!(sum, a);
    }

    /// 2D sketch: column mass equals recorded mass for an isolated x-key.
    #[test]
    fn twod_column_mass_conserved(seed in any::<u64>(), x in any::<u64>(), ys in prop::collection::vec((any::<u64>(), 1i64..50), 1..50)) {
        let mut s = TwoDSketch::new(TwoDConfig { stages: 5, x_buckets: 1 << 10, y_buckets: 64, seed }).unwrap();
        let mut mass = 0i64;
        for &(y, v) in &ys {
            s.update(x, y, v);
            mass += v;
        }
        for stage in 0..5 {
            prop_assert_eq!(s.column(stage, x).iter().sum::<i64>(), mass);
        }
    }

    /// 2D combine linearity.
    #[test]
    fn twod_combine_is_linear(
        seed in any::<u64>(),
        updates in prop::collection::vec((any::<u64>(), any::<u64>(), 1i64..20), 1..200),
    ) {
        let cfg = TwoDConfig { stages: 3, x_buckets: 1 << 8, y_buckets: 32, seed };
        let mut a = TwoDSketch::new(cfg).unwrap();
        let mut b = TwoDSketch::new(cfg).unwrap();
        let mut merged = TwoDSketch::new(cfg).unwrap();
        for (i, &(x, y, v)) in updates.iter().enumerate() {
            if i % 2 == 0 { a.update(x, y, v) } else { b.update(x, y, v) }
            merged.update(x, y, v);
        }
        let combined = TwoDSketch::combine(&[(1.0, &a), (1.0, &b)]).unwrap();
        prop_assert_eq!(combined.grid(), merged.grid());
    }
}
