//! Adversarial/DoS-resilience tests for the sketches (paper §3.5).
//!
//! The paper argues an attacker cannot (a) exhaust HiFIND's memory, (b)
//! hide a real attack under a spoofed flood, or (c) engineer hash
//! collisions without knowing the secret seeds. These tests exercise each
//! claim against the actual implementation.

use hifind_flow::rng::SplitMix64;
use hifind_sketch::{InferOptions, ReversibleSketch, RsConfig};

fn paper_rs(seed: u64) -> ReversibleSketch {
    ReversibleSketch::new(RsConfig::paper_48bit(seed)).unwrap()
}

/// (a) Memory does not grow with the number of distinct keys.
#[test]
fn memory_is_constant_under_spoofed_flood() {
    let mut rs = paper_rs(1);
    let before = rs.memory_bytes();
    let mut rng = SplitMix64::new(2);
    for _ in 0..500_000 {
        rs.update(rng.next_u64() & ((1 << 48) - 1), 1);
    }
    assert_eq!(rs.memory_bytes(), before);
}

/// (b) A fully spoofed flood spreads evenly over buckets and cannot mask a
/// concurrent real attack (paper: "Even if there is a real attack, the SYN
/// count for that attack is still significant to be detected").
#[test]
fn spoofed_flood_does_not_mask_real_attack() {
    let mut rs = paper_rs(3);
    let attack_key = 0x0666_1389_0050u64;
    // The real attack: 1000 unresponded SYNs.
    rs.update(attack_key, 1000);
    // The smokescreen: one million spoofed keys, one SYN each (the paper's
    // 1667 pps for 10 minutes).
    let mut rng = SplitMix64::new(4);
    for _ in 0..1_000_000 {
        rs.update(rng.next_u64() & ((1 << 48) - 1), 1);
    }
    // Expected flood mass per bucket: 1e6 / 4096 ≈ 244 — well under the
    // attack's 1000. The unbiased estimator subtracts that baseline.
    let est = rs.estimate(attack_key);
    assert!(
        (est - 1000).abs() < 300,
        "estimate {est} drifted too far under flood"
    );
    let result = rs.infer(600, &InferOptions::default());
    assert!(
        result.keys.iter().any(|hk| hk.key == attack_key),
        "inference lost the real attack under the flood: {result:?}"
    );
}

/// (c) Without the seeds, structured key sets (shared prefixes, sequential
/// suffixes — the best an attacker can do blind) do not concentrate in few
/// buckets thanks to mangling.
#[test]
fn structured_keys_do_not_concentrate() {
    let rs = paper_rs(5);
    // 4096 keys sharing 40 of 48 bits.
    let keys: Vec<u64> = (0..4096u64).map(|i| 0x0102_0304_0000 | i).collect();
    // Count distinct buckets hit in stage 0 via the public update path:
    // update each key into a fresh sketch and look at non-zero counters.
    let mut probe = paper_rs(5);
    for &k in &keys {
        probe.update(k, 1);
    }
    let nonzero = probe.grid().stage(0).iter().filter(|&&v| v != 0).count();
    // 4096 balls into 4096 bins leave ~63% of bins non-empty when uniform;
    // an unmangled word-local hash would hit at most 4 × 4 × 64 = touched
    // chunk combinations. Require at least a third of the buckets.
    assert!(
        nonzero > 1365,
        "structured keys collapsed into {nonzero} buckets"
    );
    let _ = rs;
}

/// (c') Two sketches with different seeds disagree on bucket placement, so
/// collisions found against one deployment (e.g. by probing a captured
/// box) do not transfer to another.
#[test]
fn collisions_do_not_transfer_across_seeds() {
    let mut a = paper_rs(6);
    let mut b = paper_rs(7);
    // Find two keys colliding in a's stage-0 bucket by brute force (an
    // attacker with full knowledge of a).
    let mut rng = SplitMix64::new(8);
    let k1 = rng.next_u64() & ((1 << 48) - 1);
    a.update(k1, 1);
    let target: Vec<usize> = (0..a.grid().buckets())
        .filter(|&i| a.grid().get(0, i) != 0)
        .collect();
    let bucket = target[0];
    let mut colliding = None;
    let mut probe = paper_rs(6);
    for _ in 0..200_000 {
        let k2 = rng.next_u64() & ((1 << 48) - 1);
        if k2 == k1 {
            continue;
        }
        probe.update(k2, 1);
        let hit = probe.grid().get(0, bucket) != 0;
        probe.update(k2, -1); // leave the probe sketch clean
        if hit {
            colliding = Some(k2);
            break;
        }
    }
    let k2 = colliding.expect("brute force finds a stage-0 collision");
    // Under a *different* seed the pair almost surely separates.
    b.update(k1, 1);
    b.update(k2, 1);
    let together = (0..b.grid().buckets()).all(|i| {
        let v = b.grid().get(0, i);
        v == 0 || v == 2
    });
    assert!(
        !together,
        "a collision engineered against seed 6 transferred to seed 7"
    );
}

/// Inference stays bounded (and reports truncation) when an adversary
/// makes *everything* heavy, instead of exploding in time/space.
#[test]
fn inference_survives_everything_heavy() {
    let mut rs = paper_rs(9);
    let mut rng = SplitMix64::new(10);
    for _ in 0..20_000 {
        rs.update(rng.next_u64() & ((1 << 48) - 1), 200);
    }
    let opts = InferOptions {
        max_candidates: 5_000,
        ..InferOptions::default()
    };
    let result = rs.infer(100, &opts);
    assert!(result.stats.truncated);
    assert!(result.keys.len() <= 5_001);
}
