//! The two-dimensional k-ary sketch (paper §4).
//!
//! `H` independent `Kx × Ky` hash matrices. UPDATE hashes an x-key (e.g.
//! `{SIP,DIP}`) to a column and a y-key (e.g. `Dport`) to a row within that
//! column, and adds the value to the selected cell of every matrix.
//!
//! After the reversible sketch has *detected* an x-key, the column the x-key
//! selects reveals the **distribution** of the y values it was updated with:
//! SYN flooding concentrates on one or two ports, a vertical scan spreads
//! over many. The classifier computes, per matrix, the fraction
//! `S_p / B` of the column's positive mass held by its top `p` buckets; if
//! `S_p > φ·B` the matrix votes *concentrated*, and the majority of the `H`
//! matrices decides (paper's `p = 5` of 64, `φ = 0.8`).

use crate::grid::CounterGrid;
use crate::simd::UPDATE_CHUNK;
use crate::SketchError;
use hifind_flow::rng::SplitMix64;
use hifind_hashing::{BucketHasher, PairwiseHasher};
use serde::{Deserialize, Serialize};

/// Configuration for a [`TwoDSketch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoDConfig {
    /// Number of hash matrices (`H`; the paper uses 5).
    pub stages: usize,
    /// Columns per matrix (x dimension; the paper uses 2^12).
    pub x_buckets: usize,
    /// Rows per column (y dimension; the paper uses 64).
    pub y_buckets: usize,
    /// Master seed for the per-matrix hash pairs.
    pub seed: u64,
}

impl TwoDConfig {
    /// The paper's configuration: 5 matrices of 2^12 × 64 buckets.
    pub fn paper(seed: u64) -> Self {
        TwoDConfig {
            stages: 5,
            x_buckets: 1 << 12,
            y_buckets: 64,
            seed,
        }
    }

    fn validate(&self) -> Result<(), SketchError> {
        if self.stages == 0 {
            return Err(SketchError::BadConfig("stages must be positive".into()));
        }
        if !self.x_buckets.is_power_of_two() || !self.y_buckets.is_power_of_two() {
            return Err(SketchError::BadConfig(
                "bucket counts must be powers of two".into(),
            ));
        }
        Ok(())
    }
}

/// Verdict of the column-concentration classifier.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnShape {
    /// The top-`p` buckets hold more than `φ` of the column mass —
    /// flooding-like behaviour (few distinct y values).
    Concentrated,
    /// Mass is spread over many buckets — scan-like behaviour.
    Dispersed,
}

/// A two-dimensional k-ary sketch.
///
/// # Example
///
/// ```
/// use hifind_sketch::{ColumnShape, TwoDConfig, TwoDSketch};
///
/// let mut s = TwoDSketch::new(TwoDConfig::paper(5)).unwrap();
/// // Flooding: one x-key, one y value, lots of mass.
/// for _ in 0..500 { s.update(42, 80, 1); }
/// assert_eq!(s.classify(42, 5, 0.8), ColumnShape::Concentrated);
/// // Vertical scan: one x-key, many y values.
/// for port in 0..500 { s.update(77, port, 1); }
/// assert_eq!(s.classify(77, 5, 0.8), ColumnShape::Dispersed);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TwoDSketch {
    config: TwoDConfig,
    x_hashers: Vec<PairwiseHasher>,
    y_hashers: Vec<PairwiseHasher>,
    /// Stage s, cell (x, y) ↦ grid bucket `x * y_buckets + y`.
    grid: CounterGrid,
    total: i64,
}

impl TwoDSketch {
    /// Creates an empty 2D sketch.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::BadConfig`] for zero stages or non-power-of-
    /// two bucket counts.
    pub fn new(config: TwoDConfig) -> Result<Self, SketchError> {
        config.validate()?;
        let mut rng = SplitMix64::new(config.seed);
        let x_hashers = (0..config.stages)
            .map(|i| PairwiseHasher::new(&mut rng.fork(2 * i as u64), config.x_buckets))
            .collect();
        let y_hashers = (0..config.stages)
            .map(|i| PairwiseHasher::new(&mut rng.fork(2 * i as u64 + 1), config.y_buckets))
            .collect();
        Ok(TwoDSketch {
            config,
            x_hashers,
            y_hashers,
            grid: CounterGrid::new(config.stages, config.x_buckets * config.y_buckets),
            total: 0,
        })
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> &TwoDConfig {
        &self.config
    }

    /// UPDATE: adds `delta` at (x-key, y-key) in every matrix — one memory
    /// access per matrix (paper §5.5.2: 5 accesses per packet).
    #[inline]
    pub fn update(&mut self, x_key: u64, y_key: u64, delta: i64) {
        self.update_premixed(
            PairwiseHasher::premix(x_key),
            PairwiseHasher::premix(y_key),
            delta,
        );
    }

    /// UPDATE from precomputed [`PairwiseHasher::premix`] values of the x-
    /// and y-keys. Identical to [`TwoDSketch::update`]; the recorder's
    /// per-packet hash plan premixes each key once and shares it across
    /// every sketch that consumes it.
    #[inline]
    pub fn update_premixed(&mut self, x_premixed: u64, y_premixed: u64, delta: i64) {
        for stage in 0..self.config.stages {
            let x = self.x_hashers[stage].bucket_premixed(x_premixed);
            let y = self.y_hashers[stage].bucket_premixed(y_premixed);
            self.grid.add(stage, x * self.config.y_buckets + y, delta);
        }
        self.total = self.total.saturating_add(delta);
    }

    /// Batched UPDATE: applies `deltas[i]` at `(x_premixed[i],
    /// y_premixed[i])`, bit-identical to calling
    /// [`TwoDSketch::update_premixed`] once per element in order.
    ///
    /// Stage-major over [`UPDATE_CHUNK`]-packet runs like
    /// [`crate::KarySketch::update_batch_premixed`]: a first pass finishes
    /// the chunk's x- and y-bucket indices for every stage (two kernel
    /// calls each), folds them into flat matrix indices and prefetches all
    /// of the touched cells, then the scatter pass applies the saturating
    /// adds with the misses of every stage already streaming in. Per-cell
    /// delta order matches the serial path (each cell lives in one stage;
    /// within a stage packets apply in order).
    pub fn update_batch_premixed(
        &mut self,
        x_premixed: &[u64],
        y_premixed: &[u64],
        deltas: &[i64],
    ) {
        debug_assert_eq!(x_premixed.len(), y_premixed.len());
        debug_assert_eq!(x_premixed.len(), deltas.len());
        let n = x_premixed.len().min(y_premixed.len()).min(deltas.len());
        let kernel = crate::simd::kernel();
        let y_buckets = self.config.y_buckets;
        let stages = self.config.stages;
        let mut xi = [0u64; UPDATE_CHUNK];
        let mut yi = [0u64; UPDATE_CHUNK];
        let mut idx = vec![0u64; stages * UPDATE_CHUNK];
        let mut start = 0;
        while start < n {
            let end = (start + UPDATE_CHUNK).min(n);
            let xs = &x_premixed[start..end];
            let ys = &y_premixed[start..end];
            let del = &deltas[start..end];
            for stage in 0..stages {
                let (xa, xb, xshift) = self.x_hashers[stage].coefficients();
                let (ya, yb, yshift) = self.y_hashers[stage].coefficients();
                kernel.buckets_premixed(xs, xa, xb, xshift, &mut xi[..xs.len()]);
                kernel.buckets_premixed(ys, ya, yb, yshift, &mut yi[..ys.len()]);
                let buf = &mut idx[stage * UPDATE_CHUNK..][..xs.len()];
                for ((flat, &x), &y) in buf.iter_mut().zip(&xi[..xs.len()]).zip(&yi[..ys.len()]) {
                    *flat = x * y_buckets as u64 + y;
                }
                kernel.prefetch_buckets(self.grid.stage(stage), buf);
            }
            for stage in 0..stages {
                let row = self.grid.stage_mut(stage);
                for (&flat, &d) in idx[stage * UPDATE_CHUNK..][..xs.len()].iter().zip(del) {
                    let cell = &mut row[flat as usize];
                    *cell = cell.saturating_add(d);
                }
            }
            for &d in del {
                self.total = self.total.saturating_add(d);
            }
            start = end;
        }
    }

    /// The column of `y_buckets` cell values selected by `x_key` in one
    /// matrix.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= config.stages`.
    pub fn column(&self, stage: usize, x_key: u64) -> Vec<i64> {
        self.column_grid(&self.grid, stage, x_key)
    }

    /// [`TwoDSketch::column`] against an external grid of this sketch's
    /// shape (e.g. an aggregated or forecast-error grid).
    pub fn column_grid(&self, grid: &CounterGrid, stage: usize, x_key: u64) -> Vec<i64> {
        debug_assert_eq!(grid.stages(), self.config.stages);
        debug_assert_eq!(
            grid.buckets(),
            self.config.x_buckets * self.config.y_buckets
        );
        let x = self.x_hashers[stage].bucket(x_key);
        let base = x * self.config.y_buckets;
        (0..self.config.y_buckets)
            .map(|y| grid.get(stage, base + y))
            .collect()
    }

    /// Per-matrix concentration ratio `S_p / B` over the column's positive
    /// mass (negative cells — from SYN/ACK-dominated benign flows hashed
    /// into the column — are ignored so they cannot hide attack mass).
    ///
    /// Returns `None` for a matrix whose column has no positive mass.
    pub fn concentration(&self, stage: usize, x_key: u64, top_p: usize) -> Option<f64> {
        self.concentration_grid(&self.grid, stage, x_key, top_p)
    }

    /// [`TwoDSketch::concentration`] against an external grid.
    pub fn concentration_grid(
        &self,
        grid: &CounterGrid,
        stage: usize,
        x_key: u64,
        top_p: usize,
    ) -> Option<f64> {
        let mut col: Vec<i64> = self
            .column_grid(grid, stage, x_key)
            .into_iter()
            .filter(|&v| v > 0)
            .collect();
        let total: i64 = col.iter().sum();
        if total <= 0 {
            return None;
        }
        col.sort_unstable_by(|a, b| b.cmp(a));
        let top: i64 = col.iter().take(top_p).sum();
        Some(top as f64 / total as f64)
    }

    /// The paper's classifier: majority vote over matrices of
    /// `S_p > φ · B`.
    ///
    /// Matrices with empty columns abstain; an x-key with no recorded mass
    /// at all classifies as [`ColumnShape::Concentrated`] (vacuously — a
    /// single unresponded service lookup is not a scan).
    pub fn classify(&self, x_key: u64, top_p: usize, phi: f64) -> ColumnShape {
        self.classify_grid(&self.grid, x_key, top_p, phi)
    }

    /// [`TwoDSketch::classify`] against an external grid.
    pub fn classify_grid(
        &self,
        grid: &CounterGrid,
        x_key: u64,
        top_p: usize,
        phi: f64,
    ) -> ColumnShape {
        let mut concentrated = 0usize;
        let mut dispersed = 0usize;
        for stage in 0..self.config.stages {
            match self.concentration_grid(grid, stage, x_key, top_p) {
                Some(ratio) if ratio > phi => concentrated = concentrated.saturating_add(1),
                Some(_) => dispersed = dispersed.saturating_add(1),
                None => {}
            }
        }
        if concentrated >= dispersed {
            ColumnShape::Concentrated
        } else {
            ColumnShape::Dispersed
        }
    }

    /// An estimate of how many distinct y-buckets the x-key's updates
    /// touched: the median over matrices of the count of positive cells in
    /// the selected column. Used for Figure 4 (unique-port distribution).
    pub fn active_y_buckets(&self, x_key: u64) -> usize {
        self.active_y_buckets_grid(&self.grid, x_key)
    }

    /// [`TwoDSketch::active_y_buckets`] against an external grid.
    pub fn active_y_buckets_grid(&self, grid: &CounterGrid, x_key: u64) -> usize {
        let mut counts: Vec<usize> = (0..self.config.stages)
            .map(|s| {
                self.column_grid(grid, s, x_key)
                    .iter()
                    .filter(|&&v| v > 0)
                    .count()
            })
            .collect();
        counts.sort_unstable();
        counts[counts.len() / 2]
    }

    /// COMBINE: linear combination of 2D sketches sharing a configuration.
    ///
    /// # Errors
    ///
    /// [`SketchError::CombineMismatch`] / [`SketchError::CombineEmpty`] as
    /// for the other sketches.
    pub fn combine(terms: &[(f64, &TwoDSketch)]) -> Result<TwoDSketch, SketchError> {
        let (_, first) = terms.first().ok_or(SketchError::CombineEmpty)?;
        for (_, s) in terms {
            if s.config != first.config {
                return Err(SketchError::CombineMismatch);
            }
        }
        let grids: Vec<(f64, &CounterGrid)> = terms.iter().map(|(c, s)| (*c, &s.grid)).collect();
        let grid = CounterGrid::linear_combination(&grids)?;
        let total = terms
            .iter()
            .map(|(c, s)| c * s.total as f64)
            .sum::<f64>()
            .round() as i64;
        Ok(TwoDSketch {
            config: first.config,
            x_hashers: first.x_hashers.clone(),
            y_hashers: first.y_hashers.clone(),
            grid,
            total,
        })
    }

    /// Borrows the underlying grid (stage × (x·Ky + y)).
    pub fn grid(&self) -> &CounterGrid {
        &self.grid
    }

    /// Total update mass.
    pub fn total(&self) -> i64 {
        self.total
    }

    /// Zeroes the counters.
    pub fn clear(&mut self) {
        self.grid.clear();
        self.total = 0;
    }

    /// Memory footprint in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.grid.memory_bytes()
    }

    /// Counter memory accesses per update (one per matrix).
    pub fn accesses_per_update(&self) -> usize {
        self.config.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> TwoDSketch {
        TwoDSketch::new(TwoDConfig {
            stages: 5,
            x_buckets: 1 << 10,
            y_buckets: 64,
            seed: 1,
        })
        .unwrap()
    }

    #[test]
    fn rejects_bad_configs() {
        assert!(TwoDSketch::new(TwoDConfig {
            stages: 0,
            x_buckets: 16,
            y_buckets: 16,
            seed: 0
        })
        .is_err());
        assert!(TwoDSketch::new(TwoDConfig {
            stages: 2,
            x_buckets: 100,
            y_buckets: 64,
            seed: 0
        })
        .is_err());
    }

    #[test]
    fn flooding_classifies_concentrated() {
        let mut s = small();
        for _ in 0..1000 {
            s.update(0xF100D, 80, 1);
        }
        assert_eq!(s.classify(0xF100D, 5, 0.8), ColumnShape::Concentrated);
        // Two ports is still concentrated.
        let mut s2 = small();
        for i in 0..1000 {
            s2.update(0xF200D, if i % 2 == 0 { 80 } else { 443 }, 1);
        }
        assert_eq!(s2.classify(0xF200D, 5, 0.8), ColumnShape::Concentrated);
    }

    #[test]
    fn vertical_scan_classifies_dispersed() {
        let mut s = small();
        for port in 1..=1024u64 {
            s.update(0x5CA9, port, 1);
        }
        assert_eq!(s.classify(0x5CA9, 5, 0.8), ColumnShape::Dispersed);
    }

    #[test]
    fn classification_robust_to_background_noise() {
        let mut s = small();
        let mut rng = SplitMix64::new(9);
        for _ in 0..20_000 {
            s.update(rng.next_u64(), rng.below(65536), 1);
        }
        for _ in 0..2000 {
            s.update(0xF100D, 80, 1);
        }
        for port in 0..2000u64 {
            s.update(0x5CA9, port, 1);
        }
        assert_eq!(s.classify(0xF100D, 5, 0.8), ColumnShape::Concentrated);
        assert_eq!(s.classify(0x5CA9, 5, 0.8), ColumnShape::Dispersed);
    }

    #[test]
    fn unknown_key_is_vacuously_concentrated() {
        let s = small();
        assert_eq!(s.classify(123456, 5, 0.8), ColumnShape::Concentrated);
        assert_eq!(s.concentration(0, 123456, 5), None);
    }

    #[test]
    fn negative_cells_ignored_in_concentration() {
        let mut s = small();
        // Benign completed handshakes drive cells negative.
        for port in 0..32u64 {
            s.update(0xBEEF, port, -5);
        }
        for _ in 0..100 {
            s.update(0xBEEF, 4444, 1);
        }
        assert_eq!(s.classify(0xBEEF, 5, 0.8), ColumnShape::Concentrated);
    }

    #[test]
    fn active_y_buckets_tracks_distinct_values() {
        let mut s = small();
        for port in 0..40u64 {
            s.update(0xAA, port, 3);
        }
        let active = s.active_y_buckets(0xAA);
        assert!(
            (30..=40).contains(&active),
            "expected ~40 active buckets (minus collisions), got {active}"
        );
        let mut s2 = small();
        s2.update(0xBB, 80, 100);
        assert_eq!(s2.active_y_buckets(0xBB), 1);
    }

    #[test]
    fn column_sums_match_mass() {
        let mut s = small();
        for _ in 0..7 {
            s.update(0xC0, 80, 2);
        }
        for stage in 0..5 {
            let col = s.column(stage, 0xC0);
            assert_eq!(col.iter().sum::<i64>(), 14);
        }
    }

    #[test]
    fn combine_matches_merged() {
        let mut a = small();
        let mut b = small();
        let mut merged = small();
        let mut rng = SplitMix64::new(3);
        for i in 0..1000 {
            let x = rng.below(100);
            let y = rng.below(1000);
            if i % 2 == 0 {
                a.update(x, y, 1)
            } else {
                b.update(x, y, 1)
            }
            merged.update(x, y, 1);
        }
        let combined = TwoDSketch::combine(&[(1.0, &a), (1.0, &b)]).unwrap();
        assert_eq!(combined.grid(), merged.grid());
    }

    #[test]
    fn combine_rejects_mismatch() {
        let a = small();
        let b = TwoDSketch::new(TwoDConfig {
            stages: 5,
            x_buckets: 1 << 10,
            y_buckets: 64,
            seed: 2,
        })
        .unwrap();
        assert_eq!(
            TwoDSketch::combine(&[(1.0, &a), (1.0, &b)]).unwrap_err(),
            SketchError::CombineMismatch
        );
    }

    #[test]
    fn premixed_update_matches_plain_update() {
        let mut plain = small();
        let mut premixed = small();
        let mut rng = SplitMix64::new(23);
        for _ in 0..2000 {
            let x = rng.next_u64();
            let y = rng.below(65536);
            plain.update(x, y, 1);
            premixed.update_premixed(PairwiseHasher::premix(x), PairwiseHasher::premix(y), 1);
        }
        assert_eq!(premixed.grid(), plain.grid());
        assert_eq!(premixed.total(), plain.total());
    }

    #[test]
    fn batched_update_matches_serial_update() {
        let mut serial = small();
        let mut batched = small();
        let mut rng = SplitMix64::new(31);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut deltas = Vec::new();
        for i in 0..(2 * 64 + 9) {
            xs.push(PairwiseHasher::premix(rng.below(100)));
            ys.push(PairwiseHasher::premix(rng.below(1000)));
            deltas.push(if i == 3 {
                i64::MAX
            } else {
                (rng.below(7) as i64) - 3
            });
        }
        for ((&x, &y), &d) in xs.iter().zip(&ys).zip(&deltas) {
            serial.update_premixed(x, y, d);
        }
        batched.update_batch_premixed(&xs, &ys, &deltas);
        assert_eq!(batched.grid(), serial.grid());
        assert_eq!(batched.total(), serial.total());
    }

    #[test]
    fn paper_config_memory_and_accesses() {
        let s = TwoDSketch::new(TwoDConfig::paper(0)).unwrap();
        assert_eq!(s.accesses_per_update(), 5);
        // 5 x 2^12 x 64 x 8B = 10 MiB of i64 counters.
        assert!(s.memory_bytes() >= 5 * (1 << 12) * 64 * 8);
    }

    #[test]
    fn clear_resets() {
        let mut s = small();
        s.update(1, 2, 3);
        s.clear();
        assert_eq!(s.total(), 0);
        assert!(s.grid().is_zero());
    }
}
