//! The counter storage shared by all sketch variants.

use crate::simd;
use crate::SketchError;
use serde::{Deserialize, Serialize};

/// Elements per combine tile: 2048 × 8 B = 16 KiB, so the destination block
/// stays resident in L1 while each source block streams through exactly
/// once. Multi-source merges ([`CounterGrid::add_assign_many`], the weighted
/// [`CounterGrid::linear_combination`]) walk the grid tile-by-tile with an
/// inner loop over sources instead of striding the full grid once per term.
const COMBINE_BLOCK: usize = 2048;

/// A dense `stages × buckets` grid of signed 64-bit counters with linear
/// operations.
///
/// The grid is the *state* of a sketch; the hash structure lives in the
/// sketch types. Keeping them separate lets forecasting produce derived
/// grids (forecasts, forecast errors) that are then interpreted through the
/// same hash structure for estimation and inference.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterGrid {
    stages: usize,
    buckets: usize,
    /// Row-major: `data[stage * buckets + bucket]`.
    data: Vec<i64>,
}

impl CounterGrid {
    /// Creates a zeroed grid.
    ///
    /// # Panics
    ///
    /// Panics if `stages` or `buckets` is zero.
    pub fn new(stages: usize, buckets: usize) -> Self {
        assert!(stages > 0, "grid needs at least one stage");
        assert!(buckets > 0, "grid needs at least one bucket");
        CounterGrid {
            stages,
            buckets,
            data: vec![0; stages * buckets],
        }
    }

    /// Builds a grid from row-major counter data (`data[stage * buckets +
    /// bucket]`) — the decode half of a wire codec, so it validates instead
    /// of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::BadConfig`] if either dimension is zero or
    /// `data.len() != stages * buckets`.
    pub fn from_data(stages: usize, buckets: usize, data: Vec<i64>) -> Result<Self, SketchError> {
        if stages == 0 || buckets == 0 {
            return Err(SketchError::BadConfig(
                "grid needs at least one stage and one bucket".into(),
            ));
        }
        let expected = stages
            .checked_mul(buckets)
            .ok_or_else(|| SketchError::BadConfig("grid dimensions overflow".into()))?;
        if data.len() != expected {
            return Err(SketchError::BadConfig(format!(
                "grid data length {} != {stages} stages × {buckets} buckets",
                data.len()
            )));
        }
        Ok(CounterGrid {
            stages,
            buckets,
            data,
        })
    }

    /// Number of hash stages.
    #[inline]
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Buckets per stage.
    #[inline]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Reads one counter.
    #[inline]
    pub fn get(&self, stage: usize, bucket: usize) -> i64 {
        self.data[stage * self.buckets + bucket]
    }

    /// Adds `delta` to one counter.
    #[inline]
    pub fn add(&mut self, stage: usize, bucket: usize, delta: i64) {
        let cell = &mut self.data[stage * self.buckets + bucket];
        *cell = cell.saturating_add(delta);
    }

    /// Borrows one stage's counters.
    #[inline]
    pub fn stage(&self, stage: usize) -> &[i64] {
        &self.data[stage * self.buckets..(stage + 1) * self.buckets]
    }

    /// Mutably borrows one stage's counters (the batched-UPDATE scatter
    /// target; the sketch types own the hashing that picks the cells).
    #[inline]
    pub fn stage_mut(&mut self, stage: usize) -> &mut [i64] {
        &mut self.data[stage * self.buckets..(stage + 1) * self.buckets]
    }

    /// Sum of one stage's counters (the total update mass; identical across
    /// stages for a single sketch, used by the unbiased estimator).
    /// Wrapping mod 2⁶⁴, which is order-independent and therefore identical
    /// under every [`crate::simd`] kernel.
    pub fn stage_sum(&self, stage: usize) -> i64 {
        simd::kernel().sum_wrapping(self.stage(stage))
    }

    /// Zeroes all counters.
    pub fn clear(&mut self) {
        self.data.fill(0);
    }

    /// Returns `true` if every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }

    /// `self += other` element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::CombineMismatch`] on shape mismatch.
    pub fn add_assign(&mut self, other: &CounterGrid) -> Result<(), SketchError> {
        self.check_shape(other)?;
        simd::kernel().add_saturating(&mut self.data, &other.data);
        Ok(())
    }

    /// `self += Σ otherᵢ`, the multi-source COMBINE the parallel recorder's
    /// interval close and the aggregation tiers pay for: cache-blocked
    /// ([`COMBINE_BLOCK`]-element tiles, inner loop over sources) so the
    /// destination tile is read and written once per merge instead of once
    /// per source. Bit-identical to folding [`CounterGrid::add_assign`]
    /// over `others` in order — saturating adds to independent cells
    /// commute across tiles and per-cell source order is preserved.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::CombineMismatch`] on any shape mismatch
    /// (checked up front; `self` is untouched on error).
    pub fn add_assign_many(&mut self, others: &[&CounterGrid]) -> Result<(), SketchError> {
        for other in others {
            self.check_shape(other)?;
        }
        let kernel = simd::kernel();
        let mut start = 0;
        while start < self.data.len() {
            let end = (start + COMBINE_BLOCK).min(self.data.len());
            for other in others {
                kernel.add_saturating(&mut self.data[start..end], &other.data[start..end]);
            }
            start = end;
        }
        Ok(())
    }

    /// `self -= other` element-wise.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::CombineMismatch`] on shape mismatch.
    pub fn sub_assign(&mut self, other: &CounterGrid) -> Result<(), SketchError> {
        self.check_shape(other)?;
        simd::kernel().sub_saturating(&mut self.data, &other.data);
        Ok(())
    }

    /// Returns `self − other` as a new grid.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::CombineMismatch`] on shape mismatch.
    pub fn difference(&self, other: &CounterGrid) -> Result<CounterGrid, SketchError> {
        let mut out = self.clone();
        out.sub_assign(other)?;
        Ok(out)
    }

    /// Linear combination `Σ cᵢ · gridᵢ`.
    ///
    /// When every coefficient is exactly `1.0` — the COMBINE every
    /// aggregation path in the system actually issues — this takes the
    /// integer fast path ([`CounterGrid::add_assign_many`]): exact
    /// saturating sums, bit-identical to updating one sketch with the
    /// merged traffic, so COMBINE linearity holds even for counters beyond
    /// 2⁵³ where an f64 accumulator would round.
    ///
    /// The general weighted path accumulates `Σ cᵢ·vᵢ` in f64 per element
    /// and rounds to the nearest integer, walking the grid in
    /// [`COMBINE_BLOCK`]-element tiles (source order per element is
    /// preserved, so the tiling does not change a single bit of output).
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::CombineEmpty`] for an empty list and
    /// [`SketchError::CombineMismatch`] on shape mismatch.
    pub fn linear_combination(terms: &[(f64, &CounterGrid)]) -> Result<CounterGrid, SketchError> {
        let (_, first) = terms.first().ok_or(SketchError::CombineEmpty)?;
        for (_, g) in terms {
            first.check_shape(g)?;
        }
        if terms.iter().all(|(c, _)| *c == 1.0) {
            let mut out = terms[0].1.clone();
            let rest: Vec<&CounterGrid> = terms[1..].iter().map(|(_, g)| *g).collect();
            out.add_assign_many(&rest)?;
            return Ok(out);
        }
        let len = first.data.len();
        let mut data = vec![0i64; len];
        let mut acc = [0.0f64; COMBINE_BLOCK];
        let mut start = 0;
        while start < len {
            let end = (start + COMBINE_BLOCK).min(len);
            let block = &mut acc[..end - start];
            block.fill(0.0);
            for (c, g) in terms {
                for (a, &v) in block.iter_mut().zip(&g.data[start..end]) {
                    *a += c * v as f64;
                }
            }
            for (d, &a) in data[start..end].iter_mut().zip(block.iter()) {
                *d = a.round() as i64;
            }
            start = end;
        }
        Ok(CounterGrid {
            stages: first.stages,
            buckets: first.buckets,
            data,
        })
    }

    /// Iterates `(stage, bucket, value)` over non-zero counters.
    pub fn iter_nonzero(&self) -> impl Iterator<Item = (usize, usize, i64)> + '_ {
        let buckets = self.buckets;
        self.data.iter().enumerate().filter_map(move |(i, &v)| {
            if v != 0 {
                Some((i / buckets, i % buckets, v))
            } else {
                None
            }
        })
    }

    /// Heap + inline memory in bytes (for the Table 9 memory model).
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of::<Self>() + self.data.len() * std::mem::size_of::<i64>()
    }

    /// Fraction of non-zero buckets in one stage, in `[0, 1]`.
    pub fn stage_occupancy(&self, stage: usize) -> f64 {
        let row = self.stage(stage);
        row.iter().filter(|&&v| v != 0).count() as f64 / row.len() as f64
    }

    /// Per-stage fraction of non-zero buckets.
    ///
    /// High occupancy means most buckets carry several colliding flows and
    /// per-key estimates degrade — the primary health signal for sizing
    /// `buckets` against the traffic mix.
    pub fn occupancy(&self) -> Vec<f64> {
        (0..self.stages).map(|s| self.stage_occupancy(s)).collect()
    }

    /// Largest absolute counter value anywhere in the grid.
    pub fn max_abs(&self) -> i64 {
        self.data.iter().map(|v| v.abs()).max().unwrap_or(0)
    }

    /// Fraction of buckets whose absolute value is at least `threshold`,
    /// in `[0, 1]`. With `threshold` near the detection threshold this
    /// measures how much of the grid is "hot" — saturation close to 1.0
    /// means the sketch can no longer separate heavy keys from noise.
    pub fn saturation(&self, threshold: i64) -> f64 {
        if self.data.is_empty() || threshold <= 0 {
            return 0.0;
        }
        self.data.iter().filter(|v| v.abs() >= threshold).count() as f64 / self.data.len() as f64
    }

    fn check_shape(&self, other: &CounterGrid) -> Result<(), SketchError> {
        if self.stages != other.stages || self.buckets != other.buckets {
            Err(SketchError::CombineMismatch)
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_grid_is_zero() {
        let g = CounterGrid::new(3, 8);
        assert!(g.is_zero());
        assert_eq!(g.stages(), 3);
        assert_eq!(g.buckets(), 8);
        assert_eq!(g.get(2, 7), 0);
    }

    #[test]
    fn add_and_get() {
        let mut g = CounterGrid::new(2, 4);
        g.add(0, 1, 5);
        g.add(0, 1, -2);
        g.add(1, 3, 7);
        assert_eq!(g.get(0, 1), 3);
        assert_eq!(g.get(1, 3), 7);
        assert_eq!(g.stage_sum(0), 3);
        assert_eq!(g.stage_sum(1), 7);
    }

    #[test]
    fn linearity_add_sub() {
        let mut a = CounterGrid::new(2, 4);
        let mut b = CounterGrid::new(2, 4);
        a.add(0, 0, 10);
        b.add(0, 0, 5);
        b.add(1, 2, -3);
        let mut sum = a.clone();
        sum.add_assign(&b).unwrap();
        assert_eq!(sum.get(0, 0), 15);
        assert_eq!(sum.get(1, 2), -3);
        let diff = sum.difference(&b).unwrap();
        assert_eq!(diff, a);
        sum.sub_assign(&a).unwrap();
        assert_eq!(sum, b);
    }

    #[test]
    fn shape_mismatch_rejected() {
        let mut a = CounterGrid::new(2, 4);
        let b = CounterGrid::new(2, 8);
        assert_eq!(a.add_assign(&b), Err(SketchError::CombineMismatch));
        let c = CounterGrid::new(3, 4);
        assert_eq!(a.sub_assign(&c), Err(SketchError::CombineMismatch));
    }

    #[test]
    fn linear_combination_weights() {
        let mut a = CounterGrid::new(1, 2);
        let mut b = CounterGrid::new(1, 2);
        a.add(0, 0, 10);
        b.add(0, 0, 4);
        b.add(0, 1, 2);
        let lc = CounterGrid::linear_combination(&[(0.5, &a), (2.0, &b)]).unwrap();
        assert_eq!(lc.get(0, 0), 13); // 5 + 8
        assert_eq!(lc.get(0, 1), 4);
        assert_eq!(
            CounterGrid::linear_combination(&[]),
            Err(SketchError::CombineEmpty)
        );
    }

    #[test]
    fn linear_combination_rounds() {
        let mut a = CounterGrid::new(1, 1);
        a.add(0, 0, 3);
        let lc = CounterGrid::linear_combination(&[(0.5, &a)]).unwrap();
        assert_eq!(lc.get(0, 0), 2); // 1.5 rounds to 2
    }

    #[test]
    fn iter_nonzero_reports_coordinates() {
        let mut g = CounterGrid::new(2, 3);
        g.add(0, 2, 1);
        g.add(1, 0, -4);
        let items: Vec<_> = g.iter_nonzero().collect();
        assert_eq!(items, vec![(0, 2, 1), (1, 0, -4)]);
    }

    #[test]
    fn clear_resets() {
        let mut g = CounterGrid::new(1, 2);
        g.add(0, 0, 9);
        g.clear();
        assert!(g.is_zero());
    }

    #[test]
    fn memory_accounting_scales_with_size() {
        let small = CounterGrid::new(1, 16);
        let large = CounterGrid::new(6, 1 << 12);
        assert!(large.memory_bytes() > small.memory_bytes());
        assert!(large.memory_bytes() >= 6 * (1 << 12) * 8);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn zero_stage_panics() {
        let _ = CounterGrid::new(0, 4);
    }

    #[test]
    fn add_assign_many_matches_sequential_folds() {
        // Cover lengths straddling tile boundaries and SIMD lane counts.
        for buckets in [1usize, 3, 4, 5, 63, 64, 2047, 2048, 2049, 5000] {
            let mut grids = Vec::new();
            for g in 0..3u64 {
                let mut grid = CounterGrid::new(2, buckets);
                for i in 0..buckets {
                    let v = ((i as i64).wrapping_mul(2_654_435_761)).wrapping_add(g as i64);
                    grid.add(0, i, v);
                    grid.add(1, i, v.wrapping_neg());
                }
                grids.push(grid);
            }
            // Saturating rails must behave identically on both paths.
            grids[0].add(0, 0, i64::MAX);
            grids[1].add(0, 0, i64::MAX);
            let mut blocked = grids[0].clone();
            blocked.add_assign_many(&[&grids[1], &grids[2]]).unwrap();
            let mut folded = grids[0].clone();
            folded.add_assign(&grids[1]).unwrap();
            folded.add_assign(&grids[2]).unwrap();
            assert_eq!(blocked, folded, "buckets={buckets}");
        }
    }

    #[test]
    fn add_assign_many_rejects_any_shape_mismatch() {
        let mut a = CounterGrid::new(2, 4);
        let ok = CounterGrid::new(2, 4);
        let bad = CounterGrid::new(2, 8);
        assert_eq!(
            a.add_assign_many(&[&ok, &bad]),
            Err(SketchError::CombineMismatch)
        );
        // Checked up front: the destination must be untouched.
        assert!(a.is_zero());
        a.add_assign_many(&[]).unwrap();
        assert!(a.is_zero());
    }

    #[test]
    fn unit_coefficients_take_the_exact_integer_path() {
        // Counters beyond 2^53 lose bits in an f64 accumulator; the unit
        // fast path must sum them exactly (and saturate exactly).
        let mut a = CounterGrid::new(1, 2);
        let mut b = CounterGrid::new(1, 2);
        a.add(0, 0, (1 << 60) + 1);
        b.add(0, 0, 1);
        a.add(0, 1, i64::MAX);
        b.add(0, 1, 5);
        let lc = CounterGrid::linear_combination(&[(1.0, &a), (1.0, &b)]).unwrap();
        assert_eq!(lc.get(0, 0), (1 << 60) + 2);
        assert_eq!(lc.get(0, 1), i64::MAX);
    }

    #[test]
    fn from_data_round_trips_and_validates() {
        let mut g = CounterGrid::new(2, 3);
        g.add(0, 1, 5);
        g.add(1, 2, -7);
        let data: Vec<i64> = (0..2).flat_map(|s| g.stage(s).to_vec()).collect();
        let back = CounterGrid::from_data(2, 3, data).unwrap();
        assert_eq!(back, g);
        assert!(CounterGrid::from_data(0, 3, vec![]).is_err());
        assert!(CounterGrid::from_data(2, 3, vec![0; 5]).is_err());
    }
}
