//! The reversible sketch: UPDATE + COMBINE + INFERENCE.
//!
//! A reversible sketch (Schweller et al., IMC'04; Infocom'06) is a k-ary
//! sketch whose per-stage hash functions are *modular*
//! ([`hifind_hashing::ModularHash`]) over a *mangled* key
//! ([`hifind_hashing::Mangler`]). Because every 8-bit key word is hashed
//! independently into its own slice of the bucket index, the heavy keys can
//! be reconstructed from the heavy buckets word-by-word:
//!
//! 1. In every stage, find the buckets whose (forecast-error) value exceeds
//!    the threshold.
//! 2. For word position 0, keep the byte values whose index chunk matches a
//!    heavy bucket's chunk in at least `min_stages` stages; extend each
//!    survivor with word position 1, and so on. A candidate's compatible
//!    bucket set is tracked *per stage* so chunks must agree with a single
//!    bucket per stage, not a mixture.
//! 3. Un-mangle the reconstructed keys and verify their estimates (median
//!    over stages, plus an optional separate verification k-ary sketch)
//!    against the threshold.
//!
//! The search is output-sensitive: with balanced hash tables a candidate
//! byte survives a random stage with probability `2^-chunk_bits`, so
//! requiring agreement in `H−1` of `H` stages prunes almost everything that
//! is not actually heavy.

use crate::grid::CounterGrid;
use crate::kary::{KaryConfig, KarySketch};
use crate::simd::UPDATE_CHUNK;
use crate::{median_i64, SketchError};
use hifind_flow::keys::SketchKey;
use hifind_flow::rng::SplitMix64;
use hifind_hashing::{BucketHasher, Mangler, ModularHash, PairwiseHasher};
use serde::{Deserialize, Serialize};

/// Configuration for a [`ReversibleSketch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RsConfig {
    /// Key width in bits (multiple of 8, ≤ 64).
    pub key_bits: u32,
    /// Number of hash stages (`H`; the paper uses 6).
    pub stages: usize,
    /// Buckets per stage (`m`, a power of two whose log is divisible by
    /// `key_bits / 8`).
    pub buckets: usize,
    /// Master seed for manglers and hash tables.
    pub seed: u64,
    /// Whether to apply IP mangling (on in the paper; off only for
    /// ablation).
    pub mangle: bool,
    /// Bucket count of the attached verification k-ary sketch, or `None`
    /// to disable it (the paper uses 2^14).
    pub verifier_buckets: Option<usize>,
}

impl RsConfig {
    /// Paper configuration for 48-bit keys ({SIP,Dport} / {DIP,Dport}):
    /// 6 stages × 2^12 buckets, 2^14-bucket verifier.
    pub fn paper_48bit(seed: u64) -> Self {
        RsConfig {
            key_bits: 48,
            stages: 6,
            buckets: 1 << 12,
            seed,
            mangle: true,
            verifier_buckets: Some(1 << 14),
        }
    }

    /// Paper configuration for 64-bit keys ({SIP,DIP}): 6 stages × 2^16
    /// buckets, 2^14-bucket verifier.
    pub fn paper_64bit(seed: u64) -> Self {
        RsConfig {
            key_bits: 64,
            stages: 6,
            buckets: 1 << 16,
            seed,
            mangle: true,
            verifier_buckets: Some(1 << 14),
        }
    }
}

/// Tuning knobs for [`ReversibleSketch::infer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferOptions {
    /// How many of the `H` stages a candidate may miss (have no compatible
    /// heavy bucket in) and still survive. `1` tolerates a single stage
    /// where the true key was pushed below threshold by colliding negative
    /// mass; `0` requires perfect agreement.
    pub miss_stages: usize,
    /// Hard cap on simultaneously-live candidates; the search reports
    /// truncation instead of exploding when an adversary (or a pathological
    /// threshold) makes everything heavy. The cap also bounds work: each
    /// word position examines at most `256 × max_candidates` extensions.
    pub max_candidates: usize,
    /// Whether to require the verification sketch (if the sketch has one)
    /// to confirm each output key's estimate.
    pub use_verifier: bool,
}

impl Default for InferOptions {
    fn default() -> Self {
        InferOptions {
            miss_stages: 1,
            max_candidates: 1 << 19,
            use_verifier: true,
        }
    }
}

/// A key recovered by inference, with its estimated value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeavyKey {
    /// The reconstructed (un-mangled) key, packed as by
    /// [`SketchKey::to_u64`].
    pub key: u64,
    /// The unbiased median estimate of the key's value in the queried grid.
    pub estimate: i64,
}

/// Search statistics from one inference run.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferStats {
    /// Heavy buckets found per stage.
    pub heavy_buckets: Vec<usize>,
    /// Total candidate extensions examined.
    pub candidates_explored: u64,
    /// Whether the candidate cap was hit (results may be incomplete).
    pub truncated: bool,
    /// Reconstructed keys discarded because their estimate fell below the
    /// threshold.
    pub rejected_by_estimate: usize,
    /// Reconstructed keys discarded by the verification sketch.
    pub rejected_by_verifier: usize,
}

/// The outcome of [`ReversibleSketch::infer`].
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferenceResult {
    /// Recovered heavy keys, sorted by descending estimate.
    pub keys: Vec<HeavyKey>,
    /// Search statistics.
    pub stats: InferStats,
}

impl InferenceResult {
    /// Decodes the recovered keys into a typed flow key.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `K::BITS` disagrees with the sketch width
    /// the result came from (the raw keys would be misinterpreted).
    pub fn typed<K: SketchKey>(&self) -> Vec<(K, i64)> {
        self.keys
            .iter()
            .map(|hk| (K::from_u64(hk.key), hk.estimate))
            .collect()
    }
}

/// A reversible sketch over packed keys of a fixed bit width.
///
/// See the [module documentation](self) for the algorithm; see
/// [`RsConfig::paper_48bit`] / [`RsConfig::paper_64bit`] for the paper's
/// parameterizations.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ReversibleSketch {
    config: RsConfig,
    mangler: Mangler,
    hashes: Vec<ModularHash>,
    grid: CounterGrid,
    verifier: Option<KarySketch>,
    total: i64,
}

impl ReversibleSketch {
    /// Creates an empty reversible sketch.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::BadConfig`] if the key width / bucket count
    /// combination is not modular-hashable (see
    /// [`hifind_hashing::ModularHashError`]) or `stages == 0`.
    pub fn new(config: RsConfig) -> Result<Self, SketchError> {
        if config.stages == 0 {
            return Err(SketchError::BadConfig("stages must be positive".into()));
        }
        let mut rng = SplitMix64::new(config.seed);
        let mangler = if config.mangle {
            Mangler::new(&mut rng.fork(0x4D41_4E47), config.key_bits)
        } else {
            Mangler::identity(config.key_bits)
        };
        let hashes = (0..config.stages)
            .map(|i| {
                ModularHash::new(&mut rng.fork(i as u64 + 1), config.key_bits, config.buckets)
                    .map_err(|e| SketchError::BadConfig(e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let verifier = match config.verifier_buckets {
            Some(buckets) => Some(KarySketch::new(KaryConfig {
                stages: config.stages,
                buckets,
                seed: rng.fork(0xBEEF).next_u64(),
            })?),
            None => None,
        };
        Ok(ReversibleSketch {
            config,
            mangler,
            hashes,
            grid: CounterGrid::new(config.stages, config.buckets),
            verifier,
            total: 0,
        })
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> &RsConfig {
        &self.config
    }

    /// UPDATE: adds `delta` under the packed key.
    ///
    /// # Panics
    ///
    /// Debug-panics if `key` has bits above the configured width.
    #[inline]
    pub fn update(&mut self, key: u64, delta: i64) {
        self.update_premixed(key, PairwiseHasher::premix(key), delta);
    }

    /// UPDATE with the key's [`PairwiseHasher::premix`] already computed
    /// (it only feeds the verification sketch; the main grid hashes the
    /// *mangled* key, which is private to this sketch's seed). The mangled
    /// key's byte decomposition is computed once here and shared across
    /// all modular stages. Identical counters to [`ReversibleSketch::update`].
    ///
    /// # Panics
    ///
    /// Debug-panics if `key` has bits above the configured width.
    #[inline]
    pub fn update_premixed(&mut self, key: u64, premixed: u64, delta: i64) {
        let mangled_bytes = self.mangler.mangle(key).to_le_bytes();
        for (stage, h) in self.hashes.iter().enumerate() {
            self.grid
                .add(stage, h.bucket_of_bytes(&mangled_bytes), delta);
        }
        if let Some(v) = &mut self.verifier {
            v.update_premixed(premixed, delta);
        }
        self.total = self.total.saturating_add(delta);
    }

    /// Batched UPDATE: applies `deltas[i]` under `keys[i]` (with
    /// `premixed[i]` its [`PairwiseHasher::premix`], feeding the verifier),
    /// bit-identical to calling [`ReversibleSketch::update_premixed`] once
    /// per element in order.
    ///
    /// The modular stage hashes are byte-table lookups that live in L1, so
    /// unlike the k-ary/2D batches there is no SIMD hash finish here; the
    /// win is memory-level parallelism. Each chunk makes two passes: the
    /// first mangles the keys and resolves every stage's bucket indices,
    /// prefetching all of the touched counters
    /// ([`crate::simd::SketchKernel::prefetch_buckets`]); the second
    /// scatters the saturating adds stage-major with the misses of all
    /// stages already streaming in — on the paper's 2^16-bucket 64-bit
    /// sketch (a 3 MiB grid) this, not the hashing, is the entire cost.
    /// The verifier (if any) consumes the premix batch through the k-ary
    /// SIMD path.
    ///
    /// # Panics
    ///
    /// Debug-panics if any key has bits above the configured width.
    pub fn update_batch(&mut self, keys: &[u64], premixed: &[u64], deltas: &[i64]) {
        debug_assert_eq!(keys.len(), premixed.len());
        debug_assert_eq!(keys.len(), deltas.len());
        let n = keys.len().min(premixed.len()).min(deltas.len());
        let kernel = crate::simd::kernel();
        let stages = self.hashes.len();
        let mut mangled = [[0u8; 8]; UPDATE_CHUNK];
        let mut idx = vec![0u64; stages * UPDATE_CHUNK];
        let mut start = 0;
        while start < n {
            let end = (start + UPDATE_CHUNK).min(n);
            let chunk = &keys[start..end];
            let del = &deltas[start..end];
            for (slot, &key) in mangled.iter_mut().zip(chunk) {
                *slot = self.mangler.mangle(key).to_le_bytes();
            }
            for (stage, h) in self.hashes.iter().enumerate() {
                let buf = &mut idx[stage * UPDATE_CHUNK..][..chunk.len()];
                for (slot, bytes) in buf.iter_mut().zip(&mangled[..chunk.len()]) {
                    *slot = h.bucket_of_bytes(bytes) as u64;
                }
                kernel.prefetch_buckets(self.grid.stage(stage), buf);
            }
            for stage in 0..stages {
                let row = self.grid.stage_mut(stage);
                for (&bucket, &d) in idx[stage * UPDATE_CHUNK..][..chunk.len()].iter().zip(del) {
                    let cell = &mut row[bucket as usize];
                    *cell = cell.saturating_add(d);
                }
            }
            if let Some(v) = &mut self.verifier {
                v.update_batch_premixed(&premixed[start..end], del);
            }
            for &d in del {
                self.total = self.total.saturating_add(d);
            }
            start = end;
        }
    }

    /// UPDATE with a typed flow key.
    ///
    /// # Panics
    ///
    /// Panics if `K::BITS` differs from the configured key width.
    #[inline]
    pub fn update_key<K: SketchKey>(&mut self, key: &K, delta: i64) {
        assert_eq!(
            K::BITS,
            self.config.key_bits,
            "flow key width does not match sketch"
        );
        self.update(key.to_u64(), delta);
    }

    /// ESTIMATE from the sketch's own counters.
    pub fn estimate(&self, key: u64) -> i64 {
        self.estimate_grid(&self.grid, key)
    }

    /// ESTIMATE against an external grid (e.g. a forecast-error grid)
    /// interpreted through this sketch's hash functions: the median over
    /// stages of the unbiased per-stage estimator.
    pub fn estimate_grid(&self, grid: &CounterGrid, key: u64) -> i64 {
        let sums: Vec<i64> = (0..grid.stages()).map(|s| grid.stage_sum(s)).collect();
        self.estimate_grid_with_sums(grid, key, &sums)
    }

    /// [`ReversibleSketch::estimate_grid`] with the per-stage sums
    /// precomputed; bit-identical, and what inference uses so that
    /// estimating hundreds of candidate keys walks the grid once instead
    /// of once per candidate.
    fn estimate_grid_with_sums(&self, grid: &CounterGrid, key: u64, sums: &[i64]) -> i64 {
        debug_assert_eq!(grid.stages(), self.config.stages);
        debug_assert_eq!(grid.buckets(), self.config.buckets);
        debug_assert_eq!(sums.len(), self.config.stages);
        let mangled = self.mangler.mangle(key);
        let m = self.config.buckets as f64;
        let mut estimates: Vec<i64> = Vec::with_capacity(self.config.stages);
        for ((stage, h), &stage_sum) in self.hashes.iter().enumerate().zip(sums) {
            let v = grid.get(stage, h.bucket(mangled)) as f64;
            let sum = stage_sum as f64;
            estimates.push(((v - sum / m) / (1.0 - 1.0 / m)).round() as i64);
        }
        median_i64(&mut estimates)
    }

    /// INFERENCE over the sketch's own counters: recover all keys whose
    /// value is at least `threshold`.
    pub fn infer(&self, threshold: i64, opts: &InferOptions) -> InferenceResult {
        let verifier_grid = self.verifier.as_ref().map(|v| v.grid().clone());
        self.infer_grid(&self.grid, verifier_grid.as_ref(), threshold, opts)
    }

    /// INFERENCE over an external grid (typically the forecast-error grid)
    /// with an optional matching external verifier grid.
    ///
    /// `verifier_grid`, when given, must have the shape of this sketch's
    /// verification sketch; keys whose verifier estimate falls below the
    /// threshold are dropped and counted in
    /// [`InferStats::rejected_by_verifier`].
    pub fn infer_grid(
        &self,
        grid: &CounterGrid,
        verifier_grid: Option<&CounterGrid>,
        threshold: i64,
        opts: &InferOptions,
    ) -> InferenceResult {
        debug_assert_eq!(grid.stages(), self.config.stages);
        debug_assert_eq!(grid.buckets(), self.config.buckets);
        assert!(threshold > 0, "inference threshold must be positive");
        let stages = self.config.stages;
        let min_stages = stages.saturating_sub(opts.miss_stages).max(1);
        let mut stats = InferStats::default();

        // 1. Heavy buckets per stage — the full-grid threshold scan, done
        // by the SIMD kernel (4 lanes per compare on AVX2, ascending
        // indices either way).
        let kernel = crate::simd::kernel();
        let heavy: Vec<Vec<u32>> = (0..stages)
            .map(|s| {
                let mut out = Vec::new();
                kernel.heavy_buckets(grid.stage(s), threshold, &mut out);
                out
            })
            .collect();
        stats.heavy_buckets = heavy.iter().map(Vec::len).collect();
        let nonempty_stages = heavy.iter().filter(|h| !h.is_empty()).count();
        if nonempty_stages < min_stages {
            return InferenceResult {
                keys: Vec::new(),
                stats,
            };
        }

        // 2. Per stage / word / chunk: bitset of compatible heavy buckets.
        let words = (self.config.key_bits / 8) as usize;
        let chunk_bits = self.hashes[0].chunk_bits();
        let chunk_count = 1usize << chunk_bits;
        // masks[stage][word][chunk]
        let masks: Vec<Vec<Vec<BitSet>>> = (0..stages)
            .map(|s| {
                let hb = &heavy[s];
                (0..words as u32)
                    .map(|w| {
                        let mut per_chunk = vec![BitSet::empty(hb.len()); chunk_count];
                        for (i, &b) in hb.iter().enumerate() {
                            let chunk = self.hashes[s].index_chunk(b as usize, w);
                            per_chunk[chunk as usize].set(i);
                        }
                        per_chunk
                    })
                    .collect()
            })
            .collect();

        // 3. Word-by-word candidate extension.
        let mut candidates = vec![Candidate {
            key: 0,
            masks: heavy.iter().map(|hb| BitSet::full(hb.len())).collect(),
            alive: nonempty_stages,
        }];
        // Reusable scratch masks: the hot loop allocates only for
        // surviving extensions, and a per-word flattened chunk table keeps
        // the stage hash lookups out of the inner loop.
        let mut scratch: Vec<BitSet> = heavy.iter().map(|hb| BitSet::empty(hb.len())).collect();
        let allowed_dead = stages - min_stages;
        // `word` indexes masks[s][word] *and* feeds the hash chunk lookup,
        // so a range loop reads better than iterating one of them.
        #[allow(clippy::needless_range_loop)]
        for word in 0..words {
            let chunk_of: Vec<[u16; 256]> = (0..stages)
                .map(|s| {
                    let mut row = [0u16; 256];
                    for (b, slot) in row.iter_mut().enumerate() {
                        *slot = self.hashes[s].chunk(word as u32, b as u8);
                    }
                    row
                })
                .collect();
            let mut next = Vec::new();
            'outer: for cand in &candidates {
                for byte in 0usize..256 {
                    stats.candidates_explored = stats.candidates_explored.saturating_add(1);
                    let mut alive = 0usize;
                    let mut dead = 0usize;
                    for s in 0..stages {
                        let m = &masks[s][word][chunk_of[s][byte] as usize];
                        if cand.masks[s].and_into(m, &mut scratch[s]) {
                            alive = alive.saturating_add(1);
                        } else {
                            dead = dead.saturating_add(1);
                            if dead > allowed_dead {
                                // Cannot reach min_stages any more.
                                break;
                            }
                        }
                    }
                    if alive >= min_stages {
                        next.push(Candidate {
                            key: cand.key | (byte as u64) << (8 * word),
                            masks: scratch.clone(),
                            alive,
                        });
                        if next.len() > opts.max_candidates {
                            stats.truncated = true;
                            // Under adversarial load everything looks
                            // heavy; prefer candidates alive in *every*
                            // stage — true keys are, while spurious byte
                            // combinations usually sit at exactly
                            // `min_stages`.
                            next.retain(|c| c.alive == stages);
                            if next.len() > opts.max_candidates {
                                next.truncate(opts.max_candidates);
                                break 'outer;
                            }
                        }
                    }
                }
            }
            candidates = next;
            if candidates.is_empty() {
                break;
            }
        }

        // 4. Un-mangle, estimate, verify, sort. The per-stage sums of both
        // grids are identical for every candidate, so compute each set
        // once instead of re-walking the grids per candidate.
        let grid_sums: Vec<i64> = (0..stages).map(|s| grid.stage_sum(s)).collect();
        let verifier_sums: Option<Vec<i64>> = match (opts.use_verifier, &self.verifier) {
            (true, Some(v)) => verifier_grid.map(|vg| v.stage_sums(vg)),
            _ => None,
        };
        let mut keys = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for cand in candidates {
            let key = self.mangler.unmangle(cand.key);
            if !seen.insert(key) {
                continue;
            }
            let estimate = self.estimate_grid_with_sums(grid, key, &grid_sums);
            if estimate < threshold {
                stats.rejected_by_estimate = stats.rejected_by_estimate.saturating_add(1);
                continue;
            }
            if opts.use_verifier {
                if let (Some(v), Some(vg), Some(vsums)) =
                    (&self.verifier, verifier_grid, &verifier_sums)
                {
                    if v.estimate_grid_with_sums(vg, key, vsums) < threshold {
                        stats.rejected_by_verifier = stats.rejected_by_verifier.saturating_add(1);
                        continue;
                    }
                }
            }
            keys.push(HeavyKey { key, estimate });
        }
        keys.sort_by(|a, b| b.estimate.cmp(&a.estimate).then(a.key.cmp(&b.key)));
        InferenceResult { keys, stats }
    }

    /// COMBINE: linear combination of reversible sketches sharing a
    /// configuration (verifiers are combined too).
    ///
    /// # Errors
    ///
    /// [`SketchError::CombineMismatch`] on configuration/seed mismatch;
    /// [`SketchError::CombineEmpty`] for an empty list.
    pub fn combine(terms: &[(f64, &ReversibleSketch)]) -> Result<ReversibleSketch, SketchError> {
        let (_, first) = terms.first().ok_or(SketchError::CombineEmpty)?;
        for (_, s) in terms {
            if s.config != first.config {
                return Err(SketchError::CombineMismatch);
            }
        }
        let grids: Vec<(f64, &CounterGrid)> = terms.iter().map(|(c, s)| (*c, &s.grid)).collect();
        let grid = CounterGrid::linear_combination(&grids)?;
        let verifier = match &first.verifier {
            Some(_) => {
                let mut vs: Vec<(f64, &KarySketch)> = Vec::with_capacity(terms.len());
                for (c, s) in terms {
                    // Equal configs imply equal verifier presence; treat
                    // any divergence as a mismatch, never a panic.
                    let Some(v) = s.verifier.as_ref() else {
                        return Err(SketchError::CombineMismatch);
                    };
                    vs.push((*c, v));
                }
                Some(KarySketch::combine(&vs)?)
            }
            None => None,
        };
        let total = terms
            .iter()
            .map(|(c, s)| c * s.total as f64)
            .sum::<f64>()
            .round() as i64;
        Ok(ReversibleSketch {
            config: first.config,
            mangler: first.mangler,
            hashes: first.hashes.clone(),
            grid,
            verifier,
            total,
        })
    }

    /// Borrows the main counter grid.
    pub fn grid(&self) -> &CounterGrid {
        &self.grid
    }

    /// Borrows the verification sketch, if configured.
    pub fn verifier(&self) -> Option<&KarySketch> {
        self.verifier.as_ref()
    }

    /// Total update mass.
    pub fn total(&self) -> i64 {
        self.total
    }

    /// Zeroes all counters, keeping hash structure.
    pub fn clear(&mut self) {
        self.grid.clear();
        if let Some(v) = &mut self.verifier {
            v.clear();
        }
        self.total = 0;
    }

    /// Memory footprint in bytes (grid + verifier grid), for Table 9.
    pub fn memory_bytes(&self) -> usize {
        self.grid.memory_bytes()
            + self
                .verifier
                .as_ref()
                .map(|v| v.memory_bytes())
                .unwrap_or(0)
    }

    /// Counter memory accesses per update: one per stage, plus the
    /// verification sketch's stages. The paper reports 15 for its 48-bit
    /// and 16 for its 64-bit hardware configuration; the software
    /// equivalent here is `2 × stages` when a verifier is attached.
    pub fn accesses_per_update(&self) -> usize {
        self.config.stages
            + self
                .verifier
                .as_ref()
                .map(|v| v.accesses_per_update())
                .unwrap_or(0)
    }
}

#[derive(Clone, Debug)]
struct Candidate {
    key: u64,
    masks: Vec<BitSet>,
    /// Stages whose compatible-bucket mask is still non-empty.
    alive: usize,
}

/// Minimal fixed-capacity bitset for tracking compatible heavy buckets.
#[derive(Clone, Debug, PartialEq, Eq)]
struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    fn empty(bits: usize) -> Self {
        BitSet {
            words: vec![0; bits.div_ceil(64)],
        }
    }

    fn full(bits: usize) -> Self {
        let mut words = vec![u64::MAX; bits.div_ceil(64)];
        let rem = bits % 64;
        if rem != 0 {
            if let Some(last) = words.last_mut() {
                *last = (1u64 << rem) - 1;
            }
        }
        BitSet { words }
    }

    #[inline]
    fn set(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Allocating variant kept for tests; the hot path uses
    /// [`BitSet::and_into`].
    #[cfg(test)]
    #[inline]
    fn and(&self, other: &BitSet) -> BitSet {
        BitSet {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
        }
    }

    /// Writes `self & other` into `out` (same capacity) and returns
    /// whether the result is non-empty. Allocation-free hot-loop variant
    /// of [`BitSet::and`].
    #[inline]
    fn and_into(&self, other: &BitSet, out: &mut BitSet) -> bool {
        let mut any = 0u64;
        for ((a, b), o) in self.words.iter().zip(&other.words).zip(&mut out.words) {
            *o = a & b;
            any |= *o;
        }
        any != 0
    }

    #[cfg(test)]
    #[inline]
    fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::keys::{SipDip, SipDport};

    fn small_cfg(seed: u64) -> RsConfig {
        RsConfig {
            key_bits: 48,
            stages: 6,
            buckets: 1 << 12,
            seed,
            mangle: true,
            verifier_buckets: Some(1 << 12),
        }
    }

    #[test]
    fn rejects_invalid_configs() {
        let mut cfg = small_cfg(0);
        cfg.stages = 0;
        assert!(ReversibleSketch::new(cfg).is_err());
        let mut cfg = small_cfg(0);
        cfg.key_bits = 13;
        assert!(ReversibleSketch::new(cfg).is_err());
        let mut cfg = small_cfg(0);
        cfg.buckets = 1 << 13; // 13 bits not divisible by 6 words
        assert!(ReversibleSketch::new(cfg).is_err());
    }

    #[test]
    fn recovers_single_heavy_key() {
        let mut rs = ReversibleSketch::new(small_cfg(1)).unwrap();
        rs.update(0x0102_0304_0506, 1000);
        let result = rs.infer(500, &InferOptions::default());
        assert_eq!(result.keys.len(), 1);
        assert_eq!(result.keys[0].key, 0x0102_0304_0506);
        assert!(result.keys[0].estimate >= 990);
    }

    #[test]
    fn recovers_heavy_keys_among_noise() {
        let mut rs = ReversibleSketch::new(small_cfg(2)).unwrap();
        let heavy = [0xAA01_0203_0405u64, 0x0BB0_0102_0304, 0x00CC_0099_1122];
        for (i, &k) in heavy.iter().enumerate() {
            rs.update(k, 500 + 100 * i as i64);
        }
        let mut rng = SplitMix64::new(77);
        for _ in 0..20_000 {
            rs.update(rng.next_u64() & ((1 << 48) - 1), 1);
        }
        let result = rs.infer(300, &InferOptions::default());
        for &k in &heavy {
            assert!(
                result.keys.iter().any(|hk| hk.key == k),
                "missing key {k:#x}; got {:?}",
                result.keys
            );
        }
        // No more than a couple of false keys.
        assert!(result.keys.len() <= heavy.len() + 2);
    }

    #[test]
    fn no_heavy_keys_yields_empty() {
        let mut rs = ReversibleSketch::new(small_cfg(3)).unwrap();
        let mut rng = SplitMix64::new(5);
        for _ in 0..5000 {
            rs.update(rng.next_u64() & ((1 << 48) - 1), 1);
        }
        let result = rs.infer(100, &InferOptions::default());
        assert!(result.keys.is_empty(), "got {:?}", result.keys);
    }

    #[test]
    fn negative_mass_does_not_mask_heavy_key() {
        // The #SYN − #SYN/ACK value goes negative for well-behaved flows;
        // inference must still find attack keys.
        let mut rs = ReversibleSketch::new(small_cfg(4)).unwrap();
        rs.update(0x0666_0000_0050, 800); // attack
        let mut rng = SplitMix64::new(6);
        for _ in 0..2000 {
            // benign flows oscillate around 0
            let k = rng.next_u64() & ((1 << 48) - 1);
            rs.update(k, 1);
            rs.update(k, -1);
        }
        let result = rs.infer(400, &InferOptions::default());
        assert!(result.keys.iter().any(|hk| hk.key == 0x0666_0000_0050));
    }

    #[test]
    fn typed_inference_round_trips_flow_keys() {
        let mut rs = ReversibleSketch::new(small_cfg(7)).unwrap();
        let key = SipDport::new([204, 10, 110, 38].into(), 1433);
        rs.update_key(&key, 900);
        let result = rs.infer(100, &InferOptions::default());
        let typed = result.typed::<SipDport>();
        assert_eq!(typed.len(), 1);
        assert_eq!(typed[0].0, key);
    }

    #[test]
    fn sixty_four_bit_config_works() {
        let cfg = RsConfig {
            key_bits: 64,
            stages: 6,
            buckets: 1 << 16,
            seed: 11,
            mangle: true,
            verifier_buckets: Some(1 << 12),
        };
        let mut rs = ReversibleSketch::new(cfg).unwrap();
        let key = SipDip::new([1, 2, 3, 4].into(), [5, 6, 7, 8].into());
        rs.update_key(&key, 700);
        let mut rng = SplitMix64::new(12);
        for _ in 0..10_000 {
            rs.update(rng.next_u64(), 1);
        }
        let result = rs.infer(300, &InferOptions::default());
        assert!(result.typed::<SipDip>().iter().any(|(k, _)| *k == key));
    }

    #[test]
    #[should_panic(expected = "flow key width")]
    fn update_key_rejects_wrong_width() {
        let mut rs = ReversibleSketch::new(small_cfg(8)).unwrap();
        let key = SipDip::new([1, 1, 1, 1].into(), [2, 2, 2, 2].into()); // 64-bit
        rs.update_key(&key, 1);
    }

    #[test]
    fn premixed_update_matches_plain_update() {
        // Main grid *and* verifier grid must be bit-identical across the
        // two update paths for every verifier configuration.
        for verifier_buckets in [Some(1 << 12), None] {
            let mut cfg = small_cfg(71);
            cfg.verifier_buckets = verifier_buckets;
            let mut plain = ReversibleSketch::new(cfg).unwrap();
            let mut premixed = ReversibleSketch::new(cfg).unwrap();
            let mut rng = SplitMix64::new(72);
            for _ in 0..2000 {
                let k = rng.next_u64() & ((1 << 48) - 1);
                let v = (rng.below(7) as i64) - 3;
                plain.update(k, v);
                premixed.update_premixed(k, PairwiseHasher::premix(k), v);
            }
            assert_eq!(premixed.grid(), plain.grid());
            assert_eq!(
                premixed.verifier().map(|v| v.grid()),
                plain.verifier().map(|v| v.grid())
            );
            assert_eq!(premixed.total(), plain.total());
        }
    }

    #[test]
    fn batched_update_matches_serial_update() {
        // Main grid, verifier grid, and total must be bit-identical to the
        // serial path, with and without a verifier, on a batch length that
        // is not a multiple of the chunk size.
        for verifier_buckets in [Some(1 << 12), None] {
            let mut cfg = small_cfg(81);
            cfg.verifier_buckets = verifier_buckets;
            let mut serial = ReversibleSketch::new(cfg).unwrap();
            let mut batched = ReversibleSketch::new(cfg).unwrap();
            let mut rng = SplitMix64::new(82);
            let mut keys = Vec::new();
            let mut premixed = Vec::new();
            let mut deltas = Vec::new();
            for _ in 0..(64 + 21) {
                let k = rng.next_u64() & ((1 << 48) - 1);
                keys.push(k);
                premixed.push(PairwiseHasher::premix(k));
                deltas.push((rng.below(9) as i64) - 4);
            }
            for ((&k, &p), &d) in keys.iter().zip(&premixed).zip(&deltas) {
                serial.update_premixed(k, p, d);
            }
            batched.update_batch(&keys, &premixed, &deltas);
            assert_eq!(batched.grid(), serial.grid());
            assert_eq!(
                batched.verifier().map(|v| v.grid()),
                serial.verifier().map(|v| v.grid())
            );
            assert_eq!(batched.total(), serial.total());
        }
    }

    #[test]
    fn combine_equals_merged_stream() {
        let mut a = ReversibleSketch::new(small_cfg(9)).unwrap();
        let mut b = ReversibleSketch::new(small_cfg(9)).unwrap();
        let mut merged = ReversibleSketch::new(small_cfg(9)).unwrap();
        let mut rng = SplitMix64::new(13);
        for i in 0..2000 {
            let k = rng.next_u64() & ((1 << 48) - 1);
            let v = rng.below(5) as i64;
            if i % 2 == 0 {
                a.update(k, v)
            } else {
                b.update(k, v)
            }
            merged.update(k, v);
        }
        let combined = ReversibleSketch::combine(&[(1.0, &a), (1.0, &b)]).unwrap();
        assert_eq!(combined.grid(), merged.grid());
        assert_eq!(combined.total(), merged.total());
        // And inference on the combination behaves like on the merged one.
        a.update(0x0042_0042_0042, 600);
        let combined = ReversibleSketch::combine(&[(1.0, &a), (1.0, &b)]).unwrap();
        let result = combined.infer(500, &InferOptions::default());
        assert!(result.keys.iter().any(|hk| hk.key == 0x0042_0042_0042));
    }

    #[test]
    fn combine_rejects_mismatch() {
        let a = ReversibleSketch::new(small_cfg(1)).unwrap();
        let b = ReversibleSketch::new(small_cfg(2)).unwrap();
        assert_eq!(
            ReversibleSketch::combine(&[(1.0, &a), (1.0, &b)]).unwrap_err(),
            SketchError::CombineMismatch
        );
        assert_eq!(
            ReversibleSketch::combine(&[]).unwrap_err(),
            SketchError::CombineEmpty
        );
    }

    #[test]
    fn infer_grid_on_difference_detects_change() {
        // Simulates change detection: previous interval vs current.
        let mut prev = ReversibleSketch::new(small_cfg(20)).unwrap();
        let mut curr = ReversibleSketch::new(small_cfg(20)).unwrap();
        let mut rng = SplitMix64::new(21);
        for _ in 0..3000 {
            let k = rng.next_u64() & ((1 << 48) - 1);
            prev.update(k, 1);
            curr.update(k, 1);
        }
        // New heavy key only in the current interval.
        curr.update(0x0777_0000_1389, 500);
        let error = curr.grid().difference(prev.grid()).unwrap();
        let verr = curr
            .verifier()
            .unwrap()
            .grid()
            .difference(prev.verifier().unwrap().grid())
            .unwrap();
        let result = curr.infer_grid(&error, Some(&verr), 250, &InferOptions::default());
        assert_eq!(result.keys.len(), 1);
        assert_eq!(result.keys[0].key, 0x0777_0000_1389);
    }

    #[test]
    fn truncation_reported_under_candidate_explosion() {
        let mut rs = ReversibleSketch::new(small_cfg(30)).unwrap();
        let mut rng = SplitMix64::new(31);
        // Make very many keys heavy.
        for _ in 0..3000 {
            rs.update(rng.next_u64() & ((1 << 48) - 1), 100);
        }
        let opts = InferOptions {
            max_candidates: 64,
            ..InferOptions::default()
        };
        let result = rs.infer(50, &opts);
        assert!(result.stats.truncated);
    }

    #[test]
    fn mangling_ablation_still_infers() {
        let mut cfg = small_cfg(40);
        cfg.mangle = false;
        let mut rs = ReversibleSketch::new(cfg).unwrap();
        rs.update(0x0101_0101_0101, 400);
        let result = rs.infer(200, &InferOptions::default());
        assert!(result.keys.iter().any(|hk| hk.key == 0x0101_0101_0101));
    }

    #[test]
    fn clear_resets() {
        let mut rs = ReversibleSketch::new(small_cfg(50)).unwrap();
        rs.update(1, 100);
        rs.clear();
        assert_eq!(rs.total(), 0);
        assert!(rs.grid().is_zero());
        assert!(rs.infer(50, &InferOptions::default()).keys.is_empty());
    }

    #[test]
    fn memory_matches_paper_scale() {
        // 48-bit paper config: 6 stages x 2^12 buckets x 8B = 192 KiB main
        // grid (the paper uses narrower hardware counters; Table 9's model
        // accounts for that separately).
        let rs = ReversibleSketch::new(RsConfig::paper_48bit(0)).unwrap();
        let main = 6 * (1 << 12) * 8;
        assert!(rs.grid().memory_bytes() >= main);
        assert!(rs.memory_bytes() >= main);
    }

    #[test]
    fn stats_track_search_effort() {
        let mut rs = ReversibleSketch::new(small_cfg(60)).unwrap();
        rs.update(0x00AB_CDEF_0123, 300);
        let result = rs.infer(100, &InferOptions::default());
        assert_eq!(result.stats.heavy_buckets.len(), 6);
        assert!(result.stats.candidates_explored > 0);
        assert!(!result.stats.truncated);
    }

    #[test]
    fn bitset_basics() {
        let mut a = BitSet::empty(70);
        assert!(a.is_empty());
        a.set(0);
        a.set(69);
        let full = BitSet::full(70);
        assert_eq!(a.and(&full), a);
        let b = BitSet::empty(70);
        assert!(a.and(&b).is_empty());
        assert!(!BitSet::full(1).is_empty());
        assert!(BitSet::full(0).is_empty());
    }
}
