//! Runtime-dispatched SIMD kernels for the sketch hot loops.
//!
//! The four loops every packet (or every interval close) pays for —
//! bucket-index finishing for batched UPDATE, per-stage sums for ESTIMATE,
//! heavy-bucket threshold scans for INFERENCE, and element-wise saturating
//! merges for COMBINE — are expressed once as the [`SketchKernel`] trait and
//! implemented twice: a portable scalar kernel and an AVX2 kernel built from
//! `core::arch` intrinsics.
//!
//! # Dispatch model
//!
//! The ISA is picked **once per process**: the first call to [`kernel`]
//! consults [`best_isa`] (the `HIFIND_FORCE_KERNEL` env override if valid,
//! otherwise CPUID via [`detect_isa`]) and caches the choice in an atomic.
//! Every hot loop then loads one `&'static dyn SketchKernel` and stays on it
//! for the life of the process, so there is no per-packet branching on CPU
//! features. Benchmarks flip kernels explicitly with [`set_kernel`].
//!
//! # Bit-identity contract
//!
//! Every kernel method must produce **bit-identical** results across ISAs:
//!
//! * Integer methods use saturating (`add/sub`) or wrapping (`sum`)
//!   semantics, which are associative enough to vectorize directly — a
//!   wrapping sum is order-independent mod 2⁶⁴, and the saturating merges
//!   preserve element order because each element is independent.
//! * Floating-point reductions ([`SketchKernel::row_moments`]) are **not**
//!   reassociation-safe, so the contract fixes the association: element `i`
//!   accumulates into lane `i mod 4`, and lanes combine as
//!   `(l0 + l1) + (l2 + l3)`. The scalar kernel emulates the same four
//!   lanes, so scalar and AVX2 agree to the last bit.
//!
//! The equivalence proptests in `tests/kernel_equivalence.rs` hold both
//! implementations to this contract, including non-lane-multiple lengths,
//! empty rows, and `i64::MIN`/`i64::MAX` boundary values.

use std::sync::atomic::{AtomicU8, Ordering};

mod scalar;

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2;

pub use scalar::ScalarKernel;

/// Instruction-set architectures a kernel can target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Portable scalar Rust — always available.
    Scalar,
    /// AVX2 (256-bit integer SIMD, x86-64) — requires runtime CPUID support.
    Avx2,
}

impl Isa {
    /// Stable lowercase name (matches the `HIFIND_FORCE_KERNEL` values).
    pub fn name(self) -> &'static str {
        match self {
            Isa::Scalar => "scalar",
            Isa::Avx2 => "avx2",
        }
    }

    /// Non-zero tag for the dispatch cache (0 means "not yet selected").
    fn tag(self) -> u8 {
        match self {
            Isa::Scalar => 1,
            Isa::Avx2 => 2,
        }
    }
}

impl std::fmt::Display for Isa {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Packets per batched-UPDATE chunk. The kernel finishes one chunk's bucket
/// indices per stage into a 512-byte stack buffer
/// ([`SketchKernel::buckets_premixed`]), then the scatter into the stage row
/// issues that many independent saturating adds back-to-back — deep enough
/// to keep the memory system's miss parallelism busy, small enough that the
/// index buffer never leaves L1.
pub const UPDATE_CHUNK: usize = 64;

/// Environment variable that forces a specific kernel (`scalar` or `avx2`).
///
/// An unsupported or unparsable value falls back to [`detect_isa`] — the
/// override must never turn a working process into a crashing one.
pub const FORCE_KERNEL_ENV: &str = "HIFIND_FORCE_KERNEL";

/// Moments of one counter row, produced by [`SketchKernel::row_moments`].
///
/// The floating-point sums follow the fixed 4-lane association documented
/// on the module; magnitudes are taken with `i64::unsigned_abs` so
/// `i64::MIN` is handled without overflow.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RowMoments {
    /// Number of non-zero elements.
    pub nonzero: u64,
    /// Σ |vᵢ| accumulated in f64 (4-lane association).
    pub abs_sum: f64,
    /// Σ |vᵢ|² accumulated in f64 (4-lane association; each |vᵢ| is
    /// converted to f64 once and squared, matching the scalar path).
    pub sq_sum: f64,
    /// max |vᵢ| as an unsigned magnitude (`unsigned_abs`).
    pub max_abs: u64,
    /// Σ vᵢ accumulated in f64 (4-lane association) — the signed bias.
    pub bias_sum: f64,
}

/// The vectorizable inner loops of UPDATE / ESTIMATE / INFERENCE / COMBINE.
///
/// Implementations must be bit-identical to [`ScalarKernel`]; see the
/// module docs for the exact contract. Slice-length mismatches are handled
/// by operating on the common prefix (callers pass equal lengths; the grid
/// wrappers enforce shape).
pub trait SketchKernel: Send + Sync {
    /// Which ISA this kernel runs on.
    fn isa(&self) -> Isa;

    /// `dst[i] = dst[i].saturating_add(src[i])` element-wise.
    fn add_saturating(&self, dst: &mut [i64], src: &[i64]);

    /// `dst[i] = dst[i].saturating_sub(src[i])` element-wise.
    fn sub_saturating(&self, dst: &mut [i64], src: &[i64]);

    /// Wrapping sum of a row (order-independent mod 2⁶⁴).
    fn sum_wrapping(&self, row: &[i64]) -> i64;

    /// Appends the index of every element with `row[i] >= threshold` to
    /// `out`, in ascending order, as `u32` (rows longer than `u32::MAX`
    /// are not supported by any sketch configuration).
    fn heavy_buckets(&self, row: &[i64], threshold: i64, out: &mut Vec<u32>);

    /// Accumulates the row moments used by forecast-error statistics.
    fn row_moments(&self, row: &[i64]) -> RowMoments;

    /// Finishes the multiply-shift hash for a batch of premixed keys:
    /// `out[i] = ((premixed[i]·a + b) mod 2⁶⁴) >> shift`, with `shift >= 64`
    /// yielding bucket 0 (the single-bucket degenerate case).
    fn buckets_premixed(&self, premixed: &[u64], a: u64, b: u64, shift: u32, out: &mut [u64]);

    /// Hints the CPU to start pulling `row[idx[i]]` toward L1 for every
    /// in-range index, ahead of an imminent scatter of saturating adds.
    ///
    /// Purely a performance hint with no observable effect on any counter
    /// (out-of-range indices are ignored), so it is trivially exempt from
    /// the bit-identity contract. The default — and the scalar kernel —
    /// does nothing; the batched UPDATE paths call it with a whole chunk's
    /// bucket indices for *all* stages before the first scatter touches the
    /// grid, so on sketches whose rows dwarf L2 the misses of every stage
    /// stream in concurrently instead of stage-by-stage on demand.
    fn prefetch_buckets(&self, row: &[i64], idx: &[u64]) {
        let _ = (row, idx);
    }
}

static SCALAR: ScalarKernel = ScalarKernel;

#[cfg(target_arch = "x86_64")]
static AVX2: avx2::Avx2Kernel = avx2::Avx2Kernel;

/// Tag of the process-wide selected kernel; 0 until first use.
static SELECTED: AtomicU8 = AtomicU8::new(0);

/// Detects the best ISA the CPU supports (ignores the env override).
pub fn detect_isa() -> Isa {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") {
            return Isa::Avx2;
        }
    }
    Isa::Scalar
}

/// Parses [`FORCE_KERNEL_ENV`]; `None` if unset or unrecognized.
pub fn forced_isa() -> Option<Isa> {
    let v = std::env::var(FORCE_KERNEL_ENV).ok()?;
    match v.trim().to_ascii_lowercase().as_str() {
        "scalar" => Some(Isa::Scalar),
        "avx2" => Some(Isa::Avx2),
        _ => None,
    }
}

/// The ISA the process should run: a valid, supported [`forced_isa`] wins,
/// otherwise [`detect_isa`]. A forced ISA the CPU cannot execute falls back
/// to detection rather than crashing.
pub fn best_isa() -> Isa {
    match forced_isa() {
        Some(isa) if kernel_for(isa).is_some() => isa,
        _ => detect_isa(),
    }
}

/// The kernel for a specific ISA, or `None` if this CPU cannot run it.
pub fn kernel_for(isa: Isa) -> Option<&'static dyn SketchKernel> {
    match isa {
        Isa::Scalar => Some(&SCALAR),
        Isa::Avx2 => {
            #[cfg(target_arch = "x86_64")]
            {
                if std::is_x86_feature_detected!("avx2") {
                    return Some(&AVX2);
                }
            }
            None
        }
    }
}

/// The best kernel for this process ([`best_isa`] resolved to a kernel).
pub fn best_kernel() -> &'static dyn SketchKernel {
    kernel_for(best_isa()).unwrap_or(&SCALAR)
}

/// Overrides the process-wide kernel (benchmarks compare kernels this way).
/// Returns `false` — leaving the selection unchanged — if this CPU cannot
/// run `isa`.
pub fn set_kernel(isa: Isa) -> bool {
    if kernel_for(isa).is_some() {
        // Readers that race the store keep the previous (equally correct)
        // kernel for a call or two.
        // relaxed-ok: the tag is a self-contained u8, no other data published
        SELECTED.store(isa.tag(), Ordering::Relaxed);
        true
    } else {
        false
    }
}

/// The process-wide kernel all sketch hot loops dispatch through.
///
/// Selected once (env override, then CPUID) and cached; subsequent calls are
/// a single atomic load.
pub fn kernel() -> &'static dyn SketchKernel {
    // The tag selects between static kernels; racing initializers derive
    // the same value from env + CPUID, so any interleaving is correct.
    // relaxed-ok: self-contained u8 tag, no other data published through it
    match SELECTED.load(Ordering::Relaxed) {
        1 => &SCALAR,
        #[cfg(target_arch = "x86_64")]
        2 => &AVX2,
        _ => {
            let isa = best_isa();
            // relaxed-ok: see above; the store is idempotent.
            SELECTED.store(isa.tag(), Ordering::Relaxed);
            kernel_for(isa).unwrap_or(&SCALAR)
        }
    }
}

/// Human-readable kernel-selection summary
/// (`kernel=<name> detected_isa=<name> forced=<name|none>`): the help text
/// of the `hifind_sketch_kernel_info` gauge, and what the benches stamp
/// into their JSON so every perf number is attributable to a code path.
pub fn kernel_info_string() -> String {
    let forced = forced_isa().map(Isa::name).unwrap_or("none");
    format!(
        "kernel={} detected_isa={} forced={forced}",
        kernel().isa().name(),
        detect_isa().name(),
    )
}

/// Registers the `hifind_sketch_kernel_info` build-info-style gauge: value
/// is the constant 1, the help text carries the selected kernel, the
/// CPUID-detected ISA, and whether an env override forced the choice — so
/// every scrape (and every perf number derived from one) is attributable to
/// a code path.
#[cfg(feature = "telemetry")]
pub fn register_kernel_info(
    registry: &hifind_telemetry::Registry,
) -> Result<(), hifind_telemetry::TelemetryError> {
    let help = format!("constant 1; sketch kernel info: {}", kernel_info_string());
    registry.gauge("hifind_sketch_kernel_info", &help)?.set(1);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_kernel_always_available() {
        let k = kernel_for(Isa::Scalar).unwrap();
        assert_eq!(k.isa(), Isa::Scalar);
    }

    #[test]
    fn detected_isa_has_a_kernel() {
        let isa = detect_isa();
        let k = kernel_for(isa).unwrap();
        assert_eq!(k.isa(), isa);
    }

    #[test]
    fn set_kernel_scalar_always_succeeds_and_sticks() {
        // Single test for global-selection behavior: tests run in parallel,
        // so only this one asserts *which* kernel is selected. (Flipping
        // kernels mid-flight is safe for every other test — the two
        // implementations are bit-identical by contract.)
        assert!(set_kernel(Isa::Scalar));
        assert_eq!(kernel().isa(), Isa::Scalar);
        // Restore the default choice for the rest of the process; the suite
        // may run under HIFIND_FORCE_KERNEL (CI runs it twice), and in every
        // case the restored kernel must be the best resolvable one.
        assert!(set_kernel(best_isa()));
        assert_eq!(kernel().isa(), best_isa());
    }

    #[test]
    fn isa_names_round_trip() {
        assert_eq!(Isa::Scalar.name(), "scalar");
        assert_eq!(Isa::Avx2.name(), "avx2");
        assert_eq!(Isa::Avx2.to_string(), "avx2");
    }

    #[test]
    fn kernel_info_string_names_all_three_fields() {
        let info = kernel_info_string();
        assert!(info.contains(&format!("kernel={}", kernel().isa().name())));
        assert!(info.contains(&format!("detected_isa={}", detect_isa().name())));
        assert!(info.contains("forced="));
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn kernel_info_gauge_registers() {
        let reg = hifind_telemetry::Registry::new();
        register_kernel_info(&reg).unwrap();
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("hifind_sketch_kernel_info 1"));
        assert!(text.contains("kernel="));
    }
}
