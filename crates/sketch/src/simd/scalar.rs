//! The portable scalar kernel — the semantic reference every SIMD kernel
//! must match bit-for-bit.
//!
//! Integer methods are written as the obvious element-wise loops. The
//! floating-point reduction ([`SketchKernel::row_moments`]) deliberately is
//! *not* the obvious loop: it emulates the 4-lane accumulator structure a
//! 256-bit vector unit has (element `i` → lane `i mod 4`, lanes combined as
//! `(l0 + l1) + (l2 + l3)`), because f64 addition is not associative and the
//! contract pins one association for all ISAs.

use super::{Isa, RowMoments, SketchKernel};

/// Lane count the f64 reductions are specified against (256-bit / f64).
pub(crate) const F64_LANES: usize = 4;

/// The always-available portable kernel.
#[derive(Clone, Copy, Debug, Default)]
pub struct ScalarKernel;

impl SketchKernel for ScalarKernel {
    fn isa(&self) -> Isa {
        Isa::Scalar
    }

    fn add_saturating(&self, dst: &mut [i64], src: &[i64]) {
        for (a, b) in dst.iter_mut().zip(src) {
            *a = a.saturating_add(*b);
        }
    }

    fn sub_saturating(&self, dst: &mut [i64], src: &[i64]) {
        for (a, b) in dst.iter_mut().zip(src) {
            *a = a.saturating_sub(*b);
        }
    }

    fn sum_wrapping(&self, row: &[i64]) -> i64 {
        row.iter().fold(0i64, |acc, &v| acc.wrapping_add(v))
    }

    fn heavy_buckets(&self, row: &[i64], threshold: i64, out: &mut Vec<u32>) {
        debug_assert!(u32::try_from(row.len()).is_ok());
        for (i, &v) in row.iter().enumerate() {
            if v >= threshold {
                out.push(i as u32);
            }
        }
    }

    fn row_moments(&self, row: &[i64]) -> RowMoments {
        let mut abs_l = [0.0f64; F64_LANES];
        let mut sq_l = [0.0f64; F64_LANES];
        let mut bias_l = [0.0f64; F64_LANES];
        let mut nonzero = 0u64;
        let mut max_abs = 0u64;
        for (i, &v) in row.iter().enumerate() {
            let lane = i % F64_LANES;
            let mag = v.unsigned_abs();
            let magf = mag as f64;
            abs_l[lane] += magf;
            sq_l[lane] += magf * magf;
            bias_l[lane] += v as f64;
            // lint: allow(overflow-audit, bounded by row length, far below u64::MAX)
            nonzero += u64::from(v != 0);
            max_abs = max_abs.max(mag);
        }
        RowMoments {
            nonzero,
            abs_sum: (abs_l[0] + abs_l[1]) + (abs_l[2] + abs_l[3]),
            sq_sum: (sq_l[0] + sq_l[1]) + (sq_l[2] + sq_l[3]),
            max_abs,
            bias_sum: (bias_l[0] + bias_l[1]) + (bias_l[2] + bias_l[3]),
        }
    }

    fn buckets_premixed(&self, premixed: &[u64], a: u64, b: u64, shift: u32, out: &mut [u64]) {
        for (o, &p) in out.iter_mut().zip(premixed) {
            let h = p.wrapping_mul(a).wrapping_add(b);
            *o = if shift >= 64 { 0 } else { h >> shift };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_saturates_at_both_rails() {
        let k = ScalarKernel;
        let mut dst = [i64::MAX, i64::MIN, 5, -5];
        k.add_saturating(&mut dst, &[1, -1, 2, -2]);
        assert_eq!(dst, [i64::MAX, i64::MIN, 7, -7]);
    }

    #[test]
    fn sub_saturates_at_both_rails() {
        let k = ScalarKernel;
        let mut dst = [i64::MIN, i64::MAX, 5];
        k.sub_saturating(&mut dst, &[1, -1, 2]);
        assert_eq!(dst, [i64::MIN, i64::MAX, 3]);
    }

    #[test]
    fn wrapping_sum_is_modular() {
        let k = ScalarKernel;
        assert_eq!(k.sum_wrapping(&[]), 0);
        assert_eq!(k.sum_wrapping(&[i64::MAX, 1]), i64::MIN);
        assert_eq!(k.sum_wrapping(&[1, 2, 3]), 6);
    }

    #[test]
    fn heavy_buckets_indices_ascending() {
        let k = ScalarKernel;
        let mut out = Vec::new();
        k.heavy_buckets(&[5, 1, 7, 7, 0], 5, &mut out);
        assert_eq!(out, vec![0, 2, 3]);
    }

    #[test]
    fn moments_handle_extremes() {
        let k = ScalarKernel;
        let m = k.row_moments(&[i64::MIN, 0, 3, -4]);
        assert_eq!(m.nonzero, 3);
        assert_eq!(m.max_abs, 1u64 << 63);
        assert_eq!(m.abs_sum, (1u64 << 63) as f64 + 7.0);
        assert_eq!(m.bias_sum, i64::MIN as f64 - 1.0);
        assert!(k.row_moments(&[]).abs_sum == 0.0);
    }

    #[test]
    fn bucket_finish_matches_hasher_semantics() {
        let k = ScalarKernel;
        let mut out = [0u64; 3];
        // shift >= 64 is the 1-bucket degenerate case: everything maps to 0.
        k.buckets_premixed(&[1, u64::MAX, 7], 3, 9, 64, &mut out);
        assert_eq!(out, [0, 0, 0]);
        k.buckets_premixed(&[1, u64::MAX, 7], 3, 9, 62, &mut out);
        for (&o, &p) in out.iter().zip(&[1u64, u64::MAX, 7]) {
            assert_eq!(o, p.wrapping_mul(3).wrapping_add(9) >> 62);
        }
    }
}
