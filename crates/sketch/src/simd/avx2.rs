//! AVX2 implementation of [`SketchKernel`].
//!
//! # Safety argument (the whole of it)
//!
//! This file is the only unsafe code in the sketch crates, and every unsafe
//! operation here is one of exactly two shapes:
//!
//! 1. **Calling an `#[target_feature(enable = "avx2")]` function.** Sound
//!    because [`Avx2Kernel`] is unreachable except through
//!    [`super::kernel_for`], which checks
//!    `is_x86_feature_detected!("avx2")` at runtime before handing out
//!    the static instance — the feature is guaranteed present on every call.
//! 2. **Unaligned vector loads/stores through raw pointers derived from the
//!    argument slices.** Every access is at `ptr.add(i)` with `i + 4 <=
//!    len`, i.e. strictly inside the slice; `loadu`/`storeu` have no
//!    alignment requirement; `i64`/`u64` have no invalid bit patterns, so no
//!    value-level UB is possible.
//!
//! There is no FFI, no allocation, no transmute of non-POD types, and no
//! lifetime juggling — the perimeter is mechanical bounds reasoning plus the
//! dispatch-time CPUID check.
//!
//! # Bit-identity
//!
//! Each routine mirrors [`super::scalar::ScalarKernel`] exactly; where f64
//! association matters the 4-lane layout is the *definition* (module docs).
//! Saturating i64 add/sub have no AVX2 instruction, so they are emulated
//! with the sign-overflow identity `ovf = (a ⊕ r) & (b ⊕ r)` (add) /
//! `(a ⊕ b) & (a ⊕ r)` (sub), saturating toward `a`'s sign. 64×64→64
//! multiplication is emulated from `_mm256_mul_epu32` partial products,
//! which is exactly wrapping multiplication mod 2⁶⁴.

use core::arch::x86_64::*;

use super::scalar::F64_LANES;
use super::{Isa, RowMoments, SketchKernel};

/// The AVX2 kernel; constructed only as a static handed out by
/// [`super::kernel_for`] after runtime feature detection.
#[derive(Clone, Copy, Debug, Default)]
pub struct Avx2Kernel;

impl SketchKernel for Avx2Kernel {
    fn isa(&self) -> Isa {
        Isa::Avx2
    }

    fn add_saturating(&self, dst: &mut [i64], src: &[i64]) {
        // SAFETY: AVX2 is present — `Avx2Kernel` is only reachable through
        // `kernel_for`, which verifies it at runtime (module safety note).
        unsafe { add_saturating(dst, src) }
    }

    fn sub_saturating(&self, dst: &mut [i64], src: &[i64]) {
        // SAFETY: as above — dispatch guarantees AVX2.
        unsafe { sub_saturating(dst, src) }
    }

    fn sum_wrapping(&self, row: &[i64]) -> i64 {
        // SAFETY: as above — dispatch guarantees AVX2.
        unsafe { sum_wrapping(row) }
    }

    fn heavy_buckets(&self, row: &[i64], threshold: i64, out: &mut Vec<u32>) {
        // SAFETY: as above — dispatch guarantees AVX2.
        unsafe { heavy_buckets(row, threshold, out) }
    }

    fn row_moments(&self, row: &[i64]) -> RowMoments {
        // SAFETY: as above — dispatch guarantees AVX2.
        unsafe { row_moments(row) }
    }

    fn buckets_premixed(&self, premixed: &[u64], a: u64, b: u64, shift: u32, out: &mut [u64]) {
        // SAFETY: as above — dispatch guarantees AVX2.
        unsafe { buckets_premixed(premixed, a, b, shift, out) }
    }

    fn prefetch_buckets(&self, row: &[i64], idx: &[u64]) {
        for &i in idx {
            if let Some(cell) = row.get(i as usize) {
                // SAFETY: `_mm_prefetch` is a pure hint — it never faults
                // and never writes; the pointer is in-bounds anyway (the
                // `get` above), and the instruction is baseline SSE on
                // every x86-64.
                unsafe { _mm_prefetch::<_MM_HINT_T0>(std::ptr::from_ref(cell).cast()) };
            }
        }
    }
}

#[target_feature(enable = "avx2")]
unsafe fn add_saturating(dst: &mut [i64], src: &[i64]) {
    let n = dst.len().min(src.len());
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    let zero = _mm256_setzero_si256();
    let max = _mm256_set1_epi64x(i64::MAX);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n keeps both 32-byte unaligned accesses inside
        // the slices.
        unsafe {
            let a = _mm256_loadu_si256(d.add(i).cast());
            let b = _mm256_loadu_si256(s.add(i).cast());
            let sum = _mm256_add_epi64(a, b);
            // Signed overflow iff a and b agree in sign and sum does not.
            let ovf = _mm256_and_si256(_mm256_xor_si256(a, sum), _mm256_xor_si256(b, sum));
            let ovf_mask = _mm256_cmpgt_epi64(zero, ovf);
            // Overflow saturates toward a's sign: MAX when a >= 0, MIN when
            // a < 0 (MAX ^ all-ones == MIN).
            let sat = _mm256_xor_si256(max, _mm256_cmpgt_epi64(zero, a));
            _mm256_storeu_si256(d.add(i).cast(), _mm256_blendv_epi8(sum, sat, ovf_mask));
        }
        i += 4;
    }
    while i < n {
        dst[i] = dst[i].saturating_add(src[i]);
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn sub_saturating(dst: &mut [i64], src: &[i64]) {
    let n = dst.len().min(src.len());
    let d = dst.as_mut_ptr();
    let s = src.as_ptr();
    let zero = _mm256_setzero_si256();
    let max = _mm256_set1_epi64x(i64::MAX);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n keeps both 32-byte unaligned accesses inside
        // the slices.
        unsafe {
            let a = _mm256_loadu_si256(d.add(i).cast());
            let b = _mm256_loadu_si256(s.add(i).cast());
            let diff = _mm256_sub_epi64(a, b);
            // Signed overflow iff a and b differ in sign and diff left a's.
            let ovf = _mm256_and_si256(_mm256_xor_si256(a, b), _mm256_xor_si256(a, diff));
            let ovf_mask = _mm256_cmpgt_epi64(zero, ovf);
            let sat = _mm256_xor_si256(max, _mm256_cmpgt_epi64(zero, a));
            _mm256_storeu_si256(d.add(i).cast(), _mm256_blendv_epi8(diff, sat, ovf_mask));
        }
        i += 4;
    }
    while i < n {
        dst[i] = dst[i].saturating_sub(src[i]);
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn sum_wrapping(row: &[i64]) -> i64 {
    let n = row.len();
    let p = row.as_ptr();
    let mut acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n keeps the 32-byte load inside the slice.
        unsafe {
            acc = _mm256_add_epi64(acc, _mm256_loadu_si256(p.add(i).cast()));
        }
        i += 4;
    }
    let lanes = to_lanes_i64(acc);
    // Wrapping addition is associative and commutative mod 2^64, so any
    // reduction order is bit-identical to the scalar left fold.
    let mut total = lanes[0]
        .wrapping_add(lanes[1])
        .wrapping_add(lanes[2])
        .wrapping_add(lanes[3]);
    while i < n {
        total = total.wrapping_add(row[i]);
        i += 1;
    }
    total
}

#[target_feature(enable = "avx2")]
unsafe fn heavy_buckets(row: &[i64], threshold: i64, out: &mut Vec<u32>) {
    debug_assert!(u32::try_from(row.len()).is_ok());
    let Some(thr_minus_1) = threshold.checked_sub(1) else {
        // threshold == i64::MIN: every element qualifies.
        for i in 0..row.len() {
            out.push(i as u32);
        }
        return;
    };
    let n = row.len();
    let p = row.as_ptr();
    let tv = _mm256_set1_epi64x(thr_minus_1);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n keeps the 32-byte load inside the slice.
        let v = unsafe { _mm256_loadu_si256(p.add(i).cast()) };
        // v >= threshold  ⇔  v > threshold - 1.
        let mask = _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(v, tv)));
        if mask != 0 {
            for lane in 0..4usize {
                if mask & (1 << lane) != 0 {
                    out.push((i + lane) as u32);
                }
            }
        }
        i += 4;
    }
    while i < n {
        if row[i] >= threshold {
            out.push(i as u32);
        }
        i += 1;
    }
}

#[target_feature(enable = "avx2")]
unsafe fn row_moments(row: &[i64]) -> RowMoments {
    let n = row.len();
    let p = row.as_ptr();
    let zero = _mm256_setzero_si256();
    let sign_flip = _mm256_set1_epi64x(i64::MIN);
    let mut abs_acc = _mm256_setzero_pd();
    let mut sq_acc = _mm256_setzero_pd();
    let mut bias_acc = _mm256_setzero_pd();
    let mut max_acc = _mm256_setzero_si256();
    let mut zeros_acc = _mm256_setzero_si256();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n keeps the 32-byte load inside the slice.
        let v = unsafe { _mm256_loadu_si256(p.add(i).cast()) };
        let neg = _mm256_cmpgt_epi64(zero, v);
        // (v ^ neg) - neg == |v| as an unsigned magnitude; i64::MIN maps to
        // the 2^63 bit pattern, exactly `i64::unsigned_abs`.
        let mag = _mm256_sub_epi64(_mm256_xor_si256(v, neg), neg);
        let magf = u64x4_to_f64x4(mag);
        abs_acc = _mm256_add_pd(abs_acc, magf);
        sq_acc = _mm256_add_pd(sq_acc, _mm256_mul_pd(magf, magf));
        bias_acc = _mm256_add_pd(bias_acc, i64x4_to_f64x4(v));
        // Unsigned 64-bit max via sign-bit flip + signed compare.
        let gt = _mm256_cmpgt_epi64(
            _mm256_xor_si256(mag, sign_flip),
            _mm256_xor_si256(max_acc, sign_flip),
        );
        max_acc = _mm256_blendv_epi8(max_acc, mag, gt);
        // cmpeq yields -1 per zero lane; subtracting counts them.
        zeros_acc = _mm256_sub_epi64(zeros_acc, _mm256_cmpeq_epi64(v, zero));
        i += 4;
    }
    let mut abs_l = to_lanes_f64(abs_acc);
    let mut sq_l = to_lanes_f64(sq_acc);
    let mut bias_l = to_lanes_f64(bias_acc);
    let max_l = to_lanes_i64(max_acc);
    let zeros_l = to_lanes_i64(zeros_acc);
    let mut max_abs = max_l.iter().map(|&v| v as u64).max().unwrap_or(0);
    let zeros: u64 = zeros_l.iter().map(|&v| v as u64).sum();
    let mut nonzero = (i as u64).wrapping_sub(zeros);
    // Scalar tail; i is a multiple of 4 here, so `i % 4` continues the lane
    // mapping exactly as the scalar kernel defines it.
    while i < n {
        let v = row[i];
        let lane = i % F64_LANES;
        let mag = v.unsigned_abs();
        let magf = mag as f64;
        abs_l[lane] += magf;
        sq_l[lane] += magf * magf;
        bias_l[lane] += v as f64;
        // lint: allow(overflow-audit, bounded by row length, far below u64::MAX)
        nonzero += u64::from(v != 0);
        max_abs = max_abs.max(mag);
        i += 1;
    }
    RowMoments {
        nonzero,
        abs_sum: (abs_l[0] + abs_l[1]) + (abs_l[2] + abs_l[3]),
        sq_sum: (sq_l[0] + sq_l[1]) + (sq_l[2] + sq_l[3]),
        max_abs,
        bias_sum: (bias_l[0] + bias_l[1]) + (bias_l[2] + bias_l[3]),
    }
}

#[target_feature(enable = "avx2")]
unsafe fn buckets_premixed(premixed: &[u64], a: u64, b: u64, shift: u32, out: &mut [u64]) {
    let n = premixed.len().min(out.len());
    let src = premixed.as_ptr();
    let dst = out.as_mut_ptr();
    let av = _mm256_set1_epi64x(a as i64);
    let bv = _mm256_set1_epi64x(b as i64);
    let a_hi = _mm256_srli_epi64::<32>(av);
    // Variable shift count; _mm256_srl_epi64 yields 0 for counts >= 64,
    // matching the scalar `shift >= 64 → bucket 0` degenerate case.
    let cnt = _mm_cvtsi32_si128(shift.min(64) as i32);
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: i + 4 <= n keeps both 32-byte unaligned accesses inside
        // the slices.
        unsafe {
            let x = _mm256_loadu_si256(src.add(i).cast());
            let x_hi = _mm256_srli_epi64::<32>(x);
            // 64×64→64 wrapping multiply from 32×32→64 partial products:
            // lo(x)·lo(a) + ((lo(x)·hi(a) + hi(x)·lo(a)) << 32)  (mod 2^64).
            let lo = _mm256_mul_epu32(x, av);
            let cross = _mm256_add_epi64(_mm256_mul_epu32(x, a_hi), _mm256_mul_epu32(x_hi, av));
            let prod = _mm256_add_epi64(lo, _mm256_slli_epi64::<32>(cross));
            let h = _mm256_add_epi64(prod, bv);
            _mm256_storeu_si256(dst.add(i).cast(), _mm256_srl_epi64(h, cnt));
        }
        i += 4;
    }
    while i < n {
        let h = premixed[i].wrapping_mul(a).wrapping_add(b);
        out[i] = if shift >= 64 { 0 } else { h >> shift };
        i += 1;
    }
}

/// Exact full-range i64 → f64 conversion (round-to-nearest-even, identical
/// to `v as f64`): the low 32 bits are packed onto the 2⁵² exponent, the
/// sign-flipped high 32 bits onto 2⁸⁴, and one FP subtract + add recombines
/// them with a single rounding step.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn i64x4_to_f64x4(v: __m256i) -> __m256d {
    let magic_lo = _mm256_set1_epi64x(0x4330_0000_0000_0000); // double 2^52
    let magic_hi = _mm256_set1_epi64x(0x4530_0000_8000_0000_u64 as i64); // 2^84 + 2^63
    let magic_all = _mm256_set1_epi64x(0x4530_0000_8010_0000_u64 as i64); // 2^84 + 2^63 + 2^52
    let v_lo = _mm256_blend_epi32::<0b0101_0101>(magic_lo, v);
    let v_hi = _mm256_xor_si256(_mm256_srli_epi64::<32>(v), magic_hi);
    let hi_dbl = _mm256_sub_pd(_mm256_castsi256_pd(v_hi), _mm256_castsi256_pd(magic_all));
    _mm256_add_pd(hi_dbl, _mm256_castsi256_pd(v_lo))
}

/// Exact full-range u64 → f64 conversion (round-to-nearest-even, identical
/// to `v as f64`); the unsigned variant of [`i64x4_to_f64x4`].
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn u64x4_to_f64x4(v: __m256i) -> __m256d {
    let magic_lo = _mm256_set1_epi64x(0x4330_0000_0000_0000); // double 2^52
    let magic_hi = _mm256_set1_epi64x(0x4530_0000_0000_0000); // double 2^84
    let magic_all = _mm256_set1_epi64x(0x4530_0000_0010_0000); // 2^84 + 2^52
    let v_lo = _mm256_blend_epi32::<0b0101_0101>(magic_lo, v);
    let v_hi = _mm256_xor_si256(_mm256_srli_epi64::<32>(v), magic_hi);
    let hi_dbl = _mm256_sub_pd(_mm256_castsi256_pd(v_hi), _mm256_castsi256_pd(magic_all));
    _mm256_add_pd(hi_dbl, _mm256_castsi256_pd(v_lo))
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn to_lanes_i64(v: __m256i) -> [i64; 4] {
    let mut lanes = [0i64; 4];
    // SAFETY: the destination is exactly 32 writable bytes.
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast(), v) };
    lanes
}

#[inline]
#[target_feature(enable = "avx2")]
unsafe fn to_lanes_f64(v: __m256d) -> [f64; 4] {
    let mut lanes = [0f64; 4];
    // SAFETY: the destination is exactly 32 writable bytes.
    unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), v) };
    lanes
}

#[cfg(test)]
mod tests {
    use super::super::ScalarKernel;
    use super::*;

    /// Runs `f` only when the host can actually execute AVX2; the proptest
    /// equivalence suite (tests/kernel_equivalence.rs) is the exhaustive
    /// check, these are targeted boundary smoke tests.
    fn with_avx2(f: impl FnOnce(&Avx2Kernel, &ScalarKernel)) {
        if std::is_x86_feature_detected!("avx2") {
            f(&Avx2Kernel, &ScalarKernel);
        }
    }

    #[test]
    fn saturating_add_boundaries_match_scalar() {
        with_avx2(|v, s| {
            let src = [1i64, -1, i64::MAX, i64::MIN, 0, 123, -456, i64::MAX];
            let base = [i64::MAX, i64::MIN, i64::MAX, i64::MIN, 7, -7, 0, 1];
            let (mut a, mut b) = (base, base);
            v.add_saturating(&mut a, &src);
            s.add_saturating(&mut b, &src);
            assert_eq!(a, b);
            let (mut a, mut b) = (base, base);
            v.sub_saturating(&mut a, &src);
            s.sub_saturating(&mut b, &src);
            assert_eq!(a, b);
        });
    }

    #[test]
    fn conversions_are_exact_at_extremes() {
        with_avx2(|v, s| {
            for row in [
                vec![i64::MIN, i64::MAX, 0, -1, 1, (1 << 53) + 1, -(1 << 53) - 1],
                vec![i64::MIN + 1, i64::MAX - 1, 3],
                vec![],
            ] {
                assert_eq!(v.row_moments(&row), s.row_moments(&row), "{row:?}");
            }
        });
    }

    #[test]
    fn bucket_finish_matches_scalar_incl_degenerate_shift() {
        with_avx2(|v, s| {
            let pre = [0u64, 1, u64::MAX, 0xDEAD_BEEF, 42, 7, 9, 11, 13];
            for shift in [0u32, 1, 31, 32, 33, 50, 63, 64] {
                let (mut a, mut b) = ([0u64; 9], [0u64; 9]);
                v.buckets_premixed(&pre, 0x9E37_79B9_7F4A_7C15, 0x1234, shift, &mut a);
                s.buckets_premixed(&pre, 0x9E37_79B9_7F4A_7C15, 0x1234, shift, &mut b);
                assert_eq!(a, b, "shift {shift}");
            }
        });
    }

    #[test]
    fn heavy_scan_handles_min_threshold() {
        with_avx2(|v, s| {
            let row = [i64::MIN, -5, 0, 5, i64::MAX];
            for thr in [i64::MIN, i64::MIN + 1, -5, 0, 5, i64::MAX] {
                let (mut a, mut b) = (Vec::new(), Vec::new());
                v.heavy_buckets(&row, thr, &mut a);
                s.heavy_buckets(&row, thr, &mut b);
                assert_eq!(a, b, "thr {thr}");
            }
        });
    }
}
