//! The original k-ary sketch (Krishnamurthy et al., IMC'03).

use crate::grid::CounterGrid;
use crate::simd::UPDATE_CHUNK;
use crate::{median_i64, SketchError};
use hifind_flow::rng::SplitMix64;
use hifind_hashing::{BucketHasher, PairwiseHasher};
use serde::{Deserialize, Serialize};

/// Configuration for a [`KarySketch`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct KaryConfig {
    /// Number of independent hash stages (`H`, paper default 6).
    pub stages: usize,
    /// Buckets per stage (`m`, a power of two; paper default 2^14 for the
    /// "original sketch").
    pub buckets: usize,
    /// Master seed for the stage hash functions.
    pub seed: u64,
}

impl KaryConfig {
    /// The paper's "OS" configuration: 6 stages × 2^14 buckets.
    pub fn paper_os(seed: u64) -> Self {
        KaryConfig {
            stages: 6,
            buckets: 1 << 14,
            seed,
        }
    }

    /// The paper's verification-sketch configuration: 6 stages × 2^14
    /// buckets (used to cross-check keys recovered by inference).
    pub fn paper_verification(seed: u64) -> Self {
        KaryConfig {
            stages: 6,
            buckets: 1 << 14,
            seed,
        }
    }

    fn validate(&self) -> Result<(), SketchError> {
        if self.stages == 0 {
            return Err(SketchError::BadConfig("stages must be positive".into()));
        }
        if !self.buckets.is_power_of_two() || self.buckets < 2 {
            return Err(SketchError::BadConfig(format!(
                "buckets {} must be a power of two >= 2",
                self.buckets
            )));
        }
        Ok(())
    }
}

/// The k-ary sketch: `H` independent hash stages over `m` counters each.
///
/// Supports the paper's `UPDATE(S, y, v)`, `ESTIMATE(S, y)` and
/// `COMBINE(c₁,S₁,…,cₖ,Sₖ)` functions (Table 2). It is *not* reversible —
/// `INFERENCE` requires [`crate::ReversibleSketch`].
///
/// # Example
///
/// ```
/// use hifind_sketch::{KaryConfig, KarySketch};
///
/// let mut s = KarySketch::new(KaryConfig { stages: 4, buckets: 1024, seed: 3 }).unwrap();
/// s.update(42, 100);
/// for k in 0..500 { s.update(k, 1); }
/// let est = s.estimate(42);
/// assert!((est - 101).abs() <= 5, "estimate {est} should be close to 101");
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KarySketch {
    config: KaryConfig,
    hashers: Vec<PairwiseHasher>,
    grid: CounterGrid,
    /// Total update mass (Σ v over all updates); equals each stage's sum.
    total: i64,
}

impl KarySketch {
    /// Creates an empty sketch.
    ///
    /// # Errors
    ///
    /// Returns [`SketchError::BadConfig`] for zero stages or a non-power-of-
    /// two bucket count.
    pub fn new(config: KaryConfig) -> Result<Self, SketchError> {
        config.validate()?;
        let mut rng = SplitMix64::new(config.seed);
        let hashers = (0..config.stages)
            .map(|i| PairwiseHasher::new(&mut rng.fork(i as u64), config.buckets))
            .collect();
        Ok(KarySketch {
            config,
            hashers,
            grid: CounterGrid::new(config.stages, config.buckets),
            total: 0,
        })
    }

    /// The configuration this sketch was built with.
    pub fn config(&self) -> &KaryConfig {
        &self.config
    }

    /// UPDATE: adds `delta` to the key's bucket in every stage.
    #[inline]
    pub fn update(&mut self, key: u64, delta: i64) {
        self.update_premixed(PairwiseHasher::premix(key), delta);
    }

    /// UPDATE from a precomputed [`PairwiseHasher::premix`] of the key.
    /// Identical to [`KarySketch::update`] on the premixed key; callers
    /// updating several sketches per packet (the recorder's hash plan)
    /// premix each key once and share it across all of them.
    #[inline]
    pub fn update_premixed(&mut self, premixed: u64, delta: i64) {
        for (stage, h) in self.hashers.iter().enumerate() {
            self.grid.add(stage, h.bucket_premixed(premixed), delta);
        }
        self.total = self.total.saturating_add(delta);
    }

    /// Batched UPDATE: applies `deltas[i]` under key premix `premixed[i]`
    /// for the whole batch, bit-identical to calling
    /// [`KarySketch::update_premixed`] once per element in order.
    ///
    /// The batch is processed stage-major in [`UPDATE_CHUNK`]-packet runs.
    /// Each run makes two passes: first the [`crate::simd`] kernel finishes
    /// the chunk's bucket indices for *every* stage and issues prefetch
    /// hints for all of them ([`crate::simd::SketchKernel::prefetch_buckets`]),
    /// then the scatter walks the stages applying the saturating adds — so
    /// on a sketch whose working set dwarfs L2 the misses of all stages
    /// stream in concurrently while the remaining indices are still being
    /// hashed, instead of each stage paying its latency on demand.
    /// Reordering packet × stage iteration is safe because every counter
    /// belongs to exactly one stage and within a stage packets are applied
    /// in order, so each cell sees the same saturating-add sequence as the
    /// serial path.
    pub fn update_batch_premixed(&mut self, premixed: &[u64], deltas: &[i64]) {
        debug_assert_eq!(premixed.len(), deltas.len());
        let n = premixed.len().min(deltas.len());
        let kernel = crate::simd::kernel();
        let stages = self.hashers.len();
        let mut idx = vec![0u64; stages * UPDATE_CHUNK];
        let mut start = 0;
        while start < n {
            let end = (start + UPDATE_CHUNK).min(n);
            let pre = &premixed[start..end];
            let del = &deltas[start..end];
            for (stage, h) in self.hashers.iter().enumerate() {
                let (a, b, shift) = h.coefficients();
                let buf = &mut idx[stage * UPDATE_CHUNK..][..pre.len()];
                kernel.buckets_premixed(pre, a, b, shift, buf);
                kernel.prefetch_buckets(self.grid.stage(stage), buf);
            }
            for stage in 0..stages {
                let row = self.grid.stage_mut(stage);
                for (&bucket, &d) in idx[stage * UPDATE_CHUNK..][..pre.len()].iter().zip(del) {
                    let cell = &mut row[bucket as usize];
                    *cell = cell.saturating_add(d);
                }
            }
            for &d in del {
                self.total = self.total.saturating_add(d);
            }
            start = end;
        }
    }

    /// ESTIMATE: the median over stages of the per-stage unbiased estimator
    /// `(v_bucket − total/m) / (1 − 1/m)`.
    pub fn estimate(&self, key: u64) -> i64 {
        self.estimate_grid(&self.grid, key)
    }

    /// ESTIMATE against an external grid (e.g. a forecast-error grid) using
    /// this sketch's hash functions.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the grid shape differs from this sketch's.
    pub fn estimate_grid(&self, grid: &CounterGrid, key: u64) -> i64 {
        self.estimate_grid_with_sums(grid, key, &self.stage_sums(grid))
    }

    /// The per-stage sums of `grid`, for amortizing many
    /// [`KarySketch::estimate_grid_with_sums`] calls against the same grid
    /// (inference estimates every candidate key; the sums are identical for
    /// all of them and cost a full grid walk each time otherwise).
    pub fn stage_sums(&self, grid: &CounterGrid) -> Vec<i64> {
        (0..grid.stages()).map(|s| grid.stage_sum(s)).collect()
    }

    /// [`KarySketch::estimate_grid`] with the per-stage sums precomputed by
    /// [`KarySketch::stage_sums`]; bit-identical to `estimate_grid`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the grid shape or `sums` length differs
    /// from this sketch's configuration.
    pub fn estimate_grid_with_sums(&self, grid: &CounterGrid, key: u64, sums: &[i64]) -> i64 {
        debug_assert_eq!(grid.stages(), self.config.stages);
        debug_assert_eq!(grid.buckets(), self.config.buckets);
        debug_assert_eq!(sums.len(), self.config.stages);
        let m = self.config.buckets as f64;
        let mut estimates: Vec<i64> = Vec::with_capacity(self.config.stages);
        for ((stage, h), &stage_sum) in self.hashers.iter().enumerate().zip(sums) {
            let v = grid.get(stage, h.bucket(key)) as f64;
            let sum = stage_sum as f64;
            let unbiased = (v - sum / m) / (1.0 - 1.0 / m);
            estimates.push(unbiased.round() as i64);
        }
        median_i64(&mut estimates)
    }

    /// The raw median of the key's bucket values, without bias correction.
    pub fn raw_estimate(&self, key: u64) -> i64 {
        let mut values: Vec<i64> = self
            .hashers
            .iter()
            .enumerate()
            .map(|(stage, h)| self.grid.get(stage, h.bucket(key)))
            .collect();
        median_i64(&mut values)
    }

    /// COMBINE: the linear combination `Σ cᵢ·Sᵢ`.
    ///
    /// # Errors
    ///
    /// All sketches must share the same configuration (including seed);
    /// otherwise [`SketchError::CombineMismatch`]. An empty list yields
    /// [`SketchError::CombineEmpty`].
    pub fn combine(terms: &[(f64, &KarySketch)]) -> Result<KarySketch, SketchError> {
        let (_, first) = terms.first().ok_or(SketchError::CombineEmpty)?;
        for (_, s) in terms {
            if s.config != first.config {
                return Err(SketchError::CombineMismatch);
            }
        }
        let grids: Vec<(f64, &CounterGrid)> = terms.iter().map(|(c, s)| (*c, &s.grid)).collect();
        let grid = CounterGrid::linear_combination(&grids)?;
        let total = terms
            .iter()
            .map(|(c, s)| c * s.total as f64)
            .sum::<f64>()
            .round() as i64;
        Ok(KarySketch {
            config: first.config,
            hashers: first.hashers.clone(),
            grid,
            total,
        })
    }

    /// Borrows the counter grid.
    pub fn grid(&self) -> &CounterGrid {
        &self.grid
    }

    /// Total update mass.
    pub fn total(&self) -> i64 {
        self.total
    }

    /// Zeroes the counters, keeping the hash functions.
    pub fn clear(&mut self) {
        self.grid.clear();
        self.total = 0;
    }

    /// Memory accounting for Table 9.
    pub fn memory_bytes(&self) -> usize {
        self.grid.memory_bytes() + self.hashers.len() * std::mem::size_of::<PairwiseHasher>()
    }

    /// Number of counter memory accesses per update (one per stage).
    ///
    /// This counts *counter* accesses only, which is what the paper's
    /// per-packet budget measures. Sharing hash work across sketches (the
    /// recorder's per-packet hash plan, [`KarySketch::update_premixed`])
    /// removes redundant ALU work but touches exactly the same counters,
    /// so this figure is identical on both update paths.
    pub fn accesses_per_update(&self) -> usize {
        self.config.stages
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> KarySketch {
        KarySketch::new(KaryConfig {
            stages: 5,
            buckets: 1 << 10,
            seed: 11,
        })
        .unwrap()
    }

    #[test]
    fn bad_configs_rejected() {
        assert!(KarySketch::new(KaryConfig {
            stages: 0,
            buckets: 16,
            seed: 0
        })
        .is_err());
        assert!(KarySketch::new(KaryConfig {
            stages: 2,
            buckets: 100,
            seed: 0
        })
        .is_err());
    }

    #[test]
    fn single_key_estimate_exact_without_noise() {
        let mut s = small();
        s.update(99, 1234);
        // total == bucket value, so the unbiased estimator has a tiny
        // correction; the estimate must be within 2 of the truth.
        assert!((s.estimate(99) - 1234).abs() <= 2);
        assert_eq!(s.raw_estimate(99), 1234);
    }

    #[test]
    fn estimate_under_noise() {
        let mut s = small();
        s.update(7777, 1000);
        let mut rng = SplitMix64::new(5);
        for _ in 0..5000 {
            s.update(rng.next_u64(), 1);
        }
        let est = s.estimate(7777);
        assert!((est - 1000).abs() < 100, "estimate {est} too far from 1000");
    }

    #[test]
    fn negative_updates_supported() {
        let mut s = small();
        s.update(1, 50);
        s.update(1, -50);
        assert_eq!(s.raw_estimate(1), 0);
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn absent_key_estimates_near_zero() {
        let mut s = small();
        let mut rng = SplitMix64::new(6);
        for _ in 0..2000 {
            s.update(rng.next_u64(), 1);
        }
        let est = s.estimate(0xDEAD_BEEF_0000_0001);
        assert!(est.abs() < 50, "phantom estimate {est}");
    }

    #[test]
    fn combine_equals_merged_updates() {
        let mut a = small();
        let mut b = small();
        let mut merged = small();
        let mut rng = SplitMix64::new(7);
        for i in 0..1000 {
            let k = rng.next_u64();
            let v = (rng.below(20) as i64) - 5;
            if i % 2 == 0 {
                a.update(k, v);
            } else {
                b.update(k, v);
            }
            merged.update(k, v);
        }
        let combined = KarySketch::combine(&[(1.0, &a), (1.0, &b)]).unwrap();
        assert_eq!(combined.grid(), merged.grid());
        assert_eq!(combined.total(), merged.total());
    }

    #[test]
    fn combine_rejects_mismatched_seeds() {
        let a = small();
        let b = KarySketch::new(KaryConfig {
            stages: 5,
            buckets: 1 << 10,
            seed: 12,
        })
        .unwrap();
        assert_eq!(
            KarySketch::combine(&[(1.0, &a), (1.0, &b)]).unwrap_err(),
            SketchError::CombineMismatch
        );
        assert_eq!(
            KarySketch::combine(&[]).unwrap_err(),
            SketchError::CombineEmpty
        );
    }

    #[test]
    fn combine_with_coefficients() {
        let mut a = small();
        a.update(5, 10);
        let scaled = KarySketch::combine(&[(2.5, &a)]).unwrap();
        assert_eq!(scaled.raw_estimate(5), 25);
        assert_eq!(scaled.total(), 25);
    }

    #[test]
    fn clear_resets_state() {
        let mut s = small();
        s.update(1, 5);
        s.clear();
        assert_eq!(s.total(), 0);
        assert!(s.grid().is_zero());
    }

    #[test]
    fn premixed_update_matches_plain_update() {
        let mut plain = small();
        let mut premixed = small();
        let mut rng = SplitMix64::new(17);
        for _ in 0..2000 {
            let k = rng.next_u64();
            let v = (rng.below(9) as i64) - 4;
            plain.update(k, v);
            premixed.update_premixed(PairwiseHasher::premix(k), v);
        }
        assert_eq!(premixed.grid(), plain.grid());
        assert_eq!(premixed.total(), plain.total());
    }

    #[test]
    fn batched_update_matches_serial_update() {
        // Non-multiple-of-chunk batch length, mixed-sign deltas, and a
        // saturating cell: the batched path must be bit-identical.
        let mut serial = small();
        let mut batched = small();
        let mut rng = SplitMix64::new(23);
        let mut premixed = Vec::new();
        let mut deltas = Vec::new();
        for i in 0..(3 * 64 + 17) {
            let k = rng.next_u64();
            premixed.push(PairwiseHasher::premix(k));
            deltas.push(if i == 5 {
                i64::MAX
            } else {
                (rng.below(9) as i64) - 4
            });
        }
        for (&p, &d) in premixed.iter().zip(&deltas) {
            serial.update_premixed(p, d);
        }
        batched.update_batch_premixed(&premixed, &deltas);
        assert_eq!(batched.grid(), serial.grid());
        assert_eq!(batched.total(), serial.total());
        // Empty batch is a no-op.
        batched.update_batch_premixed(&[], &[]);
        assert_eq!(batched.grid(), serial.grid());
    }

    #[test]
    fn estimate_with_precomputed_sums_matches_estimate() {
        let mut s = small();
        let mut rng = SplitMix64::new(29);
        for _ in 0..3000 {
            s.update(rng.next_u64(), 1);
        }
        let sums = s.stage_sums(s.grid());
        for key in [0u64, 7777, u64::MAX, 42] {
            assert_eq!(
                s.estimate_grid_with_sums(s.grid(), key, &sums),
                s.estimate(key)
            );
        }
    }

    #[test]
    fn accesses_per_update_is_stage_count() {
        assert_eq!(small().accesses_per_update(), 5);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = small();
        s.update(123, 7);
        let json = serde_json::to_string(&s).unwrap();
        let back: KarySketch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.raw_estimate(123), 7);
    }
}
