//! Sketch data structures for high-speed network monitoring.
//!
//! This crate implements the three sketch variants HiFIND records traffic
//! with (paper Table 2 and §4):
//!
//! * [`KarySketch`] — the original k-ary sketch: `H` hash stages over `m`
//!   buckets, supporting `UPDATE`, `ESTIMATE` (median of per-stage unbiased
//!   estimators) and `COMBINE` (linear combination, the basis of multi-router
//!   aggregation).
//! * [`ReversibleSketch`] — a k-ary sketch whose stages use *modular
//!   hashing* over a *mangled* key so that `INFERENCE` can recover the heavy
//!   keys from the sketch alone, without ever storing keys.
//! * [`TwoDSketch`] — the paper's novel two-dimensional sketch: `H` hash
//!   matrices indexed by an x-key and a y-key; after detection, the column
//!   selected by a detected x-key reveals the *distribution* of the y
//!   dimension (concentrated → SYN flooding, dispersed → scan).
//!
//! All sketches are linear: `combine` of per-router sketches equals the
//! sketch of the merged traffic, which is what makes HiFIND robust to
//! asymmetric routing (paper §3.1, §5.3.2).
//!
//! # Example
//!
//! ```
//! use hifind_sketch::{ReversibleSketch, RsConfig, InferOptions};
//!
//! let cfg = RsConfig::paper_48bit(0xFEED);
//! let mut rs = ReversibleSketch::new(cfg).unwrap();
//! // One heavy key among background noise.
//! rs.update(0xABCD_1234_5678, 500);
//! for k in 0..1000 {
//!     rs.update(k, 1);
//! }
//! let result = rs.infer(100, &InferOptions::default());
//! assert!(result.keys.iter().any(|hk| hk.key == 0xABCD_1234_5678));
//! ```

// `deny` (not `forbid`) so the one vetted intrinsics module can opt back in
// with a scoped allow; the xtask `unsafe-perimeter` lint pins `unsafe` to
// exactly the files lint.toml names (crates/sketch/src/simd/avx2.rs here).
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod grid;
pub mod health;
pub mod kary;
pub mod reversible;
pub mod simd;
pub mod twod;

pub use fingerprint::ConfigDigest;
pub use grid::CounterGrid;
pub use health::{DriftStats, GridHealth, InferenceHealth, SketchHealth};
pub use kary::{KaryConfig, KarySketch};
pub use reversible::{
    HeavyKey, InferOptions, InferStats, InferenceResult, ReversibleSketch, RsConfig,
};
pub use simd::{Isa, RowMoments, SketchKernel};
pub use twod::{ColumnShape, TwoDConfig, TwoDSketch};

use std::fmt;

/// Errors shared by the sketch types.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SketchError {
    /// Invalid configuration (wraps the specific reason).
    BadConfig(String),
    /// Attempted to combine sketches with different configurations/seeds.
    CombineMismatch,
    /// Attempted to combine an empty list of sketches.
    CombineEmpty,
    /// Attempted to combine snapshots whose configuration fingerprints
    /// (shape **and** seed digests, see [`fingerprint`]) disagree. Unlike
    /// [`SketchError::CombineMismatch`] this also catches same-shape,
    /// different-seed recorders, which would otherwise sum counters of
    /// unrelated key sets into garbage estimates.
    FingerprintMismatch {
        /// The fingerprint of the combining side.
        expected: u64,
        /// The fingerprint that arrived.
        got: u64,
    },
}

impl fmt::Display for SketchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SketchError::BadConfig(why) => write!(f, "invalid sketch configuration: {why}"),
            SketchError::CombineMismatch => {
                f.write_str("sketches must share configuration and seed to be combined")
            }
            SketchError::CombineEmpty => f.write_str("cannot combine zero sketches"),
            SketchError::FingerprintMismatch { expected, got } => write!(
                f,
                "configuration fingerprint mismatch: expected {expected:#018x}, got {got:#018x} \
                 (recorders must share configuration and seed)"
            ),
        }
    }
}

impl std::error::Error for SketchError {}

/// Returns the median of a scratch slice (averaging the two middle elements
/// for even lengths, rounding toward zero).
///
/// # Panics
///
/// Panics if `values` is empty.
pub(crate) fn median_i64(values: &mut [i64]) -> i64 {
    assert!(!values.is_empty(), "median of empty slice");
    values.sort_unstable();
    let n = values.len();
    if n % 2 == 1 {
        values[n / 2]
    } else {
        let a = values[n / 2 - 1];
        let b = values[n / 2];
        // Average without overflow.
        a / 2 + b / 2 + (a % 2 + b % 2) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_even() {
        assert_eq!(median_i64(&mut [3, 1, 2]), 2);
        assert_eq!(median_i64(&mut [4, 1, 2, 3]), 2);
        assert_eq!(median_i64(&mut [5]), 5);
        assert_eq!(median_i64(&mut [-10, 10]), 0);
        assert_eq!(median_i64(&mut [i64::MAX, i64::MAX]), i64::MAX);
    }

    #[test]
    fn error_display_non_empty() {
        assert!(!SketchError::CombineMismatch.to_string().is_empty());
        assert!(SketchError::BadConfig("x".into()).to_string().contains('x'));
    }
}
