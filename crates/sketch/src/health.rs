//! Sketch health reporting: occupancy, saturation, estimate drift, and
//! inference success rate.
//!
//! These are the gauges the telemetry layer exposes per sketch so an
//! operator can tell *before* accuracy collapses that a sketch is
//! under-provisioned for the traffic mix (occupancy → 1), that an attack
//! is blowing out the counter range (rising saturation), or that the
//! reversible-sketch search is being truncated or over-filtered (falling
//! inference success rate).
//!
//! Everything here is plain measurement over [`CounterGrid`]s and
//! [`InferStats`] — no dependency on the telemetry crate, so callers can
//! embed [`SketchHealth`] in reports unconditionally. Enabling this
//! crate's `telemetry` feature additionally provides
//! [`register_health_gauges`] to publish the same numbers into a
//! [`hifind_telemetry::Registry`].

use crate::grid::CounterGrid;
use crate::reversible::{InferStats, ReversibleSketch};
use serde::{Deserialize, Serialize};

/// Point-in-time health of one counter grid.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GridHealth {
    /// Fraction of non-zero buckets per stage, in `[0, 1]`.
    pub stage_occupancy: Vec<f64>,
    /// Mean of [`GridHealth::stage_occupancy`].
    pub mean_occupancy: f64,
    /// Fraction of buckets at or above the saturation threshold.
    pub saturation: f64,
    /// The threshold used for [`GridHealth::saturation`].
    pub saturation_threshold: i64,
    /// Largest absolute counter value.
    pub max_abs: i64,
}

impl GridHealth {
    /// Measures `grid`, treating buckets at or above `saturation_threshold`
    /// as hot.
    pub fn measure(grid: &CounterGrid, saturation_threshold: i64) -> Self {
        let stage_occupancy = grid.occupancy();
        let mean_occupancy = if stage_occupancy.is_empty() {
            0.0
        } else {
            stage_occupancy.iter().sum::<f64>() / stage_occupancy.len() as f64
        };
        GridHealth {
            mean_occupancy,
            stage_occupancy,
            saturation: grid.saturation(saturation_threshold),
            saturation_threshold,
            max_abs: grid.max_abs(),
        }
    }
}

/// Estimate-vs-exact drift over a sample of keys.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct DriftStats {
    /// Number of `(key, exact)` samples compared.
    pub samples: usize,
    /// Mean of `|estimate - exact|`.
    pub mean_abs_error: f64,
    /// Mean of `|estimate - exact| / max(1, |exact|)`.
    pub mean_rel_error: f64,
    /// Largest absolute error seen.
    pub max_abs_error: i64,
}

impl DriftStats {
    /// Compares sketch estimates against exact counts for sampled keys.
    ///
    /// The caller supplies exact counts (e.g. from a sampled hash map kept
    /// alongside the sketch on a small fraction of the traffic); the sketch
    /// is queried for each key and the error distribution summarized.
    pub fn measure(sketch: &ReversibleSketch, exact: &[(u64, i64)]) -> Self {
        if exact.is_empty() {
            return DriftStats::default();
        }
        let mut abs_sum = 0.0;
        let mut rel_sum = 0.0;
        let mut max_abs = 0i64;
        for &(key, truth) in exact {
            let err = (sketch.estimate(key) - truth).abs();
            abs_sum += err as f64;
            rel_sum += err as f64 / truth.abs().max(1) as f64;
            max_abs = max_abs.max(err);
        }
        let n = exact.len() as f64;
        DriftStats {
            samples: exact.len(),
            mean_abs_error: abs_sum / n,
            mean_rel_error: rel_sum / n,
            max_abs_error: max_abs,
        }
    }
}

/// Outcome quality of reversible-sketch inference runs.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InferenceHealth {
    /// Keys that survived estimate and verifier filtering.
    pub accepted: usize,
    /// Candidates rejected by the estimate threshold.
    pub rejected_by_estimate: usize,
    /// Candidates rejected by the verification sketch.
    pub rejected_by_verifier: usize,
    /// Whether the candidate cap truncated the search.
    pub truncated: bool,
    /// `accepted / (accepted + rejected)`, or 1.0 when nothing was
    /// reconstructed at all (an empty search is not a failure).
    pub success_rate: f64,
}

impl InferenceHealth {
    /// Summarizes one inference run given its stats and accepted-key count.
    pub fn from_stats(stats: &InferStats, accepted: usize) -> Self {
        let rejected = stats.rejected_by_estimate + stats.rejected_by_verifier;
        let total = accepted + rejected;
        InferenceHealth {
            accepted,
            rejected_by_estimate: stats.rejected_by_estimate,
            rejected_by_verifier: stats.rejected_by_verifier,
            truncated: stats.truncated,
            success_rate: if total == 0 {
                1.0
            } else {
                accepted as f64 / total as f64
            },
        }
    }
}

/// Full health record for one named sketch.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct SketchHealth {
    /// Which sketch this describes (e.g. `"syn_by_src"`).
    pub sketch: String,
    /// Grid occupancy / saturation.
    pub grid: GridHealth,
    /// Estimate drift, when a drift sample was collected this interval.
    pub drift: Option<DriftStats>,
    /// Inference quality, when inference ran this interval.
    pub inference: Option<InferenceHealth>,
}

impl SketchHealth {
    /// Measures `grid` under `name` with no drift/inference data yet.
    pub fn measure(name: &str, grid: &CounterGrid, saturation_threshold: i64) -> Self {
        SketchHealth {
            sketch: name.to_string(),
            grid: GridHealth::measure(grid, saturation_threshold),
            drift: None,
            inference: None,
        }
    }
}

/// Publishes a [`SketchHealth`] into a telemetry registry as gauges.
///
/// Gauge names follow `hifind_sketch_<what>{ sketch }` flattened to
/// `hifind_sketch_<what>_<sketch>` since the minimal registry is
/// label-free. Fractions are scaled to parts-per-million so they fit the
/// integer gauge type.
///
/// # Errors
///
/// Propagates [`hifind_telemetry::TelemetryError`] if any gauge name is
/// already registered under a different metric kind.
#[cfg(feature = "telemetry")]
pub fn register_health_gauges(
    registry: &hifind_telemetry::Registry,
    health: &SketchHealth,
) -> Result<(), hifind_telemetry::TelemetryError> {
    let ppm = |f: f64| (f * 1e6) as i64;
    let name = &health.sketch;
    registry
        .gauge(
            &format!("hifind_sketch_occupancy_ppm_{name}"),
            "Mean fraction of non-zero sketch buckets, in ppm",
        )?
        .set(ppm(health.grid.mean_occupancy));
    registry
        .gauge(
            &format!("hifind_sketch_saturation_ppm_{name}"),
            "Fraction of sketch buckets at or above the detection threshold, in ppm",
        )?
        .set(ppm(health.grid.saturation));
    registry
        .gauge(
            &format!("hifind_sketch_max_abs_{name}"),
            "Largest absolute counter value in the sketch",
        )?
        .set(health.grid.max_abs);
    if let Some(drift) = &health.drift {
        registry
            .gauge(
                &format!("hifind_sketch_drift_rel_ppm_{name}"),
                "Mean relative estimate error over sampled keys, in ppm",
            )?
            .set(ppm(drift.mean_rel_error));
    }
    if let Some(inference) = &health.inference {
        registry
            .gauge(
                &format!("hifind_sketch_inference_success_ppm_{name}"),
                "Fraction of reconstructed keys surviving filtering, in ppm",
            )?
            .set(ppm(inference.success_rate));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reversible::RsConfig;

    #[test]
    fn grid_health_measures_occupancy_and_saturation() {
        let mut g = CounterGrid::new(2, 4);
        g.add(0, 0, 10);
        g.add(0, 1, 3);
        g.add(1, 2, -12);
        let h = GridHealth::measure(&g, 10);
        assert_eq!(h.stage_occupancy, vec![0.5, 0.25]);
        assert!((h.mean_occupancy - 0.375).abs() < 1e-12);
        // 2 of 8 buckets at |v| >= 10.
        assert!((h.saturation - 0.25).abs() < 1e-12);
        assert_eq!(h.max_abs, 12);
    }

    #[test]
    fn drift_stats_are_zero_for_exact_sketch() {
        let mut rs = ReversibleSketch::new(RsConfig::paper_48bit(7)).unwrap();
        rs.update(42, 100);
        let drift = DriftStats::measure(&rs, &[(42, 100)]);
        assert_eq!(drift.samples, 1);
        // A single key in an empty sketch estimates exactly.
        assert_eq!(drift.max_abs_error, 0);
        assert_eq!(drift.mean_abs_error, 0.0);
    }

    #[test]
    fn inference_health_success_rate() {
        let stats = InferStats {
            rejected_by_estimate: 2,
            rejected_by_verifier: 1,
            ..InferStats::default()
        };
        let h = InferenceHealth::from_stats(&stats, 7);
        assert!((h.success_rate - 0.7).abs() < 1e-12);
        let empty = InferenceHealth::from_stats(&InferStats::default(), 0);
        assert_eq!(empty.success_rate, 1.0);
    }

    #[test]
    fn sketch_health_serde_round_trip() {
        let mut g = CounterGrid::new(1, 2);
        g.add(0, 0, 5);
        let mut h = SketchHealth::measure("syn_by_src", &g, 4);
        h.inference = Some(InferenceHealth::from_stats(&InferStats::default(), 3));
        let json = serde_json::to_string(&h).unwrap();
        let back: SketchHealth = serde_json::from_str(&json).unwrap();
        assert_eq!(h, back);
    }
}
