//! Configuration fingerprints: a compact identity for "may these sketches
//! be combined?".
//!
//! Sketch linearity only holds between sketches built from the *same*
//! configuration: identical shapes **and** identical seeds (seeds select
//! the hash functions). Shape mismatches are caught structurally by
//! [`crate::CounterGrid::add_assign`], but two sketches with the same
//! shape and different seeds combine without complaint into garbage —
//! every bucket sums counts of unrelated key sets.
//!
//! A [`ConfigDigest`] folds every combining-relevant parameter (shapes,
//! seeds, options) into a single `u64` that travels with snapshots and
//! wire frames. Receivers compare fingerprints before combining and reject
//! mismatches with [`crate::SketchError::FingerprintMismatch`] instead of
//! silently producing wrong estimates — the failure mode the distributed
//! collector (one central site, many independently-configured routers)
//! makes likely in practice.

use crate::kary::KaryConfig;
use crate::reversible::RsConfig;
use crate::twod::TwoDConfig;

/// An FNV-1a (64-bit) accumulator over configuration words.
///
/// FNV is not cryptographic — the fingerprint guards against
/// *misconfiguration*, not against an adversary crafting a colliding
/// configuration (who could more simply replay valid frames).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ConfigDigest(u64);

impl Default for ConfigDigest {
    fn default() -> Self {
        ConfigDigest::new()
    }
}

impl ConfigDigest {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;

    /// A fresh digest at the FNV offset basis.
    pub fn new() -> Self {
        ConfigDigest(Self::OFFSET)
    }

    /// Folds one 64-bit word into the digest, byte by byte.
    pub fn write_u64(&mut self, word: u64) -> &mut Self {
        for b in word.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(Self::PRIME);
        }
        self
    }

    /// Folds a `usize` (as `u64`, so 32- and 64-bit hosts agree).
    pub fn write_usize(&mut self, v: usize) -> &mut Self {
        self.write_u64(v as u64)
    }

    /// Folds a boolean flag.
    pub fn write_bool(&mut self, v: bool) -> &mut Self {
        self.write_u64(u64::from(v))
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl RsConfig {
    /// Folds every combining-relevant field into `digest`.
    pub fn digest_into(&self, digest: &mut ConfigDigest) {
        digest
            .write_u64(0x5253) // domain tag "RS"
            .write_u64(u64::from(self.key_bits))
            .write_usize(self.stages)
            .write_usize(self.buckets)
            .write_u64(self.seed)
            .write_bool(self.mangle)
            .write_usize(self.verifier_buckets.map_or(0, |b| b + 1));
    }
}

impl KaryConfig {
    /// Folds every combining-relevant field into `digest`.
    pub fn digest_into(&self, digest: &mut ConfigDigest) {
        digest
            .write_u64(0x4B41) // domain tag "KA"
            .write_usize(self.stages)
            .write_usize(self.buckets)
            .write_u64(self.seed);
    }
}

impl TwoDConfig {
    /// Folds every combining-relevant field into `digest`.
    pub fn digest_into(&self, digest: &mut ConfigDigest) {
        digest
            .write_u64(0x3244) // domain tag "2D"
            .write_usize(self.stages)
            .write_usize(self.x_buckets)
            .write_usize(self.y_buckets)
            .write_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rs_fp(cfg: &RsConfig) -> u64 {
        let mut d = ConfigDigest::new();
        cfg.digest_into(&mut d);
        d.finish()
    }

    #[test]
    fn identical_configs_agree() {
        let a = RsConfig::paper_48bit(7);
        let b = RsConfig::paper_48bit(7);
        assert_eq!(rs_fp(&a), rs_fp(&b));
    }

    #[test]
    fn seed_change_changes_fingerprint() {
        // The garbage-combine case the shape checks cannot catch.
        assert_ne!(
            rs_fp(&RsConfig::paper_48bit(1)),
            rs_fp(&RsConfig::paper_48bit(2))
        );
    }

    #[test]
    fn shape_change_changes_fingerprint() {
        let a = RsConfig::paper_48bit(1);
        let mut b = a;
        b.buckets <<= 1;
        assert_ne!(rs_fp(&a), rs_fp(&b));
        let mut c = a;
        c.verifier_buckets = None;
        assert_ne!(rs_fp(&a), rs_fp(&c));
        let mut d = a;
        d.mangle = !d.mangle;
        assert_ne!(rs_fp(&a), rs_fp(&d));
    }

    #[test]
    fn kary_and_twod_digests_differ_by_field() {
        let mut d1 = ConfigDigest::new();
        KaryConfig::paper_os(3).digest_into(&mut d1);
        let mut d2 = ConfigDigest::new();
        KaryConfig::paper_os(4).digest_into(&mut d2);
        assert_ne!(d1.finish(), d2.finish());

        let mut t1 = ConfigDigest::new();
        TwoDConfig::paper(3).digest_into(&mut t1);
        let mut t2 = ConfigDigest::new();
        let mut cfg = TwoDConfig::paper(3);
        cfg.y_buckets += 1;
        cfg.digest_into(&mut t2);
        assert_ne!(t1.finish(), t2.finish());
    }

    #[test]
    fn digest_order_matters() {
        // Folding the same words in a different order must not collide —
        // the digest is a sequence hash, not a set hash.
        let a = ConfigDigest::new().write_u64(1).write_u64(2).finish();
        let b = ConfigDigest::new().write_u64(2).write_u64(1).finish();
        assert_ne!(a, b);
    }
}
