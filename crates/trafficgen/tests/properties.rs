//! Property-based tests for the traffic generator.

use hifind_flow::SegmentKind;
use hifind_trafficgen::splitter::{split_per_flow, split_per_packet};
use hifind_trafficgen::{BackgroundProfile, EventSpec, NetworkModel, Scenario};
use proptest::prelude::*;

fn tiny_scenario(seed: u64, conn_rate: f64, flood_pps: f64) -> Scenario {
    let net = NetworkModel::campus();
    let victim = net.server(0);
    Scenario {
        name: "prop".into(),
        network: net,
        background: BackgroundProfile {
            connections_per_sec: conn_rate,
            ..BackgroundProfile::default()
        },
        events: vec![EventSpec::SynFlood {
            attacker: None,
            victim,
            port: 80,
            pps: flood_pps,
            start_ms: 30_000,
            duration_ms: 60_000,
            respond_prob: 0.0,
            label: "flood".into(),
        }],
        duration_ms: 120_000,
        seed,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Scenario generation is a pure function of its description.
    #[test]
    fn generation_is_deterministic(seed in any::<u64>(), rate in 1.0f64..50.0, pps in 5.0f64..100.0) {
        let s = tiny_scenario(seed, rate, pps);
        let (t1, g1) = s.generate();
        let (t2, g2) = s.generate();
        prop_assert_eq!(t1, t2);
        prop_assert_eq!(g1, g2);
    }

    /// Generated traces are time-ordered and confined to the configured
    /// window (plus bounded retry/teardown tails).
    #[test]
    fn traces_are_ordered_and_bounded(seed in any::<u64>(), rate in 1.0f64..50.0) {
        let s = tiny_scenario(seed, rate, 20.0);
        let (trace, _) = s.generate();
        prop_assert!(trace.is_time_ordered());
        let limit = s.duration_ms + 40_000; // retry backoff tail
        prop_assert!(trace.iter().all(|p| p.ts_ms < limit));
    }

    /// Every SYN targets the monitored edge network; responses come from
    /// inside it.
    #[test]
    fn traffic_respects_edge_topology(seed in any::<u64>()) {
        let s = tiny_scenario(seed, 20.0, 20.0);
        let (trace, _) = s.generate();
        for p in trace.iter() {
            match p.kind {
                SegmentKind::Syn => {
                    prop_assert!(s.network.is_internal(p.dst));
                    prop_assert!(!s.network.is_internal(p.src));
                }
                SegmentKind::SynAck | SegmentKind::Rst => {
                    prop_assert!(s.network.is_internal(p.src));
                }
                _ => {}
            }
        }
    }

    /// Truth packet counts match the injected events' actual contribution:
    /// total trace size ≥ sum of event packets.
    #[test]
    fn truth_accounts_for_injected_packets(seed in any::<u64>(), pps in 10.0f64..200.0) {
        let s = tiny_scenario(seed, 5.0, pps);
        let (trace, truth) = s.generate();
        let injected: u64 = truth.iter().map(|e| e.packets).sum();
        prop_assert!(injected > 0);
        prop_assert!(trace.len() as u64 >= injected);
    }

    /// Splitters partition the trace exactly, regardless of router count.
    #[test]
    fn splits_partition(seed in any::<u64>(), routers in 1usize..8) {
        let s = tiny_scenario(seed, 20.0, 20.0);
        let (trace, _) = s.generate();
        for parts in [split_per_packet(&trace, routers, seed), split_per_flow(&trace, routers, seed)] {
            let total: usize = parts.iter().map(|t| t.len()).sum();
            prop_assert_eq!(total, trace.len());
            prop_assert_eq!(parts.len(), routers);
        }
    }

    /// Scaling by 1.0 changes nothing except clamped minimums.
    #[test]
    fn scale_identity(seed in any::<u64>()) {
        let s = tiny_scenario(seed, 20.0, 20.0);
        let scaled = s.scaled(1.0);
        prop_assert_eq!(s.background.connections_per_sec, scaled.background.connections_per_sec);
        prop_assert_eq!(s.duration_ms, scaled.duration_ms);
    }
}
