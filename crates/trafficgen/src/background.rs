//! Benign background traffic generation.

use crate::model::{BackgroundProfile, NetworkModel};
use hifind_flow::rng::{SplitMix64, Zipf};
use hifind_flow::{Packet, Trace};

/// Generates benign background connections over `[0, duration_ms)`.
///
/// Each connection is an inbound SYN from an external client to a
/// popularity-weighted internal server/port; depending on the profile it is
/// answered with a SYN/ACK (possibly followed by a FIN), refused with an
/// RST, or lost (in which case the client retransmits a few SYNs — exactly
/// the benign unanswered-SYN noise the detectors must not trip on).
pub fn generate_background(
    net: &NetworkModel,
    profile: &BackgroundProfile,
    duration_ms: u64,
    rng: &mut SplitMix64,
) -> Trace {
    let mut trace = Trace::new();
    if profile.connections_per_sec <= 0.0 || duration_ms == 0 {
        return trace;
    }
    let server_zipf = Zipf::new(net.server_count as usize, profile.server_zipf_alpha);
    let port_zipf = Zipf::new(net.service_ports.len(), profile.port_zipf_alpha);
    let diurnal = profile.diurnal_amplitude.clamp(0.0, 0.99);
    // Arrivals are sampled at the *peak* rate and thinned to the
    // instantaneous rate (inhomogeneous-Poisson thinning); with zero
    // amplitude this degenerates to the plain homogeneous process.
    let peak_gap_ms = 1000.0 / (profile.connections_per_sec * (1.0 + diurnal));
    let mut t = rng.exp_gap(peak_gap_ms);
    while (t as u64) < duration_ms {
        let ts = t as u64;
        if diurnal > 0.0 {
            let phase = ts as f64 / profile.diurnal_period_ms.max(1) as f64 * std::f64::consts::TAU;
            let relative = (1.0 + diurnal * phase.sin()) / (1.0 + diurnal);
            if !rng.chance(relative) {
                t += rng.exp_gap(peak_gap_ms);
                continue;
            }
        }
        let client = net.external_client(rng);
        let cport = 1024 + rng.below(64512) as u16;
        let server = net.server(server_zipf.sample(rng) as u32);
        let sport = net.service_ports[port_zipf.sample(rng)];
        trace.push(Packet::syn(ts, client, cport, server, sport));
        let roll = rng.f64();
        if roll < profile.failure_prob {
            // Unanswered: client retransmits with backoff.
            let retries = rng.below(profile.max_retries as u64 + 1);
            let mut rt = ts;
            for r in 0..retries {
                rt += 3000 << r; // 3s, 6s, 12s backoff
                if rt < duration_ms {
                    trace.push(Packet::syn(rt, client, cport, server, sport));
                }
            }
        } else if roll < profile.failure_prob + profile.rst_prob {
            let delay = rng.range(profile.synack_delay_ms.0, profile.synack_delay_ms.1 + 1);
            trace.push(Packet::rst(ts + delay, client, cport, server, sport));
        } else {
            let delay = rng.range(profile.synack_delay_ms.0, profile.synack_delay_ms.1 + 1);
            trace.push(Packet::syn_ack(ts + delay, client, cport, server, sport));
            if rng.chance(profile.fin_prob) {
                let fin_at = ts + delay + rng.below(30_000);
                if fin_at < duration_ms {
                    trace.push(Packet::fin(fin_at, client, cport, server, sport));
                }
            }
        }
        t += rng.exp_gap(peak_gap_ms);
    }
    trace.sort_by_time();
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::SegmentKind;

    fn gen(seed: u64) -> Trace {
        generate_background(
            &NetworkModel::campus(),
            &BackgroundProfile::default(),
            60_000,
            &mut SplitMix64::new(seed),
        )
    }

    #[test]
    fn rate_is_respected() {
        let t = gen(1);
        let stats = t.stats();
        // 300 conn/s for 60s: SYN count within 3x window either way
        // (retransmissions add, failures subtract nothing).
        assert!(
            (10_000..30_000).contains(&stats.syn),
            "unexpected SYN count {}",
            stats.syn
        );
    }

    #[test]
    fn most_connections_complete() {
        let t = gen(2);
        let s = t.stats();
        let ratio = s.syn_ack as f64 / s.syn as f64;
        assert!(
            ratio > 0.9,
            "completion ratio {ratio} too low for benign traffic"
        );
    }

    #[test]
    fn is_deterministic() {
        assert_eq!(gen(7), gen(7));
        assert_ne!(gen(7), gen(8));
    }

    #[test]
    fn time_ordered_and_bounded() {
        let t = gen(3);
        assert!(t.is_time_ordered());
        assert!(t.iter().all(|p| p.ts_ms < 60_000 + 30_000 + 200));
    }

    #[test]
    fn syns_go_to_internal_servers() {
        let net = NetworkModel::campus();
        let t = gen(4);
        for p in t.iter().filter(|p| p.kind == SegmentKind::Syn) {
            assert!(net.is_internal(p.dst));
            assert!(!net.is_internal(p.src));
            assert!(net.service_ports.contains(&p.dport));
        }
    }

    #[test]
    fn zero_rate_or_duration_is_empty() {
        let net = NetworkModel::lab();
        let profile = BackgroundProfile {
            connections_per_sec: 0.0,
            ..Default::default()
        };
        let t = generate_background(&net, &profile, 60_000, &mut SplitMix64::new(0));
        assert!(t.is_empty());
        let t = generate_background(
            &net,
            &BackgroundProfile::default(),
            0,
            &mut SplitMix64::new(0),
        );
        assert!(t.is_empty());
    }

    #[test]
    fn diurnal_modulation_shapes_the_rate() {
        let net = NetworkModel::campus();
        let mut profile = BackgroundProfile {
            connections_per_sec: 100.0,
            diurnal_amplitude: 0.8,
            diurnal_period_ms: 200_000,
            ..BackgroundProfile::default()
        };
        let t = generate_background(&net, &profile, 200_000, &mut SplitMix64::new(9));
        // First quarter-period (rising sine, rate ≈ 1+0.8·sin) should be
        // markedly busier than the third quarter (rate ≈ 1−0.8·sin).
        let q1 = t
            .iter()
            .filter(|p| p.kind == SegmentKind::Syn && p.ts_ms < 50_000)
            .count();
        let q3 = t
            .iter()
            .filter(|p| p.kind == SegmentKind::Syn && (100_000..150_000).contains(&p.ts_ms))
            .count();
        assert!(
            q1 as f64 > q3 as f64 * 1.5,
            "rising phase {q1} should outweigh falling phase {q3}"
        );
        // With zero amplitude the quarters balance.
        profile.diurnal_amplitude = 0.0;
        let flat = generate_background(&net, &profile, 200_000, &mut SplitMix64::new(9));
        let f1 = flat.iter().filter(|p| p.ts_ms < 50_000).count();
        let f3 = flat
            .iter()
            .filter(|p| (100_000..150_000).contains(&p.ts_ms))
            .count();
        let ratio = f1 as f64 / f3.max(1) as f64;
        assert!((0.7..1.4).contains(&ratio), "flat profile skewed: {ratio}");
    }

    #[test]
    fn unanswered_rate_stays_low_per_service() {
        // The per-{DIP,Dport} unanswered-SYN rate must stay well under the
        // paper's one-per-second detection threshold for benign traffic.
        use std::collections::HashMap;
        let t = gen(5);
        let mut unanswered: HashMap<(u32, u16), i64> = HashMap::new();
        for p in t.iter() {
            let o = p.orient().unwrap();
            *unanswered
                .entry((o.server.raw(), o.server_port))
                .or_insert(0) += o.syn_minus_synack();
        }
        let worst = unanswered.values().copied().max().unwrap_or(0);
        assert!(
            worst < 60,
            "benign service accumulated {worst} unanswered SYNs in one minute"
        );
    }
}
