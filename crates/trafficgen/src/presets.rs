//! Preset scenarios standing in for the paper's NU and LBL traces.
//!
//! The paper's workloads are not public; these presets reproduce their
//! *composition* at a documented scale (DESIGN.md §5):
//!
//! * [`nu_like`] — campus-style mix: real SYN floodings (spoofed, direct,
//!   and threshold-boundary ones), a Hscan population bracketing Tables 7–8
//!   (SQLSnake, SSH, MySQL-bot, Rahack at the top; MSBlast/Sasser/NetBIOS
//!   worm scans at the bottom), vertical scans, plus the benign
//!   false-positive sources §3.4 targets (congestion episodes, stale-DNS
//!   misconfigurations, flash crowds).
//! * [`lbl_like`] — lab-style mix: **zero** true floodings but heavy
//!   scanning and congestion noise, the workload on which CPM's aggregate
//!   change-point detection false-alarms (Table 6) while HiFIND reports
//!   nothing after phase 3.
//!
//! Counts are scaled from the paper (hundreds of scans rather than ~1000)
//! so a full run stays laptop-sized; use [`Scenario::scaled`] to shrink
//! further for unit tests.

use crate::events::EventSpec;
use crate::model::{BackgroundProfile, NetworkModel};
use crate::scenario::Scenario;
use hifind_flow::rng::SplitMix64;
use hifind_flow::Ip4;

/// Duration of both presets: 30 simulated minutes.
pub const PRESET_DURATION_MS: u64 = 30 * 60 * 1000;

fn external(rng: &mut SplitMix64) -> Ip4 {
    // Attacker addresses: stable random externals.
    Ip4::new(0x3000_0000 | rng.next_u32() & 0x0FFF_FFFF)
}

/// The NU-like campus scenario (paper Table 4 upper half, Tables 5–8).
pub fn nu_like(seed: u64) -> Scenario {
    let net = NetworkModel::campus();
    let mut rng = SplitMix64::new(seed ^ 0x4E55);
    let mut events = Vec::new();
    let dur = PRESET_DURATION_MS;

    // --- True SYN floodings -------------------------------------------
    // Spoofed floods: high-rate, long-lived, distinct victims.
    for i in 0..6u32 {
        events.push(EventSpec::SynFlood {
            attacker: None,
            victim: net.server(i),
            port: [80u16, 443, 25, 80, 22, 8080][i as usize],
            pps: 120.0 + 40.0 * i as f64,
            start_ms: 120_000 + 120_000 * i as u64,
            duration_ms: 360_000,
            respond_prob: 0.02,
            label: format!("spoofed SYN flood #{i}"),
        });
    }
    // Direct (non-spoofed) floods.
    for i in 0..8u32 {
        events.push(EventSpec::SynFlood {
            attacker: Some(external(&mut rng)),
            victim: net.server(20 + i),
            port: [80u16, 80, 443, 6667, 80, 443, 25, 8080][i as usize],
            pps: 60.0 + 25.0 * i as f64,
            start_ms: 60_000 * (2 + i as u64),
            duration_ms: 300_000,
            respond_prob: 0.03,
            label: format!("direct SYN flood #{i}"),
        });
    }
    // Threshold-boundary direct floods: rates straddling the one-per-
    // second threshold. These generate the raw scan false positives that
    // the 2D sketch (phase 2) reclassifies, and the "threshold boundary
    // effect" misses of §5.4.
    for i in 0..10u32 {
        events.push(EventSpec::SynFlood {
            attacker: Some(external(&mut rng)),
            victim: net.server(40 + i),
            port: 80,
            pps: 0.9 + 0.08 * i as f64, // 54..97 SYN/minute
            start_ms: 300_000,
            duration_ms: 600_000,
            respond_prob: 0.0,
            label: format!("boundary SYN flood #{i}"),
        });
    }

    // --- Horizontal scans (Tables 7 & 8) -------------------------------
    // Top-5: large worm/botnet sweeps (victim counts scaled ~1:20 from the
    // paper's 56k..24k).
    let top = [
        (1433u16, 2800u32, "SQLSnake scan"),
        (22, 2250, "Scan SSH"),
        (3306, 1300, "MySQL Bot scans"),
        (6101, 1230, "Unknown scan"),
        (4899, 1180, "Rahack worm"),
    ];
    for (i, (port, victims, label)) in top.iter().enumerate() {
        // Large campaigns start after the forecast warm-up and run hot, so
        // they dominate the change-difference ranking of Table 7 at any
        // scale.
        let start_ms = 150_000 + 60_000 * i as u64;
        events.push(EventSpec::HScan {
            attacker: external(&mut rng),
            dport: *port,
            victims: *victims,
            pps: 20.0 - 2.0 * i as f64,
            start_ms,
            duration_ms: dur - start_ms,
            hit_prob: 0.01,
            rst_prob: 0.08,
            label: (*label).into(),
        });
    }
    // Bottom-5: minimal worm probes that just cross the threshold
    // (64-ish targets in under a minute).
    let bottom = [
        (135u16, 64u32, "Nachi or MSBlast worm"),
        (445, 64, "Sasser and Korgo worm"),
        (139, 64, "NetBIOS scan"),
        (135, 64, "Nachi or MSBlast worm"),
        (5554, 62, "Sasser worm"),
    ];
    for (i, (port, victims, label)) in bottom.iter().enumerate() {
        events.push(EventSpec::HScan {
            attacker: external(&mut rng),
            dport: *port,
            victims: *victims,
            pps: 2.0,
            start_ms: 240_000 + 90_000 * i as u64,
            duration_ms: 60_000,
            hit_prob: 0.0,
            rst_prob: 0.05,
            label: (*label).into(),
        });
    }
    // Medium population: generic worm scans.
    let worm_ports = [135u16, 445, 139, 1025, 2745, 3127, 5000, 6129, 17300, 27374];
    for i in 0..30u32 {
        events.push(EventSpec::HScan {
            attacker: external(&mut rng),
            dport: worm_ports[i as usize % worm_ports.len()],
            victims: 200 + 40 * i,
            pps: 2.0 + (i % 5) as f64,
            start_ms: 90_000 + 20_000 * (i as u64 % 40),
            duration_ms: dur / 2,
            hit_prob: 0.01,
            rst_prob: 0.1,
            label: format!(
                "worm scan #{i} (port {})",
                worm_ports[i as usize % worm_ports.len()]
            ),
        });
    }
    // HiFIND-favoured scans: a small majority of probes succeed, so TRW's
    // likelihood walk drifts toward "benign" while the unanswered minority
    // still crosses HiFIND's per-interval threshold (paper §5.3.1, scans
    // HiFIND finds but TRW misses).
    for i in 0..4u32 {
        events.push(EventSpec::HScan {
            attacker: external(&mut rng),
            dport: 80,
            victims: 2500,
            pps: 4.0,
            start_ms: 100_000 + 50_000 * i as u64,
            duration_ms: dur / 2,
            hit_prob: 0.58,
            rst_prob: 0.05,
            label: format!("half-successful scan #{i}"),
        });
    }
    // TRW-favoured scans: sustained but below HiFIND's per-interval
    // threshold (30 probes/minute); TRW accumulates evidence across the
    // whole trace.
    for i in 0..3u32 {
        events.push(EventSpec::HScan {
            attacker: external(&mut rng),
            dport: 23,
            victims: 900,
            pps: 0.5,
            start_ms: 0,
            duration_ms: dur,
            hit_prob: 0.0,
            rst_prob: 0.05,
            label: format!("stealthy slow scan #{i}"),
        });
    }

    // --- Vertical scans -------------------------------------------------
    for i in 0..8u32 {
        let (lo, hi): (u16, u16) = if i % 2 == 0 { (1, 1024) } else { (1, 6000) };
        events.push(EventSpec::VScan {
            attacker: external(&mut rng),
            victim: net.server(60 + i),
            port_lo: lo,
            port_hi: hi,
            pps: 4.0 + i as f64,
            start_ms: 60_000 * i as u64,
            open_ports: vec![22, 80, 443],
            label: format!("vertical scan #{i} (trojan/backdoor sweep)"),
        });
    }

    // --- Benign false-positive sources (phase 2/3 fodder) ---------------
    // Short congestion episodes on busy servers: raw flooding alerts that
    // the persistence/ratio filter must drop.
    for i in 0..12u32 {
        events.push(EventSpec::Congestion {
            server: net.server(i % 16),
            port: [80u16, 443, 25, 110][i as usize % 4],
            pps: 2.0 + (i % 4) as f64,
            start_ms: 90_000 + 130_000 * i as u64 % dur,
            duration_ms: 90_000,
        });
    }
    // Stale-DNS misconfigurations: dead targets, dropped by the
    // active-service filter. Two of them spray several ports, producing
    // raw vscan-ish noise for phase 2.
    for i in 0..6u32 {
        events.push(EventSpec::Misconfig {
            target: net.dead_address(i),
            port: 80,
            clients: 3 + i,
            pps: 1.4,
            start_ms: 0,
            duration_ms: dur,
        });
    }
    for i in 0..2u32 {
        for port in [8080u16, 8000, 8888] {
            events.push(EventSpec::Misconfig {
                target: net.dead_address(20 + i),
                port,
                clients: 2,
                pps: 0.7,
                start_ms: 0,
                duration_ms: dur,
            });
        }
    }
    // Flash crowds: legitimate surges, mostly answered.
    for i in 0..2u32 {
        events.push(EventSpec::FlashCrowd {
            server: net.server(2 + i),
            port: 80,
            pps: 250.0,
            start_ms: 600_000 + 300_000 * i as u64,
            duration_ms: 180_000,
            drop_prob: 0.12,
        });
    }

    Scenario {
        name: "nu-like".into(),
        network: net,
        background: BackgroundProfile {
            connections_per_sec: 300.0,
            ..BackgroundProfile::default()
        },
        events,
        duration_ms: dur,
        seed,
    }
}

/// The LBL-like lab scenario (paper Table 4 lower half): scans everywhere,
/// **no** true SYN flooding, plus congestion noise that fools aggregate
/// detectors like CPM.
pub fn lbl_like(seed: u64) -> Scenario {
    let net = NetworkModel::lab();
    let mut rng = SplitMix64::new(seed ^ 0x4C_42_4C);
    let mut events = Vec::new();
    let dur = PRESET_DURATION_MS;

    let worm_ports = [135u16, 445, 139, 1433, 22, 3306, 5554, 9898, 1023, 5000];
    for i in 0..25u32 {
        events.push(EventSpec::HScan {
            attacker: external(&mut rng),
            dport: worm_ports[i as usize % worm_ports.len()],
            victims: 150 + 120 * i,
            pps: 2.0 + (i % 6) as f64,
            start_ms: 30_000 * (i as u64 % 30),
            duration_ms: dur * 3 / 4,
            hit_prob: 0.005,
            rst_prob: 0.12,
            label: format!(
                "lab scan #{i} (port {})",
                worm_ports[i as usize % worm_ports.len()]
            ),
        });
    }
    // The single validated vertical scan of §5.4.2: well-known web-proxy
    // ports.
    events.push(EventSpec::VScan {
        attacker: external(&mut rng),
        victim: net.server(7),
        port_lo: 1,
        port_hi: 8500,
        pps: 9.0,
        start_ms: 300_000,
        open_ports: vec![81, 8000, 8001, 8081],
        label: "HTTPS/HTTP-proxy vertical scan".into(),
    });
    // Congestion + misconfig noise: produces the 35 raw flooding alerts of
    // Table 4 that all die in phase 3 (LBL has no true flooding).
    for i in 0..10u32 {
        events.push(EventSpec::Congestion {
            server: net.server(i % 12),
            port: [80u16, 443, 8000][i as usize % 3],
            pps: 2.0 + (i % 3) as f64,
            start_ms: 60_000 + 150_000 * i as u64 % dur,
            duration_ms: 80_000,
        });
    }
    for i in 0..5u32 {
        events.push(EventSpec::Misconfig {
            target: net.dead_address(i),
            port: [80u16, 8080, 22, 80, 443][i as usize],
            clients: 2 + i,
            pps: 1.3,
            start_ms: 0,
            duration_ms: dur,
        });
    }

    Scenario {
        name: "lbl-like".into(),
        network: net,
        background: BackgroundProfile {
            connections_per_sec: 200.0,
            server_zipf_alpha: 0.9,
            ..BackgroundProfile::default()
        },
        events,
        duration_ms: dur,
        seed,
    }
}

/// A focused DoS-resilience scenario (paper §3.5): a massive spoofed flood
/// runs concurrently with one real horizontal scan; a resilient IDS keeps
/// detecting the scan, a per-source state table drowns.
pub fn dos_resilience(seed: u64) -> Scenario {
    let net = NetworkModel::campus();
    let mut rng = SplitMix64::new(seed ^ 0xD05);
    let scan_attacker = external(&mut rng);
    Scenario {
        name: "dos-resilience".into(),
        network: net.clone(),
        background: BackgroundProfile {
            connections_per_sec: 150.0,
            ..BackgroundProfile::default()
        },
        events: vec![
            // The smokescreen: IP-spoofed flood, fresh source per packet,
            // aimed at random destinations inside the edge — exactly the
            // paper's TRW-AC cache-pollution attack (1667 pps).
            EventSpec::SynFlood {
                attacker: None,
                victim: net.server(0),
                port: 80,
                pps: 1667.0,
                start_ms: 0,
                duration_ms: PRESET_DURATION_MS / 3,
                respond_prob: 0.0,
                label: "spoofed smokescreen flood".into(),
            },
            // The real attack that must not be masked.
            EventSpec::HScan {
                attacker: scan_attacker,
                dport: 445,
                victims: 3000,
                pps: 5.0,
                start_ms: 60_000,
                duration_ms: PRESET_DURATION_MS / 3,
                hit_prob: 0.01,
                rst_prob: 0.1,
                label: "real scan under smokescreen".into(),
            },
        ],
        duration_ms: PRESET_DURATION_MS / 3,
        seed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::EventClass;

    #[test]
    fn nu_like_composition() {
        let s = nu_like(1);
        let (_, truth) = s.scaled(0.02).generate();
        assert!(truth.of_class(EventClass::SynFloodSpoofed).count() >= 5);
        assert!(truth.of_class(EventClass::SynFloodDirect).count() >= 15);
        assert!(truth.of_class(EventClass::HScan).count() >= 40);
        assert!(truth.of_class(EventClass::VScan).count() == 8);
        assert!(truth.of_class(EventClass::Congestion).count() == 12);
        assert!(truth.benign().count() >= 20);
    }

    #[test]
    fn lbl_like_has_no_flooding() {
        let (_, truth) = lbl_like(2).scaled(0.02).generate();
        assert_eq!(
            truth.iter().filter(|e| e.class.is_flooding()).count(),
            0,
            "LBL-like must contain zero true floodings"
        );
        assert!(truth.of_class(EventClass::HScan).count() >= 20);
        assert_eq!(truth.of_class(EventClass::VScan).count(), 1);
        assert!(truth.of_class(EventClass::Congestion).count() >= 5);
    }

    #[test]
    fn presets_are_deterministic() {
        assert_eq!(nu_like(7), nu_like(7));
        assert_eq!(lbl_like(7), lbl_like(7));
        assert_ne!(nu_like(7).generate().0, nu_like(8).generate().0);
    }

    #[test]
    fn dos_resilience_pairs_flood_and_scan() {
        let (trace, truth) = dos_resilience(3).scaled(0.05).generate();
        assert_eq!(truth.of_class(EventClass::SynFloodSpoofed).count(), 1);
        assert_eq!(truth.of_class(EventClass::HScan).count(), 1);
        assert!(trace.len() > 1000);
    }

    #[test]
    fn scaled_nu_generates_reasonable_volume() {
        let (trace, _) = nu_like(4).scaled(0.02).generate();
        // 2% of the full preset: tens of thousands of packets.
        assert!(
            (10_000..400_000).contains(&trace.len()),
            "unexpected trace size {}",
            trace.len()
        );
        assert!(trace.is_time_ordered());
    }
}
