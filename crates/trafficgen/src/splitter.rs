//! Multi-router traffic splitting (paper Figure 3 / §5.3.2).
//!
//! To evaluate aggregated detection under asymmetric and multi-path
//! routing, the paper splits a single edge trace across three routers
//! *per packet*, so a connection's SYN and its SYN/ACK have a 2/3 chance of
//! traversing different routers. [`split_per_packet`] reproduces exactly
//! that: uniform, independent, per-packet router assignment.

use hifind_flow::rng::SplitMix64;
use hifind_flow::Trace;

/// Splits a trace across `routers` edge routers with independent uniform
/// per-packet assignment.
///
/// # Panics
///
/// Panics if `routers == 0`.
pub fn split_per_packet(trace: &Trace, routers: usize, seed: u64) -> Vec<Trace> {
    assert!(routers > 0, "need at least one router");
    let mut rng = SplitMix64::new(seed);
    let mut out = vec![Trace::new(); routers];
    for p in trace.iter() {
        out[rng.below(routers as u64) as usize].push(*p);
    }
    out
}

/// Splits a trace across routers *per flow* (hash of the 4-tuple), modelling
/// flow-sticky load balancing — the easier case the paper contrasts with.
pub fn split_per_flow(trace: &Trace, routers: usize, seed: u64) -> Vec<Trace> {
    assert!(routers > 0, "need at least one router");
    let mut out = vec![Trace::new(); routers];
    for p in trace.iter() {
        let o = p.orient().expect("all TCP segments orient");
        // Canonical flow identity so SYN and SYN/ACK land together.
        let id = (o.client.raw() as u64) << 32
            ^ (o.server.raw() as u64)
            ^ (o.client_port as u64) << 48
            ^ (o.server_port as u64) << 16;
        let mut h = SplitMix64::new(seed ^ id);
        out[h.below(routers as u64) as usize].push(*p);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::{Packet, SegmentKind};

    fn sample() -> Trace {
        let mut t = Trace::new();
        for i in 0..3000u64 {
            let client = [1, 1, (i >> 8) as u8, i as u8].into();
            let server = [129, 105, 0, 1].into();
            t.push(Packet::syn(i, client, 2000 + (i % 100) as u16, server, 80));
            t.push(Packet::syn_ack(
                i + 1,
                client,
                2000 + (i % 100) as u16,
                server,
                80,
            ));
        }
        t.sort_by_time();
        t
    }

    #[test]
    fn per_packet_split_partitions_trace() {
        let t = sample();
        let parts = split_per_packet(&t, 3, 7);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Trace::len).sum();
        assert_eq!(total, t.len());
        // Roughly even split.
        for p in &parts {
            let share = p.len() as f64 / t.len() as f64;
            assert!((0.25..0.42).contains(&share), "share {share}");
        }
    }

    #[test]
    fn per_packet_split_separates_flows() {
        // The point of the exercise: many SYNs land on a different router
        // than their SYN/ACK.
        let t = sample();
        let parts = split_per_packet(&t, 3, 8);
        // Count connections whose SYN and SYN/ACK are in different parts.
        let mut separated = 0;
        let mut total = 0;
        for (i, p) in t.iter().enumerate() {
            if p.kind == SegmentKind::Syn {
                let syn_router = parts
                    .iter()
                    .position(|part| part.iter().any(|q| q == p))
                    .unwrap();
                // SYN/ACK is the next packet in the sample trace.
                let ack = t.as_slice()[i + 1];
                let ack_router = parts
                    .iter()
                    .position(|part| part.iter().any(|q| *q == ack))
                    .unwrap();
                total += 1;
                if syn_router != ack_router {
                    separated += 1;
                }
                if total >= 200 {
                    break;
                }
            }
        }
        let frac = separated as f64 / total as f64;
        assert!(
            (0.5..0.85).contains(&frac),
            "expected ~2/3 separated, got {frac}"
        );
    }

    #[test]
    fn per_flow_split_keeps_flows_together() {
        let t = sample();
        let parts = split_per_flow(&t, 3, 9);
        let total: usize = parts.iter().map(Trace::len).sum();
        assert_eq!(total, t.len());
        // Every SYN/ACK shares a router with its SYN: check by orienting.
        for part in &parts {
            for p in part.iter().filter(|p| p.kind == SegmentKind::SynAck) {
                let o = p.orient().unwrap();
                let has_syn = part.iter().any(|q| {
                    q.kind == SegmentKind::Syn
                        && q.orient().unwrap().client == o.client
                        && q.orient().unwrap().client_port == o.client_port
                });
                assert!(has_syn, "orphan SYN/ACK in per-flow split");
            }
        }
    }

    #[test]
    fn split_is_deterministic() {
        let t = sample();
        assert_eq!(split_per_packet(&t, 3, 1), split_per_packet(&t, 3, 1));
        assert_ne!(split_per_packet(&t, 3, 1), split_per_packet(&t, 3, 2));
    }

    #[test]
    #[should_panic(expected = "at least one router")]
    fn zero_routers_panics() {
        let _ = split_per_packet(&Trace::new(), 0, 0);
    }
}
