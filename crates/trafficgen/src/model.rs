//! The simulated network: the monitored edge and its traffic profile.

use hifind_flow::rng::SplitMix64;
use hifind_flow::Ip4;
use serde::{Deserialize, Serialize};

/// The monitored edge network and the populations talking to it.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NetworkModel {
    /// The campus/lab prefix the IDS sits in front of.
    pub edge_prefix: Ip4,
    /// Prefix length of the monitored network.
    pub edge_prefix_len: u8,
    /// Number of live servers inside the edge network.
    pub server_count: u32,
    /// Service ports offered (popularity-weighted by index order).
    pub service_ports: Vec<u16>,
    /// Number of external client addresses drawn from.
    pub external_hosts: u32,
}

impl NetworkModel {
    /// A campus-like /16 network (the paper's NU has several class-B
    /// networks; one /16 preserves the detection-relevant structure).
    pub fn campus() -> Self {
        NetworkModel {
            edge_prefix: [129, 105, 0, 0].into(),
            edge_prefix_len: 16,
            server_count: 400,
            service_ports: vec![80, 443, 22, 25, 53, 110, 143, 993, 3306, 8080],
            external_hosts: 50_000,
        }
    }

    /// A smaller lab-like /16 network.
    pub fn lab() -> Self {
        NetworkModel {
            edge_prefix: [131, 243, 0, 0].into(),
            edge_prefix_len: 16,
            server_count: 150,
            service_ports: vec![80, 443, 22, 25, 53, 8000, 8081],
            external_hosts: 20_000,
        }
    }

    /// The `i`-th server address (deterministic spread over the prefix).
    ///
    /// # Panics
    ///
    /// Panics if `i >= server_count`.
    pub fn server(&self, i: u32) -> Ip4 {
        assert!(i < self.server_count, "server index out of range");
        // Spread servers over the low /24s of the prefix, skipping .0/.255.
        let host = 256 + (i * 7) % (1 << ((32 - self.edge_prefix_len as u32) - 1));
        Ip4::new(self.edge_prefix.raw() | (host & self.host_mask()))
    }

    /// A deterministic *dead* address inside the edge (no server listens):
    /// used by misconfiguration episodes. Distinct from every
    /// [`NetworkModel::server`] output.
    pub fn dead_address(&self, i: u32) -> Ip4 {
        // Servers live in hosts ≡ 256 + 7k; dead addresses use a high,
        // odd-offset range.
        let span = self.host_span();
        let host = span - 2 - (i * 13 % (span / 4));
        Ip4::new(self.edge_prefix.raw() | (host & self.host_mask()))
    }

    /// A uniformly random address inside the edge network.
    pub fn random_internal(&self, rng: &mut SplitMix64) -> Ip4 {
        let host = rng.below(self.host_span() as u64) as u32;
        Ip4::new(self.edge_prefix.raw() | (host & self.host_mask()))
    }

    /// A uniformly random *external* client address (guaranteed outside the
    /// edge prefix), drawn from a bounded population so flows repeat.
    pub fn external_client(&self, rng: &mut SplitMix64) -> Ip4 {
        let id = rng.below(self.external_hosts as u64) as u32;
        self.external_client_by_id(id)
    }

    /// The `id`-th external client address (stable mapping).
    pub fn external_client_by_id(&self, id: u32) -> Ip4 {
        // Scatter clients over 12.0.0.0/6-ish space, avoiding the edge.
        let mut addr = 0x0C00_0000u32.wrapping_add(id.wrapping_mul(2654435761) >> 4);
        if Ip4::new(addr).in_prefix(self.edge_prefix, self.edge_prefix_len) {
            addr ^= 0x4000_0000;
        }
        Ip4::new(addr)
    }

    /// A fully random spoofed source address (the DoS-resilience threat:
    /// each packet a fresh source).
    pub fn spoofed_source(&self, rng: &mut SplitMix64) -> Ip4 {
        loop {
            let a = Ip4::new(rng.next_u32());
            if !a.in_prefix(self.edge_prefix, self.edge_prefix_len) {
                return a;
            }
        }
    }

    /// Returns `true` if the address is inside the monitored network.
    pub fn is_internal(&self, a: Ip4) -> bool {
        a.in_prefix(self.edge_prefix, self.edge_prefix_len)
    }

    fn host_mask(&self) -> u32 {
        (1u32 << (32 - self.edge_prefix_len as u32)) - 1
    }

    fn host_span(&self) -> u32 {
        1u32 << (32 - self.edge_prefix_len as u32)
    }
}

/// Parameters of the benign background connection mix.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct BackgroundProfile {
    /// Mean new connections per second arriving at the edge.
    pub connections_per_sec: f64,
    /// Probability a benign connection gets no answer at all (transient
    /// loss, host asleep, ...). Each such connection still retries.
    pub failure_prob: f64,
    /// Probability the server refuses with RST instead of answering.
    pub rst_prob: f64,
    /// Probability a completed connection also emits a FIN teardown within
    /// the trace.
    pub fin_prob: f64,
    /// SYN→SYN/ACK latency range in milliseconds.
    pub synack_delay_ms: (u64, u64),
    /// Zipf exponent of server popularity.
    pub server_zipf_alpha: f64,
    /// Zipf exponent of service-port popularity.
    pub port_zipf_alpha: f64,
    /// Maximum extra SYN retransmissions for unanswered connections.
    pub max_retries: u32,
    /// Diurnal modulation amplitude in `[0, 1)`: the arrival rate swings
    /// between `(1−A)` and `(1+A)` times the base rate over one period.
    /// Zero (the default) keeps the rate flat.
    pub diurnal_amplitude: f64,
    /// Diurnal period in milliseconds (ignored when amplitude is zero).
    pub diurnal_period_ms: u64,
}

impl Default for BackgroundProfile {
    fn default() -> Self {
        BackgroundProfile {
            connections_per_sec: 300.0,
            failure_prob: 0.02,
            rst_prob: 0.01,
            fin_prob: 0.7,
            synack_delay_ms: (1, 120),
            server_zipf_alpha: 1.0,
            port_zipf_alpha: 1.2,
            max_retries: 2,
            diurnal_amplitude: 0.0,
            diurnal_period_ms: 24 * 60 * 60 * 1000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn servers_are_internal_and_distinct() {
        let net = NetworkModel::campus();
        let mut seen = std::collections::HashSet::new();
        for i in 0..net.server_count {
            let s = net.server(i);
            assert!(net.is_internal(s), "server {s} outside edge");
            seen.insert(s);
        }
        assert!(seen.len() as u32 > net.server_count * 9 / 10);
    }

    #[test]
    fn dead_addresses_do_not_collide_with_servers() {
        let net = NetworkModel::campus();
        let servers: std::collections::HashSet<Ip4> =
            (0..net.server_count).map(|i| net.server(i)).collect();
        for i in 0..100 {
            let d = net.dead_address(i);
            assert!(net.is_internal(d));
            assert!(!servers.contains(&d), "dead address {d} is a server");
        }
    }

    #[test]
    fn external_clients_are_external_and_stable() {
        let net = NetworkModel::campus();
        let mut rng = SplitMix64::new(1);
        for _ in 0..1000 {
            let c = net.external_client(&mut rng);
            assert!(!net.is_internal(c), "client {c} inside edge");
        }
        assert_eq!(net.external_client_by_id(17), net.external_client_by_id(17));
    }

    #[test]
    fn spoofed_sources_are_external() {
        let net = NetworkModel::lab();
        let mut rng = SplitMix64::new(2);
        for _ in 0..1000 {
            assert!(!net.is_internal(net.spoofed_source(&mut rng)));
        }
    }

    #[test]
    fn random_internal_in_prefix() {
        let net = NetworkModel::lab();
        let mut rng = SplitMix64::new(3);
        for _ in 0..100 {
            assert!(net.is_internal(net.random_internal(&mut rng)));
        }
    }

    #[test]
    #[should_panic(expected = "server index")]
    fn server_index_out_of_range_panics() {
        let net = NetworkModel::lab();
        let _ = net.server(net.server_count);
    }

    #[test]
    fn default_profile_is_sane() {
        let p = BackgroundProfile::default();
        assert!(p.connections_per_sec > 0.0);
        assert!(p.failure_prob < 0.1);
        assert!(p.synack_delay_ms.0 <= p.synack_delay_ms.1);
    }
}
