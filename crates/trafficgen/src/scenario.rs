//! Scenario composition: background + events → trace + ground truth.

use crate::background::generate_background;
use crate::events::EventSpec;
use crate::model::{BackgroundProfile, NetworkModel};
use crate::truth::GroundTruth;
use hifind_flow::rng::SplitMix64;
use hifind_flow::Trace;
use serde::{Deserialize, Serialize};

/// A complete experiment workload: a network, a background profile, a list
/// of injected events, a duration, and a seed.
///
/// `generate` is a pure function of this description, so scenarios can be
/// shared between tests, examples and benchmark binaries and always produce
/// the same packets.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario name (used in reports).
    pub name: String,
    /// The simulated network.
    pub network: NetworkModel,
    /// Benign background parameters.
    pub background: BackgroundProfile,
    /// Injected attacks and anomalies.
    pub events: Vec<EventSpec>,
    /// Trace length in milliseconds.
    pub duration_ms: u64,
    /// Master seed.
    pub seed: u64,
}

impl Scenario {
    /// Generates the packet trace and its ground truth.
    pub fn generate(&self) -> (Trace, GroundTruth) {
        let mut rng = SplitMix64::new(self.seed);
        let mut trace = generate_background(
            &self.network,
            &self.background,
            self.duration_ms,
            &mut rng.fork(0),
        );
        let mut truth = GroundTruth::new();
        for (i, spec) in self.events.iter().enumerate() {
            let (event_trace, entry) = spec.generate(&self.network, &mut rng.fork(i as u64 + 1));
            trace.extend(event_trace);
            truth.push(entry);
        }
        trace.sort_by_time();
        (trace, truth)
    }

    /// Returns a scaled copy: background rate and event intensities are
    /// multiplied by `factor` (duration is unchanged), so unit tests can
    /// run a cheap variant of a preset while benches run it at full size.
    ///
    /// Scaling clamps so every event still crosses the paper's detection
    /// threshold of one unresponded SYN per second.
    pub fn scaled(&self, factor: f64) -> Scenario {
        assert!(factor > 0.0, "scale factor must be positive");
        let mut s = self.clone();
        s.background.connections_per_sec *= factor;
        for e in &mut s.events {
            match e {
                EventSpec::SynFlood { pps, .. }
                | EventSpec::Congestion { pps, .. }
                | EventSpec::FlashCrowd { pps, .. }
                | EventSpec::Misconfig { pps, .. } => *pps = (*pps * factor).max(2.0),
                EventSpec::HScan { pps, victims, .. } => {
                    *pps = (*pps * factor).max(2.0);
                    *victims = ((*victims as f64 * factor) as u32).max(120);
                }
                EventSpec::BlockScan { pps, victims, .. } => {
                    *pps = (*pps * factor).max(2.0);
                    *victims = ((*victims as f64 * factor) as u32).max(20);
                }
                EventSpec::VScan { pps, .. } => *pps = (*pps * factor).max(2.0),
            }
        }
        s
    }

    /// Compresses time by `factor` (the paper's stress test compresses the
    /// NU day by 60): all packets of the generated trace land `factor`×
    /// closer together.
    pub fn time_compressed(trace: &Trace, factor: u64) -> Trace {
        assert!(factor > 0, "compression factor must be positive");
        let mut out = Trace::with_capacity(trace.len());
        for p in trace.iter() {
            let mut q = *p;
            q.ts_ms /= factor;
            out.push(q);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::truth::EventClass;

    fn tiny_scenario() -> Scenario {
        let net = NetworkModel::campus();
        let server = net.server(0);
        Scenario {
            name: "tiny".into(),
            network: net.clone(),
            background: BackgroundProfile {
                connections_per_sec: 20.0,
                ..BackgroundProfile::default()
            },
            events: vec![
                EventSpec::SynFlood {
                    attacker: None,
                    victim: server,
                    port: 80,
                    pps: 50.0,
                    start_ms: 60_000,
                    duration_ms: 60_000,
                    respond_prob: 0.0,
                    label: "test flood".into(),
                },
                EventSpec::HScan {
                    attacker: [4, 4, 4, 4].into(),
                    dport: 22,
                    victims: 300,
                    pps: 5.0,
                    start_ms: 0,
                    duration_ms: 180_000,
                    hit_prob: 0.02,
                    rst_prob: 0.1,
                    label: "ssh scan".into(),
                },
            ],
            duration_ms: 180_000,
            seed: 33,
        }
    }

    #[test]
    fn generates_background_plus_events() {
        let (trace, truth) = tiny_scenario().generate();
        assert!(trace.is_time_ordered());
        assert_eq!(truth.len(), 2);
        assert_eq!(truth.of_class(EventClass::SynFloodSpoofed).count(), 1);
        assert_eq!(truth.of_class(EventClass::HScan).count(), 1);
        // Flood contributes ~3000 SYNs on top of ~3600 background conns.
        assert!(trace.len() > 5000);
    }

    #[test]
    fn deterministic_per_seed() {
        let s = tiny_scenario();
        assert_eq!(s.generate().0, s.generate().0);
        let mut s2 = s.clone();
        s2.seed = 34;
        assert_ne!(s.generate().0, s2.generate().0);
    }

    #[test]
    fn scaled_reduces_volume_but_keeps_events_detectable() {
        let full = tiny_scenario();
        let small = full.scaled(0.5);
        let (ft, _) = full.generate();
        let (st, struth) = small.generate();
        assert!(st.len() < ft.len());
        assert_eq!(struth.len(), 2);
        // Every attack still contributes enough packets to cross the
        // one-per-second threshold in some interval.
        for e in struth.attacks() {
            assert!(e.packets >= 60, "{} only {} packets", e.label, e.packets);
        }
    }

    #[test]
    fn time_compression_divides_timestamps() {
        let (trace, _) = tiny_scenario().generate();
        let fast = Scenario::time_compressed(&trace, 60);
        assert_eq!(fast.len(), trace.len());
        let last_slow = trace.iter().last().unwrap().ts_ms;
        let last_fast = fast.iter().last().unwrap().ts_ms;
        assert_eq!(last_fast, last_slow / 60);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = tiny_scenario().scaled(0.0);
    }
}
