//! Ground-truth records for generated events.

use hifind_flow::Ip4;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What kind of event a truth entry describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EventClass {
    /// SYN flooding with randomly spoofed sources.
    SynFloodSpoofed,
    /// SYN flooding from a fixed attacker address.
    SynFloodDirect,
    /// Horizontal scan: one source, one port, many destinations.
    HScan,
    /// Vertical scan: one source, one destination, many ports.
    VScan,
    /// Block scan: many destinations × many ports.
    BlockScan,
    /// Benign congestion/failure episode (server stops answering).
    Congestion,
    /// Benign misconfiguration (clients hammering a dead address — stale
    /// DNS, typo'd config).
    Misconfig,
    /// Benign flash crowd (many distinct legitimate clients, mostly
    /// answered).
    FlashCrowd,
}

impl EventClass {
    /// Whether this class is a real attack (vs a benign anomaly a detector
    /// should *not* alert on after false-positive reduction).
    pub fn is_attack(self) -> bool {
        matches!(
            self,
            EventClass::SynFloodSpoofed
                | EventClass::SynFloodDirect
                | EventClass::HScan
                | EventClass::VScan
                | EventClass::BlockScan
        )
    }

    /// Whether the class is a flavour of SYN flooding.
    pub fn is_flooding(self) -> bool {
        matches!(
            self,
            EventClass::SynFloodSpoofed | EventClass::SynFloodDirect
        )
    }
}

impl fmt::Display for EventClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            EventClass::SynFloodSpoofed => "SYN flooding (spoofed)",
            EventClass::SynFloodDirect => "SYN flooding (direct)",
            EventClass::HScan => "horizontal scan",
            EventClass::VScan => "vertical scan",
            EventClass::BlockScan => "block scan",
            EventClass::Congestion => "congestion episode",
            EventClass::Misconfig => "misconfiguration",
            EventClass::FlashCrowd => "flash crowd",
        })
    }
}

/// One generated event with its identifying fields.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TruthEntry {
    /// Event class.
    pub class: EventClass,
    /// Attacker / initiating source, when the class has a single one.
    pub sip: Option<Ip4>,
    /// Victim address, when the class targets a single one.
    pub dip: Option<Ip4>,
    /// Targeted port, when the class targets a single one.
    pub dport: Option<u16>,
    /// Event start (ms).
    pub start_ms: u64,
    /// Event end (ms).
    pub end_ms: u64,
    /// Human-readable cause ("SQLSnake scan", "Sasser worm", ...).
    pub label: String,
    /// Approximate packets this event contributed.
    pub packets: u64,
}

impl TruthEntry {
    /// Whether an alert identified by `(sip, dip, dport)` (any subset)
    /// matches this event: all fields present on *both* sides must agree,
    /// and at least one field must be compared.
    pub fn matches(&self, sip: Option<Ip4>, dip: Option<Ip4>, dport: Option<u16>) -> bool {
        let mut compared = 0;
        for (mine, theirs) in [(self.sip, sip)] {
            if let (Some(a), Some(b)) = (mine, theirs) {
                if a != b {
                    return false;
                }
                compared += 1;
            }
        }
        if let (Some(a), Some(b)) = (self.dip, dip) {
            if a != b {
                return false;
            }
            compared += 1;
        }
        if let (Some(a), Some(b)) = (self.dport, dport) {
            if a != b {
                return false;
            }
            compared += 1;
        }
        compared > 0
    }
}

impl fmt::Display for TruthEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.class)?;
        if let Some(s) = self.sip {
            write!(f, " from {s}")?;
        }
        if let Some(d) = self.dip {
            write!(f, " to {d}")?;
        }
        if let Some(p) = self.dport {
            write!(f, " port {p}")?;
        }
        write!(
            f,
            " [{:.0}s..{:.0}s] ({})",
            self.start_ms as f64 / 1000.0,
            self.end_ms as f64 / 1000.0,
            self.label
        )
    }
}

/// The full ground truth of a generated trace.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    entries: Vec<TruthEntry>,
}

impl GroundTruth {
    /// Creates an empty ground truth.
    pub fn new() -> Self {
        GroundTruth::default()
    }

    /// Records an event.
    pub fn push(&mut self, e: TruthEntry) {
        self.entries.push(e);
    }

    /// All entries.
    pub fn iter(&self) -> std::slice::Iter<'_, TruthEntry> {
        self.entries.iter()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Only the real attacks.
    pub fn attacks(&self) -> impl Iterator<Item = &TruthEntry> {
        self.entries.iter().filter(|e| e.class.is_attack())
    }

    /// Only the benign anomaly episodes.
    pub fn benign(&self) -> impl Iterator<Item = &TruthEntry> {
        self.entries.iter().filter(|e| !e.class.is_attack())
    }

    /// Entries of one class.
    pub fn of_class(&self, class: EventClass) -> impl Iterator<Item = &TruthEntry> {
        self.entries.iter().filter(move |e| e.class == class)
    }

    /// Finds the entry matching an alert's identifying fields, preferring
    /// attacks over benign events.
    pub fn find_match(
        &self,
        sip: Option<Ip4>,
        dip: Option<Ip4>,
        dport: Option<u16>,
    ) -> Option<&TruthEntry> {
        self.entries
            .iter()
            .filter(|e| e.matches(sip, dip, dport))
            .max_by_key(|e| e.class.is_attack())
    }
}

impl FromIterator<TruthEntry> for GroundTruth {
    fn from_iter<I: IntoIterator<Item = TruthEntry>>(iter: I) -> Self {
        GroundTruth {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(
        class: EventClass,
        sip: Option<[u8; 4]>,
        dip: Option<[u8; 4]>,
        dport: Option<u16>,
    ) -> TruthEntry {
        TruthEntry {
            class,
            sip: sip.map(Ip4::from),
            dip: dip.map(Ip4::from),
            dport,
            start_ms: 0,
            end_ms: 60_000,
            label: "test".into(),
            packets: 100,
        }
    }

    #[test]
    fn class_attack_flags() {
        assert!(EventClass::HScan.is_attack());
        assert!(EventClass::SynFloodSpoofed.is_attack());
        assert!(EventClass::SynFloodSpoofed.is_flooding());
        assert!(!EventClass::HScan.is_flooding());
        assert!(!EventClass::Congestion.is_attack());
        assert!(!EventClass::Misconfig.is_attack());
    }

    #[test]
    fn matching_requires_agreement_on_shared_fields() {
        let e = entry(EventClass::HScan, Some([1, 1, 1, 1]), None, Some(1433));
        assert!(e.matches(Some([1, 1, 1, 1].into()), None, Some(1433)));
        assert!(e.matches(Some([1, 1, 1, 1].into()), None, None));
        // dip is unconstrained on the truth side.
        assert!(e.matches(Some([1, 1, 1, 1].into()), Some([9, 9, 9, 9].into()), None));
        assert!(!e.matches(Some([2, 2, 2, 2].into()), None, None));
        assert!(!e.matches(Some([1, 1, 1, 1].into()), None, Some(80)));
        // Nothing to compare → no match.
        assert!(!e.matches(None, Some([3, 3, 3, 3].into()), None) || e.dip.is_some());
        assert!(!e.matches(None, None, None));
    }

    #[test]
    fn find_match_prefers_attacks() {
        let mut gt = GroundTruth::new();
        gt.push(entry(
            EventClass::Congestion,
            None,
            Some([5, 5, 5, 5]),
            Some(80),
        ));
        gt.push(entry(
            EventClass::SynFloodDirect,
            Some([6, 6, 6, 6]),
            Some([5, 5, 5, 5]),
            Some(80),
        ));
        let m = gt
            .find_match(None, Some([5, 5, 5, 5].into()), Some(80))
            .unwrap();
        assert_eq!(m.class, EventClass::SynFloodDirect);
    }

    #[test]
    fn filters_by_kind() {
        let gt: GroundTruth = vec![
            entry(EventClass::HScan, Some([1, 1, 1, 1]), None, Some(22)),
            entry(EventClass::Congestion, None, Some([2, 2, 2, 2]), Some(80)),
            entry(
                EventClass::VScan,
                Some([3, 3, 3, 3]),
                Some([4, 4, 4, 4]),
                None,
            ),
        ]
        .into_iter()
        .collect();
        assert_eq!(gt.attacks().count(), 2);
        assert_eq!(gt.benign().count(), 1);
        assert_eq!(gt.of_class(EventClass::VScan).count(), 1);
        assert_eq!(gt.len(), 3);
    }

    #[test]
    fn display_is_informative() {
        let e = entry(EventClass::HScan, Some([1, 2, 3, 4]), None, Some(1433));
        let s = e.to_string();
        assert!(s.contains("horizontal scan"));
        assert!(s.contains("1.2.3.4"));
        assert!(s.contains("1433"));
    }
}
