//! Attack and benign-anomaly injectors.

use crate::model::NetworkModel;
use crate::truth::{EventClass, TruthEntry};
use hifind_flow::rng::SplitMix64;
use hifind_flow::{Ip4, Packet, Trace};
use serde::{Deserialize, Serialize};

/// Specification of one injected event (attack or benign anomaly).
///
/// Every variant carries `start_ms` / `duration_ms` and an intensity; the
/// generator is a pure function of the spec, the network model, and the
/// RNG.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum EventSpec {
    /// TCP SYN flooding against one service endpoint.
    SynFlood {
        /// Fixed attacker address, or `None` for per-packet spoofed sources.
        attacker: Option<Ip4>,
        /// Victim address.
        victim: Ip4,
        /// Victim port.
        port: u16,
        /// Attack packets per second.
        pps: f64,
        /// Start time (ms).
        start_ms: u64,
        /// Duration (ms).
        duration_ms: u64,
        /// Probability the overwhelmed victim still answers a given SYN
        /// (small: the victim's backlog is full — that is the attack).
        respond_prob: f64,
        /// Cause label for reports.
        label: String,
    },
    /// Horizontal scan: one source probes one port across many addresses.
    HScan {
        /// Scanner address.
        attacker: Ip4,
        /// Scanned port.
        dport: u16,
        /// Number of addresses probed.
        victims: u32,
        /// Probes per second.
        pps: f64,
        /// Start time (ms).
        start_ms: u64,
        /// Duration (ms).
        duration_ms: u64,
        /// Fraction of probed addresses that answer (open port).
        hit_prob: f64,
        /// Fraction of probed addresses that refuse with RST (live host,
        /// closed port).
        rst_prob: f64,
        /// Cause label ("SQLSnake scan", "Sasser worm", ...).
        label: String,
    },
    /// Vertical scan: one source probes many ports on one address.
    VScan {
        /// Scanner address.
        attacker: Ip4,
        /// Scanned address.
        victim: Ip4,
        /// First port probed.
        port_lo: u16,
        /// Last port probed (inclusive).
        port_hi: u16,
        /// Probes per second.
        pps: f64,
        /// Start time (ms).
        start_ms: u64,
        /// Ports that are actually open (answered with SYN/ACK).
        open_ports: Vec<u16>,
        /// Cause label.
        label: String,
    },
    /// Block scan: many ports across many addresses.
    BlockScan {
        /// Scanner address.
        attacker: Ip4,
        /// First port probed.
        port_lo: u16,
        /// Last port probed (inclusive).
        port_hi: u16,
        /// Number of addresses probed.
        victims: u32,
        /// Probes per second.
        pps: f64,
        /// Start time (ms).
        start_ms: u64,
        /// Duration (ms).
        duration_ms: u64,
        /// Cause label.
        label: String,
    },
    /// Benign: a previously active server stops answering (congestion or
    /// crash); legitimate clients keep trying.
    Congestion {
        /// The affected server.
        server: Ip4,
        /// The affected port.
        port: u16,
        /// Client SYNs per second during the episode.
        pps: f64,
        /// Start time (ms).
        start_ms: u64,
        /// Duration (ms).
        duration_ms: u64,
    },
    /// Benign: clients persistently SYN a dead address (stale DNS entry or
    /// misconfiguration). The target was never active.
    Misconfig {
        /// The dead target address.
        target: Ip4,
        /// The targeted port.
        port: u16,
        /// Number of distinct misconfigured clients.
        clients: u32,
        /// Aggregate SYNs per second.
        pps: f64,
        /// Start time (ms).
        start_ms: u64,
        /// Duration (ms).
        duration_ms: u64,
    },
    /// Benign: a flash crowd — many distinct legitimate clients hit one
    /// service; most are answered, some time out under load.
    FlashCrowd {
        /// The popular server.
        server: Ip4,
        /// The popular port.
        port: u16,
        /// Connections per second at the peak.
        pps: f64,
        /// Start time (ms).
        start_ms: u64,
        /// Duration (ms).
        duration_ms: u64,
        /// Fraction of connections that go unanswered under load.
        drop_prob: f64,
    },
}

impl EventSpec {
    /// The event class this spec generates.
    pub fn class(&self) -> EventClass {
        match self {
            EventSpec::SynFlood { attacker: None, .. } => EventClass::SynFloodSpoofed,
            EventSpec::SynFlood { .. } => EventClass::SynFloodDirect,
            EventSpec::HScan { .. } => EventClass::HScan,
            EventSpec::VScan { .. } => EventClass::VScan,
            EventSpec::BlockScan { .. } => EventClass::BlockScan,
            EventSpec::Congestion { .. } => EventClass::Congestion,
            EventSpec::Misconfig { .. } => EventClass::Misconfig,
            EventSpec::FlashCrowd { .. } => EventClass::FlashCrowd,
        }
    }

    /// Generates the packets and the ground-truth record for this event.
    pub fn generate(&self, net: &NetworkModel, rng: &mut SplitMix64) -> (Trace, TruthEntry) {
        let mut trace = Trace::new();
        let entry = match self {
            EventSpec::SynFlood {
                attacker,
                victim,
                port,
                pps,
                start_ms,
                duration_ms,
                respond_prob,
                label,
            } => {
                let mut t = *start_ms as f64;
                let end = start_ms + duration_ms;
                let gap = 1000.0 / pps.max(1e-9);
                while (t as u64) < end {
                    let ts = t as u64;
                    let src = match attacker {
                        Some(a) => *a,
                        None => net.spoofed_source(rng),
                    };
                    let cport = 1024 + rng.below(64512) as u16;
                    trace.push(Packet::syn(ts, src, cport, *victim, *port));
                    if rng.chance(*respond_prob) {
                        trace.push(Packet::syn_ack(ts + 2, src, cport, *victim, *port));
                    }
                    t += rng.exp_gap(gap);
                }
                TruthEntry {
                    class: self.class(),
                    sip: *attacker,
                    dip: Some(*victim),
                    dport: Some(*port),
                    start_ms: *start_ms,
                    end_ms: end,
                    label: label.clone(),
                    packets: trace.len() as u64,
                }
            }
            EventSpec::HScan {
                attacker,
                dport,
                victims,
                pps,
                start_ms,
                duration_ms,
                hit_prob,
                rst_prob,
                label,
            } => {
                let end = start_ms + duration_ms;
                let mut t = *start_ms as f64;
                let gap = 1000.0 / pps.max(1e-9);
                // Scans walk the target space quasi-sequentially.
                let base = net.random_internal(rng).raw() & !0xFF;
                let mut probed = 0u32;
                while (t as u64) < end && probed < *victims {
                    let ts = t as u64;
                    let dst = Ip4::new(base.wrapping_add(probed)); // sequential walk
                    let dst = if net.is_internal(dst) {
                        dst
                    } else {
                        net.random_internal(rng)
                    };
                    let cport = 1024 + rng.below(64512) as u16;
                    trace.push(Packet::syn(ts, *attacker, cport, dst, *dport));
                    let roll = rng.f64();
                    if roll < *hit_prob {
                        trace.push(Packet::syn_ack(ts + 3, *attacker, cport, dst, *dport));
                    } else if roll < hit_prob + rst_prob {
                        trace.push(Packet::rst(ts + 3, *attacker, cport, dst, *dport));
                    }
                    probed += 1;
                    t += rng.exp_gap(gap);
                }
                TruthEntry {
                    class: EventClass::HScan,
                    sip: Some(*attacker),
                    dip: None,
                    dport: Some(*dport),
                    start_ms: *start_ms,
                    end_ms: end,
                    label: label.clone(),
                    packets: trace.len() as u64,
                }
            }
            EventSpec::VScan {
                attacker,
                victim,
                port_lo,
                port_hi,
                pps,
                start_ms,
                open_ports,
                label,
            } => {
                let mut t = *start_ms as f64;
                let gap = 1000.0 / pps.max(1e-9);
                for port in *port_lo..=*port_hi {
                    let ts = t as u64;
                    let cport = 1024 + rng.below(64512) as u16;
                    trace.push(Packet::syn(ts, *attacker, cport, *victim, port));
                    if open_ports.contains(&port) {
                        trace.push(Packet::syn_ack(ts + 3, *attacker, cport, *victim, port));
                    } else if rng.chance(0.3) {
                        // Live host: closed ports mostly RST.
                        trace.push(Packet::rst(ts + 3, *attacker, cport, *victim, port));
                    }
                    t += rng.exp_gap(gap);
                }
                TruthEntry {
                    class: EventClass::VScan,
                    sip: Some(*attacker),
                    dip: Some(*victim),
                    dport: None,
                    start_ms: *start_ms,
                    end_ms: t as u64,
                    label: label.clone(),
                    packets: trace.len() as u64,
                }
            }
            EventSpec::BlockScan {
                attacker,
                port_lo,
                port_hi,
                victims,
                pps,
                start_ms,
                duration_ms,
                label,
            } => {
                let end = start_ms + duration_ms;
                let mut t = *start_ms as f64;
                let gap = 1000.0 / pps.max(1e-9);
                let base = net.random_internal(rng).raw() & !0xFF;
                'outer: for v in 0..*victims {
                    let dst = Ip4::new(base.wrapping_add(v));
                    let dst = if net.is_internal(dst) {
                        dst
                    } else {
                        net.random_internal(rng)
                    };
                    for port in *port_lo..=*port_hi {
                        let ts = t as u64;
                        if ts >= end {
                            break 'outer;
                        }
                        let cport = 1024 + rng.below(64512) as u16;
                        trace.push(Packet::syn(ts, *attacker, cport, dst, port));
                        t += rng.exp_gap(gap);
                    }
                }
                TruthEntry {
                    class: EventClass::BlockScan,
                    sip: Some(*attacker),
                    dip: None,
                    dport: None,
                    start_ms: *start_ms,
                    end_ms: end,
                    label: label.clone(),
                    packets: trace.len() as u64,
                }
            }
            EventSpec::Congestion {
                server,
                port,
                pps,
                start_ms,
                duration_ms,
            } => {
                let end = start_ms + duration_ms;
                let mut t = *start_ms as f64;
                let gap = 1000.0 / pps.max(1e-9);
                while (t as u64) < end {
                    let ts = t as u64;
                    let client = net.external_client(rng);
                    let cport = 1024 + rng.below(64512) as u16;
                    trace.push(Packet::syn(ts, client, cport, *server, *port));
                    // Congested: almost nothing answered, occasional late
                    // SYN/ACK as the server gasps.
                    if rng.chance(0.05) {
                        trace.push(Packet::syn_ack(ts + 900, client, cport, *server, *port));
                    }
                    t += rng.exp_gap(gap);
                }
                TruthEntry {
                    class: EventClass::Congestion,
                    sip: None,
                    dip: Some(*server),
                    dport: Some(*port),
                    start_ms: *start_ms,
                    end_ms: end,
                    label: "server congestion/failure".into(),
                    packets: trace.len() as u64,
                }
            }
            EventSpec::Misconfig {
                target,
                port,
                clients,
                pps,
                start_ms,
                duration_ms,
            } => {
                let end = start_ms + duration_ms;
                let mut t = *start_ms as f64;
                let gap = 1000.0 / pps.max(1e-9);
                let client_ids: Vec<u32> = (0..*clients)
                    .map(|_| rng.next_u32() % net.external_hosts)
                    .collect();
                while (t as u64) < end {
                    let ts = t as u64;
                    let client = net.external_client_by_id(*rng.pick(&client_ids));
                    let cport = 1024 + rng.below(64512) as u16;
                    trace.push(Packet::syn(ts, client, cport, *target, *port));
                    t += rng.exp_gap(gap);
                }
                TruthEntry {
                    class: EventClass::Misconfig,
                    sip: None,
                    dip: Some(*target),
                    dport: Some(*port),
                    start_ms: *start_ms,
                    end_ms: end,
                    label: "stale DNS / misconfiguration".into(),
                    packets: trace.len() as u64,
                }
            }
            EventSpec::FlashCrowd {
                server,
                port,
                pps,
                start_ms,
                duration_ms,
                drop_prob,
            } => {
                let end = start_ms + duration_ms;
                let mut t = *start_ms as f64;
                let gap = 1000.0 / pps.max(1e-9);
                while (t as u64) < end {
                    let ts = t as u64;
                    let client = net.external_client(rng);
                    let cport = 1024 + rng.below(64512) as u16;
                    trace.push(Packet::syn(ts, client, cport, *server, *port));
                    if !rng.chance(*drop_prob) {
                        trace.push(Packet::syn_ack(
                            ts + rng.range(1, 400),
                            client,
                            cport,
                            *server,
                            *port,
                        ));
                    }
                    t += rng.exp_gap(gap);
                }
                TruthEntry {
                    class: EventClass::FlashCrowd,
                    sip: None,
                    dip: Some(*server),
                    dport: Some(*port),
                    start_ms: *start_ms,
                    end_ms: end,
                    label: "flash crowd".into(),
                    packets: trace.len() as u64,
                }
            }
        };
        trace.sort_by_time();
        (trace, entry)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hifind_flow::SegmentKind;
    use std::collections::HashSet;

    fn net() -> NetworkModel {
        NetworkModel::campus()
    }

    #[test]
    fn spoofed_flood_has_distinct_sources() {
        let spec = EventSpec::SynFlood {
            attacker: None,
            victim: net().server(0),
            port: 80,
            pps: 500.0,
            start_ms: 0,
            duration_ms: 10_000,
            respond_prob: 0.0,
            label: "flood".into(),
        };
        let (trace, truth) = spec.generate(&net(), &mut SplitMix64::new(1));
        assert_eq!(truth.class, EventClass::SynFloodSpoofed);
        let sources: HashSet<_> = trace.iter().map(|p| p.src).collect();
        // ~5000 packets, nearly all distinct spoofed sources.
        assert!(sources.len() > trace.len() * 9 / 10);
        assert!(trace.stats().syn_ack == 0);
    }

    #[test]
    fn direct_flood_single_source() {
        let attacker: Ip4 = [66, 66, 66, 66].into();
        let spec = EventSpec::SynFlood {
            attacker: Some(attacker),
            victim: net().server(1),
            port: 443,
            pps: 200.0,
            start_ms: 5_000,
            duration_ms: 20_000,
            respond_prob: 0.05,
            label: "direct flood".into(),
        };
        let (trace, truth) = spec.generate(&net(), &mut SplitMix64::new(2));
        assert_eq!(truth.class, EventClass::SynFloodDirect);
        assert!(trace
            .iter()
            .filter(|p| p.kind == SegmentKind::Syn)
            .all(|p| p.src == attacker));
        let s = trace.stats();
        assert!(s.syn_ack > 0 && s.syn_ack < s.syn / 10);
        assert!(trace.iter().all(|p| p.ts_ms >= 5_000 && p.ts_ms < 25_100));
    }

    #[test]
    fn hscan_covers_many_destinations_one_port() {
        let attacker: Ip4 = [204, 10, 110, 38].into();
        let spec = EventSpec::HScan {
            attacker,
            dport: 1433,
            victims: 800,
            pps: 100.0,
            start_ms: 0,
            duration_ms: 60_000,
            hit_prob: 0.02,
            rst_prob: 0.1,
            label: "SQLSnake scan".into(),
        };
        let (trace, truth) = spec.generate(&net(), &mut SplitMix64::new(3));
        assert_eq!(truth.dport, Some(1433));
        let dsts: HashSet<_> = trace
            .iter()
            .filter(|p| p.kind == SegmentKind::Syn)
            .map(|p| p.dst)
            .collect();
        assert!(dsts.len() > 500, "only {} distinct targets", dsts.len());
        assert!(trace
            .iter()
            .filter(|p| p.kind == SegmentKind::Syn)
            .all(|p| p.dport == 1433));
    }

    #[test]
    fn vscan_covers_many_ports_one_destination() {
        let spec = EventSpec::VScan {
            attacker: [95, 30, 62, 202].into(),
            victim: net().server(5),
            port_lo: 1,
            port_hi: 1024,
            pps: 50.0,
            start_ms: 0,
            open_ports: vec![22, 80],
            label: "vscan".into(),
        };
        let (trace, truth) = spec.generate(&net(), &mut SplitMix64::new(4));
        assert_eq!(truth.class, EventClass::VScan);
        let ports: HashSet<_> = trace
            .iter()
            .filter(|p| p.kind == SegmentKind::Syn)
            .map(|p| p.dport)
            .collect();
        assert_eq!(ports.len(), 1024);
        let synacks = trace.stats().syn_ack;
        assert_eq!(synacks, 2); // exactly the open ports
    }

    #[test]
    fn block_scan_covers_both_dimensions() {
        let spec = EventSpec::BlockScan {
            attacker: [7, 7, 7, 7].into(),
            port_lo: 100,
            port_hi: 110,
            victims: 50,
            pps: 1000.0,
            start_ms: 0,
            duration_ms: 60_000,
            label: "block".into(),
        };
        let (trace, _) = spec.generate(&net(), &mut SplitMix64::new(5));
        let ports: HashSet<_> = trace.iter().map(|p| p.dport).collect();
        let dsts: HashSet<_> = trace.iter().map(|p| p.dst).collect();
        assert!(ports.len() >= 11);
        assert!(dsts.len() >= 40);
    }

    #[test]
    fn congestion_is_mostly_unanswered_but_benign() {
        let spec = EventSpec::Congestion {
            server: net().server(2),
            port: 80,
            pps: 50.0,
            start_ms: 0,
            duration_ms: 30_000,
        };
        let (trace, truth) = spec.generate(&net(), &mut SplitMix64::new(6));
        assert!(!truth.class.is_attack());
        let s = trace.stats();
        assert!(s.syn_ack < s.syn / 5);
        // Many *distinct* clients — unlike a single-source attack.
        let srcs: HashSet<_> = trace.iter().map(|p| p.src).collect();
        assert!(srcs.len() > 100);
    }

    #[test]
    fn misconfig_targets_dead_address() {
        let n = net();
        let spec = EventSpec::Misconfig {
            target: n.dead_address(0),
            port: 8080,
            clients: 5,
            pps: 10.0,
            start_ms: 0,
            duration_ms: 60_000,
        };
        let (trace, truth) = spec.generate(&n, &mut SplitMix64::new(7));
        assert_eq!(truth.class, EventClass::Misconfig);
        assert_eq!(trace.stats().syn_ack, 0);
        let srcs: HashSet<_> = trace.iter().map(|p| p.src).collect();
        assert!(srcs.len() <= 5);
    }

    #[test]
    fn flash_crowd_mostly_answered() {
        let spec = EventSpec::FlashCrowd {
            server: net().server(3),
            port: 80,
            pps: 200.0,
            start_ms: 0,
            duration_ms: 20_000,
            drop_prob: 0.15,
        };
        let (trace, truth) = spec.generate(&net(), &mut SplitMix64::new(8));
        assert_eq!(truth.class, EventClass::FlashCrowd);
        let s = trace.stats();
        let ratio = s.syn_ack as f64 / s.syn as f64;
        assert!((0.7..0.95).contains(&ratio), "answer ratio {ratio}");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = EventSpec::HScan {
            attacker: [1, 2, 3, 4].into(),
            dport: 22,
            victims: 100,
            pps: 10.0,
            start_ms: 0,
            duration_ms: 30_000,
            hit_prob: 0.1,
            rst_prob: 0.1,
            label: "ssh scan".into(),
        };
        let (a, ta) = spec.generate(&net(), &mut SplitMix64::new(9));
        let (b, tb) = spec.generate(&net(), &mut SplitMix64::new(9));
        assert_eq!(a, b);
        assert_eq!(ta, tb);
    }
}
