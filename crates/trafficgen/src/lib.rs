//! Deterministic synthetic traffic generation with ground truth.
//!
//! The paper evaluates HiFIND on edge-router traces from Northwestern
//! University and Lawrence Berkeley National Laboratory. Those traces are
//! not publicly available, so this crate builds the closest synthetic
//! equivalent (see DESIGN.md §5): a background population of TCP
//! connections with realistic completion behaviour, benign anomaly
//! episodes (congestion/failure bursts, misconfigured clients hammering
//! dead addresses — the false-positive sources §3.4 is about), and injected
//! attack campaigns (spoofed/non-spoofed SYN flooding, horizontal /
//! vertical / block scans) with exact [`GroundTruth`] records.
//!
//! Everything is driven by explicit seeds through
//! [`hifind_flow::rng::SplitMix64`], so a [`Scenario`] is a pure function
//! from its description to a [`hifind_flow::Trace`].
//!
//! The [`splitter`] module simulates the multi-router topology of paper
//! Figure 3: per-packet random assignment of each packet to one of `n` edge
//! routers, which breaks per-flow locality exactly like per-packet load
//! balancing does.
//!
//! # Example
//!
//! ```
//! use hifind_trafficgen::presets;
//!
//! let scenario = presets::nu_like(42).scaled(0.05); // 5% size for tests
//! let (trace, truth) = scenario.generate();
//! assert!(trace.len() > 0);
//! assert!(truth.attacks().count() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod background;
pub mod events;
pub mod model;
pub mod presets;
pub mod scenario;
pub mod splitter;
pub mod truth;

pub use events::EventSpec;
pub use model::{BackgroundProfile, NetworkModel};
pub use scenario::Scenario;
pub use splitter::split_per_packet;
pub use truth::{EventClass, GroundTruth, TruthEntry};
