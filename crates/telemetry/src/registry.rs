//! Named metric registry and its serializable snapshot.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

/// The three metric kinds a [`Registry`] can hold.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone counter.
    Counter,
    /// Last-written value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl fmt::Display for MetricKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        })
    }
}

/// Errors from metric registration.
///
/// A monitoring layer must never abort the process it observes, so kind
/// clashes are reported to the caller instead of panicking; callers decide
/// whether to propagate, skip the metric, or count the failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TelemetryError {
    /// The name is already registered with a different metric kind.
    KindMismatch {
        /// The clashing metric name.
        name: String,
        /// Kind already in the registry.
        registered: MetricKind,
        /// Kind this registration asked for.
        requested: MetricKind,
    },
}

impl fmt::Display for TelemetryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TelemetryError::KindMismatch {
                name,
                registered,
                requested,
            } => write!(
                f,
                "metric {name} already registered as a {registered}, cannot re-register as a {requested}"
            ),
        }
    }
}

impl std::error::Error for TelemetryError {}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> MetricKind {
        match self {
            Metric::Counter(_) => MetricKind::Counter,
            Metric::Gauge(_) => MetricKind::Gauge,
            Metric::Histogram(_) => MetricKind::Histogram,
        }
    }
}

struct Entry {
    help: String,
    metric: Metric,
}

/// Owns named metrics; clone handles out to the pipeline.
///
/// Registration takes a short lock; updates through the returned `Arc`
/// handles are lock-free. Registering the same name twice returns the
/// existing metric; asking for a different kind under an existing name is
/// reported as [`TelemetryError::KindMismatch`] rather than aborting, so a
/// monitoring mishap can never take the detector down with it.
#[derive(Clone, Default)]
pub struct Registry {
    // lock-order: telemetry.registry
    inner: Arc<Mutex<BTreeMap<String, Entry>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Registers (or fetches) a counter.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::KindMismatch`] if `name` already names a gauge or
    /// histogram.
    pub fn counter(&self, name: &str, help: &str) -> Result<Arc<Counter>, TelemetryError> {
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Counter(Arc::new(Counter::new())),
        });
        match &entry.metric {
            Metric::Counter(c) => Ok(Arc::clone(c)),
            other => Err(TelemetryError::KindMismatch {
                name: name.to_string(),
                registered: other.kind(),
                requested: MetricKind::Counter,
            }),
        }
    }

    /// Registers (or fetches) a gauge.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::KindMismatch`] if `name` already names a counter
    /// or histogram.
    pub fn gauge(&self, name: &str, help: &str) -> Result<Arc<Gauge>, TelemetryError> {
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Gauge(Arc::new(Gauge::new())),
        });
        match &entry.metric {
            Metric::Gauge(g) => Ok(Arc::clone(g)),
            other => Err(TelemetryError::KindMismatch {
                name: name.to_string(),
                registered: other.kind(),
                requested: MetricKind::Gauge,
            }),
        }
    }

    /// Registers (or fetches) a histogram with the given bucket bounds.
    /// Bounds are fixed at first registration; later calls ignore theirs.
    ///
    /// # Errors
    ///
    /// [`TelemetryError::KindMismatch`] if `name` already names a counter
    /// or gauge.
    pub fn histogram(
        &self,
        name: &str,
        help: &str,
        upper_bounds: Vec<f64>,
    ) -> Result<Arc<Histogram>, TelemetryError> {
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(name.to_string()).or_insert_with(|| Entry {
            help: help.to_string(),
            metric: Metric::Histogram(Arc::new(Histogram::new(upper_bounds))),
        });
        match &entry.metric {
            Metric::Histogram(h) => Ok(Arc::clone(h)),
            other => Err(TelemetryError::KindMismatch {
                name: name.to_string(),
                registered: other.kind(),
                requested: MetricKind::Histogram,
            }),
        }
    }

    /// Point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.inner.lock().unwrap();
        let metrics = map
            .iter()
            .map(|(name, entry)| {
                let value = match &entry.metric {
                    Metric::Counter(c) => MetricValue::Counter { value: c.get() },
                    Metric::Gauge(g) => MetricValue::Gauge { value: g.get() },
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                };
                MetricSnapshot {
                    name: name.clone(),
                    help: entry.help.clone(),
                    value,
                }
            })
            .collect();
        RegistrySnapshot { metrics }
    }
}

/// One metric's state inside a [`RegistrySnapshot`].
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum MetricValue {
    /// Monotone count.
    Counter {
        /// Current total.
        value: u64,
    },
    /// Last-written value.
    Gauge {
        /// Current value.
        value: i64,
    },
    /// Bucketed distribution.
    Histogram(HistogramSnapshot),
}

/// A named metric with its help text and value.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MetricSnapshot {
    /// Metric name (Prometheus-style, e.g. `hifind_detect_seconds`).
    pub name: String,
    /// One-line description.
    pub help: String,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// Serializable copy of a whole [`Registry`], sorted by metric name.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RegistrySnapshot {
    /// All metrics, name-ordered.
    pub metrics: Vec<MetricSnapshot>,
}

/// Formats an `f64` the way Prometheus expects (no trailing `.0` on
/// integral values is fine, but exponents are avoided for readability).
fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v}");
        s
    }
}

impl RegistrySnapshot {
    /// Looks up a metric's value by name (`None` when absent) — the
    /// non-panicking primitive behind dashboards and assertions alike.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|m| m.name == name)
            .map(|m| &m.value)
    }

    /// Renders the Prometheus text exposition format.
    pub fn to_prometheus_text(&self) -> String {
        self.to_prometheus_text_labeled(&[])
    }

    /// Like [`RegistrySnapshot::to_prometheus_text`], but with `labels`
    /// attached to every sample line (merged before `le` on histogram
    /// buckets). An empty slice renders byte-identically to the unlabeled
    /// form. Used by multi-tier deployments to stamp `tier`/`node_id`
    /// onto every series one process exports.
    pub fn to_prometheus_text_labeled(&self, labels: &[(&str, String)]) -> String {
        use std::fmt::Write as _;
        let base = labels
            .iter()
            .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
            .collect::<Vec<_>>()
            .join(",");
        // Suffix for label-less sample lines; prefix inside a histogram
        // bucket's existing `{...}`.
        let plain = if base.is_empty() {
            String::new()
        } else {
            format!("{{{base}}}")
        };
        let bucket_prefix = if base.is_empty() {
            String::new()
        } else {
            format!("{base},")
        };
        let mut out = String::new();
        for m in &self.metrics {
            let _ = writeln!(out, "# HELP {} {}", m.name, escape_help(&m.help));
            match &m.value {
                MetricValue::Counter { value } => {
                    let _ = writeln!(out, "# TYPE {} counter", m.name);
                    let _ = writeln!(out, "{}{} {}", m.name, plain, value);
                }
                MetricValue::Gauge { value } => {
                    let _ = writeln!(out, "# TYPE {} gauge", m.name);
                    let _ = writeln!(out, "{}{} {}", m.name, plain, value);
                }
                MetricValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {} histogram", m.name);
                    let cumulative = h.cumulative();
                    for (ub, c) in h.upper_bounds.iter().zip(&cumulative) {
                        let _ = writeln!(
                            out,
                            "{}_bucket{{{}le=\"{}\"}} {}",
                            m.name,
                            bucket_prefix,
                            fmt_f64_le(*ub),
                            c
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{{{}le=\"+Inf\"}} {}",
                        m.name,
                        bucket_prefix,
                        cumulative.last().copied().unwrap_or(0)
                    );
                    let _ = writeln!(out, "{}_sum{} {}", m.name, plain, fmt_f64(h.sum));
                    let _ = writeln!(out, "{}_count{} {}", m.name, plain, h.count);
                }
            }
        }
        out
    }
}

/// `le` labels keep their natural float rendering (`0.01`, not `1e-2`).
fn fmt_f64_le(v: f64) -> String {
    format!("{v}")
}

/// Escapes a HELP string per the exposition format: backslash and
/// newline would otherwise break the line-oriented parse (a raw newline
/// in help text turns the rest of the string into a bogus sample line).
fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline must be escaped inside the quoted value.
fn escape_label(value: &str) -> String {
    value
        .replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

#[cfg(test)]
mod label_tests {
    use super::*;

    fn sample_registry() -> Registry {
        let registry = Registry::new();
        registry.counter("demo_total", "a counter").unwrap().add(3);
        registry.gauge("demo_gauge", "a gauge").unwrap().set(-2);
        let h = registry
            .histogram("demo_seconds", "a histogram", vec![0.5, 1.0])
            .unwrap();
        h.observe(0.25);
        h.observe(2.0);
        registry
    }

    #[test]
    fn empty_labels_render_byte_identical_to_unlabeled() {
        let snap = sample_registry().snapshot();
        assert_eq!(
            snap.to_prometheus_text(),
            snap.to_prometheus_text_labeled(&[])
        );
    }

    #[test]
    fn labels_attach_to_every_sample_line() {
        let snap = sample_registry().snapshot();
        let text = snap.to_prometheus_text_labeled(&[
            ("tier", "aggregator".to_string()),
            ("node_id", "7".to_string()),
        ]);
        assert!(text.contains("demo_total{tier=\"aggregator\",node_id=\"7\"} 3"));
        assert!(text.contains("demo_gauge{tier=\"aggregator\",node_id=\"7\"} -2"));
        assert!(
            text.contains("demo_seconds_bucket{tier=\"aggregator\",node_id=\"7\",le=\"0.5\"} 1")
        );
        assert!(
            text.contains("demo_seconds_bucket{tier=\"aggregator\",node_id=\"7\",le=\"+Inf\"} 2")
        );
        assert!(text.contains("demo_seconds_sum{tier=\"aggregator\",node_id=\"7\"} 2.25"));
        assert!(text.contains("demo_seconds_count{tier=\"aggregator\",node_id=\"7\"} 2"));
        // HELP/TYPE comment lines never carry labels.
        assert!(text.contains("# TYPE demo_total counter\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        let snap = sample_registry().snapshot();
        let text = snap.to_prometheus_text_labeled(&[("who", "a\"b\\c\nd".to_string())]);
        assert!(text.contains("demo_total{who=\"a\\\"b\\\\c\\nd\"} 3"));
    }
}
