//! RAII scope timing into a histogram.

use crate::metrics::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Observes elapsed wall time into a [`Histogram`] when dropped.
///
/// ```
/// use hifind_telemetry::{Histogram, ScopeTimer};
/// use std::sync::Arc;
///
/// let latency = Arc::new(Histogram::new(vec![0.001, 0.01, 0.1]));
/// {
///     let _timer = ScopeTimer::new(Arc::clone(&latency));
///     // ... phase work ...
/// } // elapsed seconds observed here
/// assert_eq!(latency.snapshot().count, 1);
/// ```
pub struct ScopeTimer {
    histogram: Arc<Histogram>,
    start: Instant,
}

impl ScopeTimer {
    /// Starts timing now.
    pub fn new(histogram: Arc<Histogram>) -> Self {
        ScopeTimer {
            histogram,
            start: Instant::now(),
        }
    }

    /// Stops early and records, consuming the timer.
    pub fn stop(self) {
        // Dropping does the observation.
    }
}

impl Drop for ScopeTimer {
    fn drop(&mut self) {
        self.histogram.observe_duration(self.start.elapsed());
    }
}
