//! Counter, gauge, and histogram primitives.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::time::Duration;

/// Stripes used by [`Counter`]; one cache line each so concurrent
/// recorder threads increment without bouncing a shared line.
const STRIPES: usize = 8;

#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// Monotone event counter, striped to avoid cross-thread contention.
///
/// `inc`/`add` pick a stripe from the calling thread's identity; `get`
/// sums all stripes, so reads are linear in [`STRIPES`] but updates never
/// contend unless two threads hash to the same stripe.
pub struct Counter {
    stripes: [PaddedU64; STRIPES],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Counter {
            stripes: Default::default(),
        }
    }

    fn stripe(&self) -> &AtomicU64 {
        // Thread id hashes are stable per thread, so each thread sticks to
        // one stripe for its lifetime.
        use std::hash::BuildHasher;
        thread_local! {
            static STRIPE: usize = {
                let state = std::collections::hash_map::RandomState::new();
                state.hash_one(std::thread::current().id()) as usize % STRIPES
            };
        }
        let idx = STRIPE.with(|s| *s);
        &self.stripes[idx].0
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        // relaxed-ok: independent monotone stripe; nothing orders against it
        self.stripe().fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all stripes.
    pub fn get(&self) -> u64 {
        self.stripes
            .iter()
            // relaxed-ok: scrape-time sum; cross-stripe tearing is acceptable
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("value", &self.get())
            .finish()
    }
}

/// Last-written signed value (occupancy, saturation, rates scaled to ppm).
#[derive(Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        // relaxed-ok: last-write-wins gauge; readers need no ordering
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        // relaxed-ok: commutative delta on an isolated cell
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // relaxed-ok: monitoring read; staleness is fine
        self.value.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gauge").field("value", &self.get()).finish()
    }
}

/// Fixed-bucket distribution with atomic bucket counts.
///
/// Bucket `i` counts observations `<= upper_bounds[i]` and `> upper_bounds[i-1]`
/// (Prometheus `le` semantics); one implicit `+Inf` bucket catches the rest.
/// The sum is kept as nanosecond-precision fixed point in an `AtomicU64` so
/// `observe` stays lock-free.
pub struct Histogram {
    upper_bounds: Vec<f64>,
    /// One per upper bound, plus the trailing `+Inf` bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observations in units of 1e-9 (nanoseconds when observing
    /// seconds), stored as fixed point to stay atomic.
    sum_nanos: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            // relaxed-ok: debug formatting only
            .field("count", &self.count.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl Histogram {
    /// A histogram with the given ascending upper bounds.
    pub fn new(upper_bounds: Vec<f64>) -> Self {
        assert!(
            !upper_bounds.is_empty(),
            "histogram needs at least one bucket"
        );
        assert!(
            upper_bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let buckets = (0..=upper_bounds.len())
            .map(|_| AtomicU64::new(0))
            .collect();
        Histogram {
            upper_bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&self, value: f64) {
        let idx = self
            .upper_bounds
            .partition_point(|ub| value > *ub)
            .min(self.upper_bounds.len());
        // relaxed-ok: independent monotone cells; scrapes tolerate skew
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // relaxed-ok: same as buckets
        let nanos = (value * 1e9).max(0.0) as u64;
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed); // relaxed-ok: same as buckets
    }

    /// Records a duration, in seconds.
    #[inline]
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            upper_bounds: self.upper_bounds.clone(),
            bucket_counts: self
                .buckets
                .iter()
                // relaxed-ok: scrape may tear against writers (Prometheus allows it)
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed), // relaxed-ok: scrape read
            // relaxed-ok: scrape read
            sum: self.sum_nanos.load(Ordering::Relaxed) as f64 / 1e9,
        }
    }
}

/// Point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds (`le` values).
    pub upper_bounds: Vec<f64>,
    /// Per-bucket counts; one entry per upper bound plus trailing `+Inf`.
    pub bucket_counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
}

impl HistogramSnapshot {
    /// Cumulative count at or below `upper_bounds[i]`.
    pub fn cumulative(&self) -> Vec<u64> {
        let mut acc = 0;
        self.bucket_counts
            .iter()
            .map(|c| {
                acc += c;
                acc
            })
            .collect()
    }

    /// Linear-interpolated quantile estimate (`q` in `[0, 1]`), or `None`
    /// when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut acc = 0u64;
        for (i, c) in self.bucket_counts.iter().enumerate() {
            acc += c;
            if acc >= target {
                return Some(if i < self.upper_bounds.len() {
                    self.upper_bounds[i]
                } else {
                    // +Inf bucket: report the largest finite bound.
                    *self.upper_bounds.last().unwrap()
                });
            }
        }
        None
    }
}

/// `count` geometric buckets starting at `start` with the given growth
/// `factor` — the usual shape for latency histograms.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count > 0);
    let mut bounds = Vec::with_capacity(count);
    let mut v = start;
    for _ in 0..count {
        bounds.push(v);
        v *= factor;
    }
    bounds
}

/// `count` evenly spaced buckets starting at `start`.
pub fn linear_buckets(start: f64, width: f64, count: usize) -> Vec<f64> {
    assert!(width > 0.0 && count > 0);
    (0..count).map(|i| start + width * i as f64).collect()
}
