//! Pipeline telemetry: a lightweight metrics registry for the HiFIND stack.
//!
//! Three metric kinds, all lock-free on the update path:
//!
//! * [`Counter`] — monotone event count, striped across cache lines so
//!   concurrent recorder threads do not contend.
//! * [`Gauge`] — last-written integer value (sketch occupancy, saturation
//!   in parts-per-million, inference success rate, ...).
//! * [`Histogram`] — fixed-bucket distribution with atomic bucket counts,
//!   used for per-phase latencies. Bucket layout is chosen at registration
//!   (see [`exponential_buckets`]) and never reallocates, so `observe` is a
//!   single atomic add off the packet hot path.
//!
//! A [`Registry`] owns named metrics behind `Arc`s; handles are cheap to
//! clone into the pipeline. [`Registry::snapshot`] produces a serializable
//! [`RegistrySnapshot`] for `--metrics-json`, and
//! [`RegistrySnapshot::to_prometheus_text`] renders the Prometheus text
//! exposition format for scraping setups.
//!
//! Timing uses [`ScopeTimer`] (RAII: observes elapsed time into a histogram
//! on drop) or the sampling variant the recorder hot path uses via
//! [`Histogram::observe_duration`].

#![forbid(unsafe_code)]

pub mod metrics;
pub mod registry;
pub mod timer;

pub use metrics::{exponential_buckets, linear_buckets, Counter, Gauge, Histogram};
pub use registry::{MetricKind, MetricSnapshot, Registry, RegistrySnapshot, TelemetryError};
pub use timer::ScopeTimer;

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn concurrent_counter_increments_are_all_counted() {
        let registry = Registry::new();
        let counter = registry
            .counter("packets_total", "Packets recorded")
            .unwrap();
        const THREADS: usize = 8;
        const PER_THREAD: u64 = 10_000;
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for _ in 0..PER_THREAD {
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), THREADS as u64 * PER_THREAD);
    }

    #[test]
    fn histogram_buckets_split_at_boundaries() {
        let h = Histogram::new(vec![1.0, 10.0, 100.0]);
        // Upper bounds are inclusive, like Prometheus `le`.
        h.observe(0.5);
        h.observe(1.0);
        h.observe(5.0);
        h.observe(10.0);
        h.observe(99.9);
        h.observe(100.1);
        let snap = h.snapshot();
        assert_eq!(snap.bucket_counts, vec![2, 2, 1, 1]);
        assert_eq!(snap.count, 6);
        assert!((snap.sum - (0.5 + 1.0 + 5.0 + 10.0 + 99.9 + 100.1)).abs() < 1e-9);
    }

    #[test]
    fn exponential_buckets_grow_geometrically() {
        let b = exponential_buckets(1.0, 2.0, 4);
        assert_eq!(b, vec![1.0, 2.0, 4.0, 8.0]);
        let l = linear_buckets(0.0, 5.0, 3);
        assert_eq!(l, vec![0.0, 5.0, 10.0]);
    }

    #[test]
    fn gauge_stores_last_value() {
        let g = Gauge::new();
        g.set(42);
        g.set(-7);
        assert_eq!(g.get(), -7);
        g.add(10);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn scope_timer_observes_on_drop() {
        let h = Arc::new(Histogram::new(vec![1e9]));
        {
            let _t = ScopeTimer::new(Arc::clone(&h));
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn registry_snapshot_serde_round_trip() {
        let registry = Registry::new();
        registry
            .counter("alerts_total", "Alerts emitted")
            .unwrap()
            .add(17);
        registry
            .gauge("occupancy_ppm", "Bucket occupancy")
            .unwrap()
            .set(250_000);
        registry
            .histogram(
                "detect_seconds",
                "Detect phase latency",
                vec![0.001, 0.01, 0.1],
            )
            .unwrap()
            .observe(0.005);

        let snap = registry.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: RegistrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(snap, back);
    }

    #[test]
    fn kind_mismatch_is_a_typed_error_not_a_panic() {
        let registry = Registry::new();
        registry.counter("hifind_events", "Events").unwrap();
        // Re-registering under the same kind fetches the same metric.
        registry.counter("hifind_events", "Events").unwrap().add(2);
        assert_eq!(
            registry.counter("hifind_events", "ignored").unwrap().get(),
            2
        );
        // A different kind under the same name is rejected, not aborted.
        let err = registry.gauge("hifind_events", "Events").unwrap_err();
        assert_eq!(
            err,
            TelemetryError::KindMismatch {
                name: "hifind_events".into(),
                registered: MetricKind::Counter,
                requested: MetricKind::Gauge,
            }
        );
        assert!(err.to_string().contains("hifind_events"));
        assert!(registry
            .histogram("hifind_events", "Events", vec![1.0])
            .is_err());
        // The original metric is untouched by the failed registrations.
        assert_eq!(registry.counter("hifind_events", "").unwrap().get(), 2);
    }

    #[test]
    fn prometheus_text_golden() {
        let registry = Registry::new();
        registry
            .counter("hifind_packets_total", "Packets recorded")
            .unwrap()
            .add(3);
        registry
            .gauge("hifind_saturation_ppm", "Sketch saturation")
            .unwrap()
            .set(1200);
        let h = registry
            .histogram(
                "hifind_detect_seconds",
                "Detect phase latency",
                vec![0.01, 0.1],
            )
            .unwrap();
        h.observe(0.005);
        h.observe(0.05);
        h.observe(0.5);

        let text = registry.snapshot().to_prometheus_text();
        let expected = "\
# HELP hifind_detect_seconds Detect phase latency
# TYPE hifind_detect_seconds histogram
hifind_detect_seconds_bucket{le=\"0.01\"} 1
hifind_detect_seconds_bucket{le=\"0.1\"} 2
hifind_detect_seconds_bucket{le=\"+Inf\"} 3
hifind_detect_seconds_sum 0.555
hifind_detect_seconds_count 3
# HELP hifind_packets_total Packets recorded
# TYPE hifind_packets_total counter
hifind_packets_total 3
# HELP hifind_saturation_ppm Sketch saturation
# TYPE hifind_saturation_ppm gauge
hifind_saturation_ppm 1200
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_help_escapes_newlines_and_backslashes() {
        let registry = Registry::new();
        registry
            .counter(
                "hifind_odd_help_total",
                "first line\nsecond line with a \\ backslash",
            )
            .unwrap()
            .add(1);
        let text = registry.snapshot().to_prometheus_text();
        let expected = "\
# HELP hifind_odd_help_total first line\\nsecond line with a \\\\ backslash
# TYPE hifind_odd_help_total counter
hifind_odd_help_total 1
";
        assert_eq!(text, expected);
        // Line-oriented invariant: nothing but the sample line escapes
        // the comment prefix, no matter what the help text contains.
        assert_eq!(text.lines().count(), 3);
    }

    #[test]
    fn prometheus_histogram_emits_spec_ordered_series() {
        // An empty histogram must still expose the full bucket series,
        // the +Inf bucket, then _sum and _count — in that order.
        let registry = Registry::new();
        registry
            .histogram("hifind_empty_seconds", "Never observed", vec![0.5, 5.0])
            .unwrap();
        let text = registry.snapshot().to_prometheus_text();
        let expected = "\
# HELP hifind_empty_seconds Never observed
# TYPE hifind_empty_seconds histogram
hifind_empty_seconds_bucket{le=\"0.5\"} 0
hifind_empty_seconds_bucket{le=\"5\"} 0
hifind_empty_seconds_bucket{le=\"+Inf\"} 0
hifind_empty_seconds_sum 0
hifind_empty_seconds_count 0
";
        assert_eq!(text, expected);
    }
}
