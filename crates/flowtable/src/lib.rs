//! Exact per-flow-key tables — the paper's "non-sketch" reference method.
//!
//! §5.2 of the paper validates the sketches by running the *same* detection
//! algorithm against exact per-key state and observing identical alerts;
//! Table 9 then shows why the exact method is untenable at line rate (tens
//! of gigabytes for worst-case traffic, versus 13.2 MB of sketches — and a
//! per-source table is precisely the state a spoofed flood blows up).
//!
//! * [`ExactChangeTable`] — exact per-key `#SYN − #SYN/ACK` accumulation
//!   with the same EWMA forecasting recurrence the sketches use; per
//!   interval it reports every key whose forecast error crosses the
//!   threshold. Functionally equivalent to reversible-sketch INFERENCE but
//!   with O(#keys) memory.
//! * [`ExactDistribution`] — exact per-x-key y-value histograms, the
//!   "complete information" counterpart of the 2D sketch.
//!
//! # Example
//!
//! ```
//! use hifind_flowtable::ExactChangeTable;
//!
//! let mut table = ExactChangeTable::new(0.5);
//! table.add(42, 10);
//! table.end_interval(); // warm-up: no forecast yet
//! table.add(42, 500);
//! let heavy = table.end_interval();
//! assert!(heavy.iter().any(|&(k, e)| k == 42 && e > 400));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Exact change detection over arbitrary packed keys.
///
/// Mirrors the sketch pipeline's semantics exactly: per interval the
/// current per-key value is compared against an EWMA forecast (paper
/// eq. 1; no detection in the first interval), and keys whose error meets
/// the threshold are returned by [`ExactChangeTable::end_interval`] —
/// except that here there are no hash collisions and no estimation error.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExactChangeTable {
    alpha: f64,
    current: HashMap<u64, i64>,
    /// Per-key `(prev_observed, prev_forecast)`; `prev_forecast` is NaN
    /// until the key has two intervals of history.
    state: HashMap<u64, (f64, f64)>,
    ticks: u64,
    peak_entries: usize,
}

impl ExactChangeTable {
    /// Creates a table with EWMA smoothing factor `alpha ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is outside `[0, 1]` or not finite.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha.is_finite() && (0.0..=1.0).contains(&alpha),
            "alpha must be in [0, 1], got {alpha}"
        );
        ExactChangeTable {
            alpha,
            ..ExactChangeTable::default()
        }
    }

    /// Adds `delta` to the key's value in the current interval.
    #[inline]
    pub fn add(&mut self, key: u64, delta: i64) {
        *self.current.entry(key).or_insert(0) += delta;
    }

    /// Closes the current interval **without** reporting (first-interval
    /// warm-up happens implicitly; this method is `end_interval` discarding
    /// the result).
    pub fn advance(&mut self) {
        let _ = self.end_interval_threshold(i64::MAX);
    }

    /// Closes the current interval and returns every `(key, error)` with
    /// `error ≥ threshold`, then starts a new interval.
    ///
    /// Equivalent to `end_interval_threshold(1)` followed by filtering; by
    /// convention a bare `end_interval` uses threshold 1 so callers get all
    /// positive-error keys and filter themselves.
    pub fn end_interval(&mut self) -> Vec<(u64, i64)> {
        self.end_interval_threshold(1)
    }

    /// Closes the current interval and returns keys whose forecast error is
    /// at least `threshold`.
    pub fn end_interval_threshold(&mut self, threshold: i64) -> Vec<(u64, i64)> {
        self.ticks = self.ticks.saturating_add(1);
        self.peak_entries = self
            .peak_entries
            .max(self.current.len())
            .max(self.state.len());
        let mut heavy = Vec::new();
        let first_interval = self.ticks == 1;
        // Union of keys with any history or current traffic.
        let mut keys: Vec<u64> = self.current.keys().copied().collect();
        for k in self.state.keys() {
            if !self.current.contains_key(k) {
                keys.push(*k);
            }
        }
        for key in keys {
            let observed = *self.current.get(&key).unwrap_or(&0) as f64;
            match self.state.entry(key) {
                Entry::Vacant(v) => {
                    // First time we see this key. If the table has history
                    // (t > 1) its implicit past is all zeros, so the
                    // forecast is 0 and the error is the full value.
                    if !first_interval && observed as i64 >= threshold {
                        heavy.push((key, observed as i64));
                    }
                    v.insert((observed, if first_interval { f64::NAN } else { 0.0 }));
                }
                Entry::Occupied(mut o) => {
                    let (prev_obs, prev_fcast) = *o.get();
                    let forecast = if prev_fcast.is_nan() {
                        prev_obs
                    } else {
                        self.alpha * prev_obs + (1.0 - self.alpha) * prev_fcast
                    };
                    let error = (observed - forecast).round() as i64;
                    if error >= threshold {
                        heavy.push((key, error));
                    }
                    o.insert((observed, forecast));
                }
            }
        }
        self.current.clear();
        heavy.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        heavy
    }

    /// Number of intervals closed so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Keys currently tracked (live state entries).
    pub fn tracked_keys(&self) -> usize {
        self.state.len()
    }

    /// Largest number of simultaneously tracked entries seen — the number
    /// Table 9's "complete information" memory column is built from.
    pub fn peak_entries(&self) -> usize {
        self.peak_entries
            .max(self.current.len())
            .max(self.state.len())
    }

    /// Approximate bytes held: key + value + two forecast floats per entry
    /// plus hash-table overhead (factor 2 on capacity is typical for
    /// `HashMap`).
    pub fn memory_bytes(&self) -> usize {
        const ENTRY: usize = 8 + 16 + 8; // key, (f64,f64), current value
        self.peak_entries() * ENTRY * 2
    }

    /// Drops all state.
    pub fn clear(&mut self) {
        self.current.clear();
        self.state.clear();
        self.ticks = 0;
        self.peak_entries = 0;
    }
}

/// Exact per-x-key distribution over y values — the "complete information"
/// counterpart of the 2D sketch.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExactDistribution {
    map: HashMap<u64, HashMap<u64, i64>>,
}

impl ExactDistribution {
    /// Creates an empty distribution table.
    pub fn new() -> Self {
        ExactDistribution::default()
    }

    /// Adds `delta` at `(x_key, y_key)`.
    pub fn add(&mut self, x_key: u64, y_key: u64, delta: i64) {
        *self.map.entry(x_key).or_default().entry(y_key).or_insert(0) += delta;
    }

    /// Number of distinct y values with positive mass under `x_key`.
    pub fn distinct_positive_y(&self, x_key: u64) -> usize {
        self.map
            .get(&x_key)
            .map(|m| m.values().filter(|&&v| v > 0).count())
            .unwrap_or(0)
    }

    /// Fraction of positive mass held by the top `p` y values (`None` if no
    /// positive mass) — the exact analogue of the 2D sketch's
    /// column-concentration test.
    pub fn concentration(&self, x_key: u64, top_p: usize) -> Option<f64> {
        let m = self.map.get(&x_key)?;
        let mut vals: Vec<i64> = m.values().copied().filter(|&v| v > 0).collect();
        let total: i64 = vals.iter().sum();
        if total <= 0 {
            return None;
        }
        vals.sort_unstable_by(|a, b| b.cmp(a));
        Some(vals.iter().take(top_p).sum::<i64>() as f64 / total as f64)
    }

    /// Number of tracked `(x, y)` cells.
    pub fn cells(&self) -> usize {
        self.map.values().map(HashMap::len).sum()
    }

    /// Approximate bytes held.
    pub fn memory_bytes(&self) -> usize {
        const CELL: usize = 8 + 8; // y key + value
        const X: usize = 8 + 48; // x key + inner map header
        (self.cells() * CELL + self.map.len() * X) * 2
    }

    /// Drops all state.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_interval_never_reports() {
        let mut t = ExactChangeTable::new(0.5);
        t.add(1, 1_000_000);
        assert!(t.end_interval().is_empty());
    }

    #[test]
    fn change_detected_in_second_interval() {
        let mut t = ExactChangeTable::new(0.5);
        t.add(1, 10);
        t.end_interval();
        t.add(1, 500);
        let heavy = t.end_interval_threshold(60);
        assert_eq!(heavy, vec![(1, 490)]);
    }

    #[test]
    fn new_key_after_warmup_reports_full_value() {
        let mut t = ExactChangeTable::new(0.5);
        t.add(1, 5);
        t.end_interval();
        t.add(2, 300); // first appearance, history is implicit zeros
        let heavy = t.end_interval_threshold(60);
        assert_eq!(heavy, vec![(2, 300)]);
    }

    #[test]
    fn steady_key_stops_reporting() {
        let mut t = ExactChangeTable::new(0.5);
        for _ in 0..6 {
            t.add(9, 400);
            t.end_interval_threshold(60);
        }
        t.add(9, 400);
        let heavy = t.end_interval_threshold(60);
        assert!(
            heavy.is_empty(),
            "steady traffic should be forecast away, got {heavy:?}"
        );
    }

    #[test]
    fn matches_scalar_ewma_recurrence() {
        use hifind_forecast::{Ewma, ScalarForecaster};
        let mut t = ExactChangeTable::new(0.3);
        let mut f = Ewma::new(0.3);
        for v in [10i64, 14, 9, 200, 7, 7] {
            t.add(77, v);
            let table_err = t
                .end_interval_threshold(i64::MIN + 1)
                .into_iter()
                .find(|&(k, _)| k == 77)
                .map(|(_, e)| e);
            let scalar_err = f.step(v as f64).map(|e| e.round() as i64);
            assert_eq!(table_err, scalar_err, "divergence at v={v}");
        }
    }

    #[test]
    fn negative_values_supported() {
        // Completed handshakes drive #SYN − #SYN/ACK negative.
        let mut t = ExactChangeTable::new(0.5);
        t.add(5, -100);
        t.end_interval();
        t.add(5, -100);
        assert!(t.end_interval_threshold(60).is_empty());
    }

    #[test]
    fn tracks_peak_entries_for_memory_model() {
        let mut t = ExactChangeTable::new(0.5);
        for k in 0..1000u64 {
            t.add(k, 1);
        }
        t.end_interval();
        assert!(t.peak_entries() >= 1000);
        assert!(t.memory_bytes() >= 1000 * 32);
        t.clear();
        assert_eq!(t.tracked_keys(), 0);
        assert_eq!(t.ticks(), 0);
    }

    #[test]
    fn results_sorted_by_error_descending() {
        let mut t = ExactChangeTable::new(0.5);
        t.end_interval();
        t.add(1, 100);
        t.add(2, 300);
        t.add(3, 200);
        let heavy = t.end_interval_threshold(50);
        let errors: Vec<i64> = heavy.iter().map(|&(_, e)| e).collect();
        assert_eq!(errors, vec![300, 200, 100]);
    }

    #[test]
    #[should_panic(expected = "alpha must be in")]
    fn rejects_bad_alpha() {
        let _ = ExactChangeTable::new(f64::NAN);
    }

    #[test]
    fn distribution_concentration() {
        let mut d = ExactDistribution::new();
        for _ in 0..95 {
            d.add(1, 80, 1);
        }
        for p in 0..5 {
            d.add(1, 1000 + p, 1);
        }
        assert_eq!(d.distinct_positive_y(1), 6);
        let c = d.concentration(1, 5).unwrap();
        assert!(c > 0.98, "concentration {c}");
        // A dispersed x-key.
        for p in 0..200 {
            d.add(2, p, 1);
        }
        let c2 = d.concentration(2, 5).unwrap();
        assert!(c2 < 0.1, "concentration {c2}");
        assert_eq!(d.concentration(999, 5), None);
    }

    #[test]
    fn distribution_ignores_negative_mass() {
        let mut d = ExactDistribution::new();
        d.add(1, 80, -50);
        assert_eq!(d.concentration(1, 5), None);
        d.add(1, 443, 10);
        assert_eq!(d.concentration(1, 5), Some(1.0));
        assert_eq!(d.distinct_positive_y(1), 1);
    }

    #[test]
    fn distribution_memory_grows_with_cells() {
        let mut d = ExactDistribution::new();
        let before = d.memory_bytes();
        for x in 0..100 {
            for y in 0..10 {
                d.add(x, y, 1);
            }
        }
        assert_eq!(d.cells(), 1000);
        assert!(d.memory_bytes() > before);
        d.clear();
        assert_eq!(d.cells(), 0);
    }
}
