//! Property-based tests for the exact flow-table substrate.

use hifind_flowtable::{ExactChangeTable, ExactDistribution};
use proptest::prelude::*;
use std::collections::HashMap;

proptest! {
    /// The table's per-key error equals the scalar EWMA recurrence run on
    /// that key's series alone (keys are independent).
    #[test]
    fn per_key_independence(
        alpha in 0.0f64..=1.0,
        series_a in prop::collection::vec(-1000i64..1000, 1..20),
        series_b in prop::collection::vec(-1000i64..1000, 1..20),
    ) {
        let n = series_a.len().max(series_b.len());
        let mut joint = ExactChangeTable::new(alpha);
        let mut solo_a = ExactChangeTable::new(alpha);
        for t in 0..n {
            let va = series_a.get(t).copied().unwrap_or(0);
            let vb = series_b.get(t).copied().unwrap_or(0);
            joint.add(1, va);
            joint.add(2, vb);
            solo_a.add(1, va);
            let je: HashMap<u64, i64> =
                joint.end_interval_threshold(i64::MIN + 1).into_iter().collect();
            let se: HashMap<u64, i64> =
                solo_a.end_interval_threshold(i64::MIN + 1).into_iter().collect();
            prop_assert_eq!(je.get(&1), se.get(&1), "key 1 diverged at t={}", t);
        }
    }

    /// The first interval never reports, whatever the values.
    #[test]
    fn warmup_never_reports(values in prop::collection::vec((any::<u64>(), -10_000i64..10_000), 0..100)) {
        let mut t = ExactChangeTable::new(0.5);
        for &(k, v) in &values {
            t.add(k, v);
        }
        prop_assert!(t.end_interval_threshold(1).is_empty());
    }

    /// Reported errors are sorted descending and all clear the threshold.
    #[test]
    fn reports_sorted_and_thresholded(
        values in prop::collection::vec((0u64..50, 1i64..5000), 1..100),
        threshold in 1i64..1000,
    ) {
        let mut t = ExactChangeTable::new(0.5);
        t.end_interval(); // warm up
        for &(k, v) in &values {
            t.add(k, v);
        }
        let heavy = t.end_interval_threshold(threshold);
        for w in heavy.windows(2) {
            prop_assert!(w[0].1 >= w[1].1);
        }
        for &(_, e) in &heavy {
            prop_assert!(e >= threshold);
        }
    }

    /// Distribution concentration is 1.0 when a single y value holds all
    /// positive mass, and decreases monotonically as mass spreads.
    #[test]
    fn concentration_bounds(x in any::<u64>(), ys in prop::collection::hash_map(any::<u64>(), 1i64..100, 1..50)) {
        let mut d = ExactDistribution::new();
        for (&y, &v) in &ys {
            d.add(x, y, v);
        }
        let c_all = d.concentration(x, ys.len()).unwrap();
        prop_assert!((c_all - 1.0).abs() < 1e-9, "top-n covers everything");
        let c1 = d.concentration(x, 1).unwrap();
        prop_assert!(c1 > 0.0 && c1 <= 1.0);
        if ys.len() == 1 {
            prop_assert!((c1 - 1.0).abs() < 1e-9);
        }
        // Monotone in p.
        let mut prev = 0.0;
        for p in 1..=ys.len() {
            let c = d.concentration(x, p).unwrap();
            prop_assert!(c + 1e-12 >= prev);
            prev = c;
        }
    }

    /// `distinct_positive_y` counts exactly the positive-mass y values.
    #[test]
    fn distinct_positive_counting(x in any::<u64>(), ys in prop::collection::hash_map(0u64..100, -50i64..50, 0..60)) {
        let mut d = ExactDistribution::new();
        for (&y, &v) in &ys {
            d.add(x, y, v);
        }
        let expected = ys.values().filter(|&&v| v > 0).count();
        prop_assert_eq!(d.distinct_positive_y(x), expected);
    }
}
